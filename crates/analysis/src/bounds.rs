//! The paper's bound curves and shape-fitting helpers.
//!
//! Experiments never match the paper's constants (its bounds are
//! asymptotic, our substrate is a simulator); what must match is the
//! *shape*. These helpers express the curves of Theorems 1–3 and fit
//! measured series against them.

use synran_core::ln_clamped;

/// Theorem 1's forced-round curve: `t / √(n·log n)`.
#[must_use]
pub fn lower_bound_rounds(n: usize, t: usize) -> f64 {
    t as f64 / ((n as f64) * ln_clamped(n)).sqrt()
}

/// Corollary 3.6's form for `t = Ω(n)`: `√(n / log n)`.
#[must_use]
pub fn sqrt_n_over_log_n(n: usize) -> f64 {
    ((n as f64) / ln_clamped(n)).sqrt()
}

/// Theorem 3's tight curve over the whole fault range:
/// `t / √(n·log(2 + t/√n))`.
///
/// For `t = O(√n)` the log factor is constant and the curve is `O(1)`·t/√n;
/// for `t = Ω(n)` it recovers `t/√(n·log n)` up to constants.
#[must_use]
pub fn tight_bound_rounds(n: usize, t: usize) -> f64 {
    let nf = n as f64;
    let arg = 2.0 + t as f64 / nf.sqrt();
    t as f64 / (nf * arg.ln()).sqrt()
}

/// The deterministic baseline: `t + 1` rounds.
#[must_use]
pub fn deterministic_rounds(t: usize) -> f64 {
    t as f64 + 1.0
}

/// A least-squares fit of `measured ≈ scale · predicted` through the
/// origin, with the largest relative residual — the "does the shape hold"
/// check used throughout EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeFit {
    scale: f64,
    max_rel_residual: f64,
    points: usize,
}

impl ShapeFit {
    /// Fits `measured[i] ≈ scale · predicted[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the series are empty, differ in length, or `predicted`
    /// is all zeros.
    #[must_use]
    pub fn fit(measured: &[f64], predicted: &[f64]) -> ShapeFit {
        assert_eq!(measured.len(), predicted.len(), "series must align");
        assert!(!measured.is_empty(), "need at least one point");
        let num: f64 = measured.iter().zip(predicted).map(|(m, p)| m * p).sum();
        let den: f64 = predicted.iter().map(|p| p * p).sum();
        assert!(den > 0.0, "predicted series must not be all zeros");
        let scale = num / den;
        let max_rel_residual = measured
            .iter()
            .zip(predicted)
            .map(|(m, p)| {
                let fitted = scale * p;
                if fitted.abs() < f64::MIN_POSITIVE {
                    m.abs()
                } else {
                    ((m - fitted) / fitted).abs()
                }
            })
            .fold(0.0, f64::max);
        ShapeFit {
            scale,
            max_rel_residual,
            points: measured.len(),
        }
    }

    /// The fitted scale constant.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The largest relative deviation of any point from the fitted curve.
    #[must_use]
    pub fn max_rel_residual(&self) -> f64 {
        self.max_rel_residual
    }

    /// Number of fitted points.
    #[must_use]
    pub fn points(&self) -> usize {
        self.points
    }

    /// A loose shape verdict: every point within `tolerance` (relative) of
    /// the fitted curve.
    #[must_use]
    pub fn shape_holds(&self, tolerance: f64) -> bool {
        self.max_rel_residual <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_positive_and_monotone_in_t() {
        let n = 1024;
        let mut prev_lb = 0.0;
        let mut prev_tb = 0.0;
        for t in [1usize, 16, 64, 256, 1023] {
            let lb = lower_bound_rounds(n, t);
            let tb = tight_bound_rounds(n, t);
            assert!(lb > prev_lb);
            assert!(tb > prev_tb);
            prev_lb = lb;
            prev_tb = tb;
        }
    }

    #[test]
    fn tight_bound_interpolates_regimes() {
        let n = 10_000usize;
        // t = √n: log factor is ln 3 — an O(1)-ish number of rounds.
        let small_t = tight_bound_rounds(n, 100);
        assert!(
            small_t < 1.5,
            "t = √n should give O(1) rounds, got {small_t}"
        );
        // t = n: within a constant of t/√(n ln n).
        let big_t = tight_bound_rounds(n, n);
        let reference = lower_bound_rounds(n, n);
        let ratio = big_t / reference;
        assert!((0.5..=2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn corollary_3_6_shape() {
        // √(n/ln n) grows without bound but sublinearly.
        assert!(sqrt_n_over_log_n(100) < sqrt_n_over_log_n(10_000));
        assert!(sqrt_n_over_log_n(10_000) < 100.0);
    }

    #[test]
    fn deterministic_is_linear() {
        assert_eq!(deterministic_rounds(0), 1.0);
        assert_eq!(deterministic_rounds(99), 100.0);
    }

    #[test]
    fn crossover_deterministic_vs_randomized() {
        // For t well past √n the randomized curve beats t + 1 by a growing
        // factor; at t ≈ √n both are within a small constant of each other
        // (the crossover region).
        let n = 4096usize;
        assert!(tight_bound_rounds(n, n / 2) < deterministic_rounds(n / 2));
        let advantage = deterministic_rounds(n / 2) / tight_bound_rounds(n, n / 2);
        assert!(advantage > 10.0, "advantage = {advantage}");
        // Near t = √n the deterministic protocol is still competitive.
        let t = 64; // √4096
        assert!(deterministic_rounds(t) < 100.0);
        assert!(tight_bound_rounds(n, t) < deterministic_rounds(t));
    }

    #[test]
    fn perfect_fit_has_zero_residual() {
        let predicted = [1.0, 2.0, 3.0];
        let measured = [2.5, 5.0, 7.5];
        let fit = ShapeFit::fit(&measured, &predicted);
        assert!((fit.scale() - 2.5).abs() < 1e-12);
        assert!(fit.max_rel_residual() < 1e-12);
        assert!(fit.shape_holds(0.01));
        assert_eq!(fit.points(), 3);
    }

    #[test]
    fn bad_fit_detected() {
        let predicted = [1.0, 2.0, 3.0];
        let measured = [1.0, 10.0, 1.0]; // not a scaled copy
        let fit = ShapeFit::fit(&measured, &predicted);
        assert!(!fit.shape_holds(0.5));
    }

    #[test]
    #[should_panic(expected = "series must align")]
    fn mismatched_series_rejected() {
        let _ = ShapeFit::fit(&[1.0], &[1.0, 2.0]);
    }
}
