//! Integer histograms for round-count distributions.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over non-negative integer observations (round counts, kill
/// counts).
///
/// # Examples
///
/// ```
/// use synran_analysis::Histogram;
///
/// let mut h = Histogram::new();
/// h.extend([2u32, 2, 3, 5, 5, 5]);
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.mode(), Some(5));
/// assert_eq!(h.count(2), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn push(&mut self, value: u32) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of one value.
    #[must_use]
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// The most frequent value (smallest on ties), if any observation was
    /// recorded.
    #[must_use]
    pub fn mode(&self) -> Option<u32> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Renders an ASCII bar chart, `width` characters for the largest bin.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        assert!(width > 0, "width must be positive");
        let max = self.counts.values().copied().max().unwrap_or(0);
        if max == 0 {
            return String::from("(empty histogram)\n");
        }
        let mut out = String::new();
        for (&v, &c) in &self.counts {
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n('#', bar_len.max(1)).collect();
            out.push_str(&format!("{v:>6} | {bar} {c}\n"));
        }
        out
    }
}

impl Extend<u32> for Histogram {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let h: Histogram = [1u32, 1, 2, 9].into_iter().collect();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 0);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (2, 1), (9, 1)]);
    }

    #[test]
    fn mode_prefers_smallest_on_ties() {
        let h: Histogram = [3u32, 3, 7, 7, 5].into_iter().collect();
        assert_eq!(h.mode(), Some(3));
        assert_eq!(Histogram::new().mode(), None);
    }

    #[test]
    fn render_scales_bars() {
        let h: Histogram = [1u32, 1, 1, 1, 2].into_iter().collect();
        let s = h.render(8);
        assert!(s.contains("1 | ######## 4"), "{s}");
        assert!(s.contains("2 | ## 1") || s.contains("2 | # 1"), "{s}");
        assert_eq!(Histogram::new().render(8), "(empty histogram)\n");
    }

    #[test]
    fn display_matches_render() {
        let h: Histogram = [4u32].into_iter().collect();
        assert_eq!(h.to_string(), h.render(40));
    }
}
