//! Exact binomial distributions and the paper's large-deviation bound.
//!
//! Lemma 4.4 gives a *non-asymptotic lower* bound on the upper tail of a
//! fair-coin sum: for `x ~ Binomial(n, ½)` and `t < √n/8`,
//!
//! ```text
//! Pr(x − E(x) ≥ t·√n) ≥ e^{−4(t+1)²} / √(2π)
//! ```
//!
//! and Corollary 4.5 instantiates `t = √(log n)/8` to get
//! `Pr(x − E(x) ≥ √(n·log n)/8) ≥ √(log n / n)`. This module provides the
//! bounds in closed form plus exact binomial tails (log-space, stable up to
//! very large `n`) so experiment E6 can verify the inequality numerically.

use std::f64::consts::PI;

/// An exact binomial distribution `Binomial(n, p)` with precomputed
/// log-factorials.
///
/// # Examples
///
/// ```
/// use synran_analysis::Binomial;
///
/// let b = Binomial::fair(10);
/// assert!((b.pmf(5) - 0.24609375).abs() < 1e-12);
/// assert!((b.upper_tail(0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Binomial {
    n: usize,
    p: f64,
    ln_fact: Vec<f64>,
}

impl Binomial {
    /// Creates `Binomial(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(n: usize, p: f64) -> Binomial {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut ln_fact = Vec::with_capacity(n + 1);
        ln_fact.push(0.0);
        for k in 1..=n {
            let prev = *ln_fact.last().expect("non-empty");
            ln_fact.push(prev + (k as f64).ln());
        }
        Binomial { n, p, ln_fact }
    }

    /// A fair-coin binomial `Binomial(n, ½)` — the paper's coin game.
    #[must_use]
    pub fn fair(n: usize) -> Binomial {
        Binomial::new(n, 0.5)
    }

    /// Number of trials.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The mean `n·p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The variance `n·p·(1−p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// `ln C(n, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    #[must_use]
    pub fn ln_choose(&self, k: usize) -> f64 {
        assert!(k <= self.n, "k must be at most n");
        self.ln_fact[self.n] - self.ln_fact[k] - self.ln_fact[self.n - k]
    }

    /// `ln Pr(X = k)`.
    #[must_use]
    pub fn ln_pmf(&self, k: usize) -> f64 {
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        self.ln_choose(k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// `Pr(X = k)`.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `Pr(X ≤ k)`.
    #[must_use]
    pub fn cdf(&self, k: usize) -> f64 {
        let k = k.min(self.n);
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// `Pr(X ≥ k)`.
    #[must_use]
    pub fn upper_tail(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        (k..=self.n).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// `Pr(X − E(X) ≥ d)` for a real deviation `d` — the quantity
    /// Lemma 4.4 bounds from below.
    #[must_use]
    pub fn deviation_tail(&self, d: f64) -> f64 {
        let k = (self.mean() + d).ceil().max(0.0) as usize;
        self.upper_tail(k)
    }
}

/// Lemma 4.4's lower bound: `e^{−4(t+1)²} / √(2π)`, valid for
/// `x ~ Binomial(n, ½)` deviations of `t·√n` with `t < √n/8`.
#[must_use]
pub fn lemma_4_4_bound(t: f64) -> f64 {
    (-4.0 * (t + 1.0) * (t + 1.0)).exp() / (2.0 * PI).sqrt()
}

/// Corollary 4.5's instantiation: with `t = √(ln n)/8`, a deviation of
/// `√(n·ln n)/8` has probability at least `√(ln n / n)`.
///
/// Returns `(deviation, probability_bound)`.
#[must_use]
pub fn corollary_4_5(n: usize) -> (f64, f64) {
    let nf = n as f64;
    let ln_n = nf.ln().max(f64::MIN_POSITIVE);
    ((nf * ln_n).sqrt() / 8.0, (ln_n / nf).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for n in [1usize, 2, 7, 64, 333] {
            let b = Binomial::fair(n);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n = {n}: total = {total}");
        }
    }

    #[test]
    fn symmetric_fair_pmf() {
        let b = Binomial::fair(11);
        for k in 0..=11 {
            assert!((b.pmf(k) - b.pmf(11 - k)).abs() < 1e-12);
        }
    }

    #[test]
    fn biased_distribution_moments() {
        let b = Binomial::new(100, 0.3);
        assert_eq!(b.mean(), 30.0);
        assert!((b.variance() - 21.0).abs() < 1e-9);
        assert_eq!(b.n(), 100);
        // Mode near the mean.
        let mode = (0..=100)
            .max_by(|&a, &c| b.pmf(a).total_cmp(&b.pmf(c)))
            .unwrap();
        assert!((29..=31).contains(&mode));
    }

    #[test]
    fn degenerate_p() {
        let zero = Binomial::new(5, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(3), 0.0);
        let one = Binomial::new(5, 1.0);
        assert_eq!(one.pmf(5), 1.0);
        assert_eq!(one.upper_tail(5), 1.0);
    }

    #[test]
    fn tails_are_consistent() {
        let b = Binomial::fair(20);
        for k in 0..=20 {
            let lhs = b.cdf(k) + b.upper_tail(k + 1);
            assert!((lhs - 1.0).abs() < 1e-9, "k = {k}");
        }
        assert_eq!(b.upper_tail(21), 0.0);
        assert_eq!(b.upper_tail(0), 1.0);
    }

    #[test]
    fn known_values() {
        // C(10,5)/2^10 = 252/1024.
        let b = Binomial::fair(10);
        assert!((b.pmf(5) - 252.0 / 1024.0).abs() < 1e-12);
        assert!((b.ln_choose(5) - (252.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn lemma_4_4_holds_exactly() {
        // The content of E6 in miniature: the exact deviation tail
        // dominates the closed-form bound on its stated domain.
        for n in [64usize, 256, 1024, 4096] {
            let b = Binomial::fair(n);
            let sqrt_n = (n as f64).sqrt();
            let mut t = 0.0;
            while t < sqrt_n / 8.0 {
                let exact = b.deviation_tail(t * sqrt_n);
                let bound = lemma_4_4_bound(t);
                assert!(
                    exact >= bound,
                    "n = {n}, t = {t}: exact {exact} < bound {bound}"
                );
                t += 0.25;
            }
        }
    }

    #[test]
    fn corollary_4_5_holds_exactly() {
        for n in [64usize, 256, 1024, 8192] {
            let (dev, bound) = corollary_4_5(n);
            let exact = Binomial::fair(n).deviation_tail(dev);
            assert!(
                exact >= bound.min(1.0) * 0.999 || exact >= bound,
                "n = {n}: exact {exact} < bound {bound}"
            );
        }
    }

    #[test]
    fn bound_decreasing_in_t() {
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let b = lemma_4_4_bound(f64::from(i) * 0.3);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn invalid_p_rejected() {
        let _ = Binomial::new(3, 1.5);
    }

    #[test]
    #[should_panic(expected = "k must be at most n")]
    fn oversized_k_rejected() {
        let _ = Binomial::fair(3).ln_choose(4);
    }
}
