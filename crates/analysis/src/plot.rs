//! ASCII series plots for the experiment harnesses.

use std::fmt::Write as _;

/// A terminal scatter/line plot of one or more named series over a shared
/// x-axis.
///
/// Experiment binaries use this to make shapes (plateaus, crossovers,
/// linear growth) visible directly in the harness output — the closest a
/// text report gets to the paper's "figures".
///
/// # Examples
///
/// ```
/// use synran_analysis::AsciiPlot;
///
/// let mut plot = AsciiPlot::new(40, 10);
/// plot.series('a', &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
/// plot.series('b', &[(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]);
/// let s = plot.render();
/// assert!(s.contains('a') && s.contains('b'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    log_x: bool,
}

impl AsciiPlot {
    /// Creates a plot canvas of `width` columns by `height` rows
    /// (excluding axes).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    #[must_use]
    pub fn new(width: usize, height: usize) -> AsciiPlot {
        assert!(width >= 2 && height >= 2, "canvas must be at least 2×2");
        AsciiPlot {
            width,
            height,
            series: Vec::new(),
            log_x: false,
        }
    }

    /// Uses a logarithmic x-axis — the natural scale for the `t`-sweeps.
    ///
    /// # Panics
    ///
    /// Panics (at render) if any x value is not strictly positive.
    #[must_use]
    pub fn log_x(mut self) -> AsciiPlot {
        self.log_x = true;
        self
    }

    /// Adds a named series of `(x, y)` points.
    pub fn series(&mut self, marker: char, points: &[(f64, f64)]) -> &mut AsciiPlot {
        self.series.push((marker, points.to_vec()));
        self
    }

    /// Renders the plot with y-axis labels and an x-range footer.
    ///
    /// Returns a note instead of a canvas when there is nothing to plot.
    #[must_use]
    pub fn render(&self) -> String {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if points.is_empty() {
            return String::from("(empty plot)\n");
        }
        let tx = |x: f64| -> f64 {
            if self.log_x {
                assert!(x > 0.0, "log x-axis requires positive x values");
                x.ln()
            } else {
                x
            }
        };
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &points {
            x_min = x_min.min(tx(x));
            x_max = x_max.max(tx(x));
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (marker, pts) in &self.series {
            for &(x, y) in pts {
                let cx =
                    ((tx(x) - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                // Row 0 is the top of the canvas.
                let row = self.height - 1 - cy;
                canvas[row][cx.min(self.width - 1)] = *marker;
            }
        }

        let mut out = String::new();
        for (i, row) in canvas.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_max:>8.1}")
            } else if i == self.height - 1 {
                format!("{y_min:>8.1}")
            } else {
                " ".repeat(8)
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label} |{line}");
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(8), "-".repeat(self.width));
        let x_lo = if self.log_x { x_min.exp() } else { x_min };
        let x_hi = if self.log_x { x_max.exp() } else { x_max };
        let scale = if self.log_x { " (log x)" } else { "" };
        let _ = writeln!(out, "{} x: {x_lo:.0} … {x_hi:.0}{scale}", " ".repeat(8));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_extremes_at_edges() {
        let mut p = AsciiPlot::new(20, 5);
        p.series('*', &[(0.0, 0.0), (10.0, 100.0)]);
        let s = p.render();
        let lines: Vec<&str> = s.lines().collect();
        // Max y label on the first row, min on the last canvas row.
        assert!(lines[0].trim_start().starts_with("100.0"), "{s}");
        assert!(lines[4].trim_start().starts_with("0.0"), "{s}");
        // The high point lands on the top row, far right.
        assert!(lines[0].ends_with('*'), "{s}");
        // The low point on the bottom row, left edge.
        assert!(lines[4].contains("|*"), "{s}");
    }

    #[test]
    fn multiple_series_keep_markers() {
        let mut p = AsciiPlot::new(10, 4);
        p.series('a', &[(1.0, 1.0)]);
        p.series('b', &[(2.0, 2.0)]);
        let s = p.render();
        assert!(s.contains('a'));
        assert!(s.contains('b'));
    }

    #[test]
    fn log_axis_footer_and_spacing() {
        let mut p = AsciiPlot::new(30, 4).log_x();
        p.series('#', &[(1.0, 1.0), (10.0, 2.0), (100.0, 3.0)]);
        let s = p.render();
        assert!(s.contains("(log x)"), "{s}");
        assert!(s.contains("x: 1 … 100"), "{s}");
    }

    #[test]
    fn empty_plot_is_a_note() {
        assert_eq!(AsciiPlot::new(10, 4).render(), "(empty plot)\n");
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let mut p = AsciiPlot::new(10, 4);
        p.series('x', &[(5.0, 7.0), (5.0, 7.0)]);
        let s = p.render();
        assert!(s.contains('x'));
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn log_axis_rejects_nonpositive() {
        let mut p = AsciiPlot::new(10, 4).log_x();
        p.series('x', &[(0.0, 1.0)]);
        let _ = p.render();
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_canvas_rejected() {
        let _ = AsciiPlot::new(1, 5);
    }
}
