//! Summary statistics for experiment observations.

/// An online (Welford) accumulator for mean and variance.
///
/// Numerically stable for long experiment streams; no storage of samples.
///
/// # Examples
///
/// ```
/// use synran_analysis::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Accumulator {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean.
    ///
    /// # Panics
    ///
    /// Panics if no observation was added.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of zero observations");
        self.mean
    }

    /// Population variance (divides by `n`).
    ///
    /// # Panics
    ///
    /// Panics if no observation was added.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        assert!(self.count > 0, "variance of zero observations");
        self.m2 / self.count as f64
    }

    /// Sample variance (divides by `n − 1`); zero for a single observation.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / (self.count - 1) as f64
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.stddev() / (self.count as f64).sqrt()
    }

    /// Normal-approximation 95% confidence half-width of the mean.
    #[must_use]
    pub fn ci95_halfwidth(&self) -> f64 {
        1.96 * self.stderr()
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Accumulator {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// Summarises a slice of `u32` observations (round counts, kill counts).
///
/// # Examples
///
/// ```
/// use synran_analysis::Summary;
///
/// let s = Summary::of_u32(&[1, 2, 3, 4, 100]);
/// assert_eq!(s.mean(), 22.0);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.quantile(1.0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    acc: Accumulator,
    sorted: Vec<f64>,
}

impl Summary {
    /// Builds a summary from floating observations.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    #[must_use]
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of zero observations");
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN observation");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            acc: xs.iter().copied().collect(),
            sorted,
        }
    }

    /// Builds a summary from `u32` observations.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[must_use]
    pub fn of_u32(xs: &[u32]) -> Summary {
        let floats: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
        Summary::of(&floats)
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.acc.stddev()
    }

    /// 95% confidence half-width of the mean.
    #[must_use]
    pub fn ci95_halfwidth(&self) -> f64 {
        self.acc.ci95_halfwidth()
    }

    /// The `q`-quantile (linear interpolation), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            self.sorted[n - 1]
        } else {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        }
    }

    /// The median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.5, 2.5, 3.5, -1.0, 0.0, 10.0];
        let acc: Accumulator = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.population_variance() - var).abs() < 1e-12);
        assert_eq!(acc.count(), 6);
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 10.0);
    }

    #[test]
    fn single_observation() {
        let mut acc = Accumulator::new();
        acc.push(7.0);
        assert_eq!(acc.mean(), 7.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.ci95_halfwidth(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_mean_panics() {
        let _ = Accumulator::new().mean();
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.quantile(1.0 / 3.0) - 20.0).abs() < 1e-9);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 40.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| f64::from(i % 4) + 1.0).collect();
        let many = Summary::of(&many);
        assert!(many.ci95_halfwidth() < few.ci95_halfwidth());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let s = Summary::of(&[1.0]);
        let _ = s.quantile(1.5);
    }
}
