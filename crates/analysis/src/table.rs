//! Aligned text tables for the experiment harnesses.

use std::fmt;

/// A simple column-aligned text table.
///
/// The first column is left-aligned (labels), the rest right-aligned
/// (numbers) — the layout every experiment binary prints.
///
/// # Examples
///
/// ```
/// use synran_analysis::Table;
///
/// let mut t = Table::new(["n", "rounds", "ratio"]);
/// t.row(["64", "12.5", "1.02"]);
/// t.row(["256", "31.0", "0.98"]);
/// let s = t.to_string();
/// assert!(s.contains("n"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data row was added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as GitHub-flavoured markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<width$}", c, width = widths[i])
                    } else {
                        format!("{:>width$}", c, width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimal places (the tables' house style).
#[must_use]
pub fn fmt_f64(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "10000"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        // Numbers right-aligned.
        assert!(lines[2].ends_with("    1"), "{s}");
        assert!(lines[3].ends_with("10000"), "{s}");
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(["only"]);
        t.row(["a", "b"]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.48159, 2), "3.48");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }
}
