//! # synran-analysis — statistics and theory curves
//!
//! Part of the [`synran`](https://github.com/synran/synran) reproduction of
//! *Bar-Joseph & Ben-Or, "A Tight Lower Bound for Randomized Synchronous
//! Consensus" (PODC 1998)*.
//!
//! Everything the experiment harnesses need to turn raw round counts into
//! the tables EXPERIMENTS.md records:
//!
//! * [`Accumulator`] / [`Summary`] — means, variances, confidence
//!   intervals, quantiles;
//! * [`Histogram`] / [`AsciiPlot`] — round-count distributions and terminal
//!   series plots (the harnesses' "figures");
//! * [`Binomial`], [`lemma_4_4_bound`], [`corollary_4_5`] — exact binomial
//!   tails and the paper's large-deviation lower bound (Lemma 4.4);
//! * [`lower_bound_rounds`], [`tight_bound_rounds`],
//!   [`sqrt_n_over_log_n`], [`deterministic_rounds`], [`ShapeFit`] — the
//!   curves of Theorems 1–3 and the shape-fitting check;
//! * [`Table`] — aligned text/markdown output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod binomial;
mod bounds;
mod histogram;
mod plot;
mod stats;
mod table;

pub use binomial::{corollary_4_5, lemma_4_4_bound, Binomial};
pub use bounds::{
    deterministic_rounds, lower_bound_rounds, sqrt_n_over_log_n, tight_bound_rounds, ShapeFit,
};
pub use histogram::Histogram;
pub use plot::AsciiPlot;
pub use stats::{Accumulator, Summary};
pub use table::{fmt_f64, Table};
