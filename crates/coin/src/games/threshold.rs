//! Generalised quota voting.

use crate::game::{CoinGame, Outcome, Value, Visible};
use crate::games::visible_ones;

/// Quota voting: outcome 1 iff at least `quota` visible 1s.
///
/// [`MajorityGame`](crate::MajorityGame) is the special case
/// `quota = ⌊n/2⌋ + 1`. Lower quotas make the 1-outcome harder for the
/// adversary to destroy (more 1s must be hidden); quota 1 gives the OR
/// game, where forcing 0 requires hiding *every* 1.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, ThresholdGame, all_visible};
///
/// let or_game = ThresholdGame::new(4, 1);
/// assert_eq!(or_game.outcome(&all_visible(&[0, 0, 1, 0])).0, 1);
/// assert_eq!(or_game.outcome(&all_visible(&[0, 0, 0, 0])).0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdGame {
    n: usize,
    quota: usize,
}

impl ThresholdGame {
    /// Creates a quota game over `n` players that outputs 1 iff at least
    /// `quota` ones are visible.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `quota` is zero or exceeds `n` (a quota of
    /// zero would make the game constant).
    #[must_use]
    pub fn new(n: usize, quota: usize) -> ThresholdGame {
        assert!(n > 0, "threshold game needs at least one player");
        assert!(
            (1..=n).contains(&quota),
            "quota must be in 1..=n to keep the game non-constant"
        );
        ThresholdGame { n, quota }
    }

    /// The quota.
    #[must_use]
    pub fn quota(&self) -> usize {
        self.quota
    }
}

impl CoinGame for ThresholdGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        Outcome(usize::from(visible_ones(inputs) >= self.quota))
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        match (target.0, value) {
            (0, 1) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn quota_boundary_is_inclusive() {
        let g = ThresholdGame::new(5, 3);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 1, 0, 0])).0, 1);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 0, 0, 0])).0, 0);
    }

    #[test]
    fn or_game_needs_every_one_hidden() {
        let g = ThresholdGame::new(4, 1);
        let values = [1, 0, 1, 0];
        assert_eq!(g.outcome(&with_hidden(&values, &[0])).0, 1);
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 2])).0, 0);
    }

    #[test]
    fn and_game_single_hide_kills() {
        let g = ThresholdGame::new(4, 4);
        let values = [1, 1, 1, 1];
        assert_eq!(g.outcome(&all_visible(&values)).0, 1);
        assert_eq!(g.outcome(&with_hidden(&values, &[3])).0, 0);
    }

    #[test]
    #[should_panic(expected = "quota must be in")]
    fn zero_quota_rejected() {
        let _ = ThresholdGame::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "quota must be in")]
    fn oversized_quota_rejected() {
        let _ = ThresholdGame::new(3, 4);
    }
}
