//! Recursive majority-of-three — the classic low-influence game.

use crate::game::{CoinGame, Outcome, Value, Visible};

/// Majority-of-three iterated `depth` times over `n = 3^depth` players,
/// with hidden leaves counting as 0.
///
/// The recursive-majority tree is the textbook example (Ben-Or & Linial's
/// collective-coin-flipping survey, which the paper cites for the coin-flipping background) of a
/// function where every *individual* player has influence `O(n^{−0.37})` —
/// yet a fail-stop adversary still controls it toward 0 cheaply: one
/// hidden leaf per level-1 gate along a root path flips whole subtrees.
/// Like plain majority, it can never be forced *to 1* by hiding.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, RecursiveMajorityGame, all_visible};
///
/// let game = RecursiveMajorityGame::new(2); // 9 players
/// assert_eq!(game.players(), 9);
/// let values = [1, 1, 0, 0, 0, 0, 1, 1, 1];
/// // gates: maj(1,1,0)=1, maj(0,0,0)=0, maj(1,1,1)=1 → maj(1,0,1)=1
/// assert_eq!(game.outcome(&all_visible(&values)).0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveMajorityGame {
    depth: u32,
}

impl RecursiveMajorityGame {
    /// Creates a depth-`depth` tree over `3^depth` players.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or the tree would exceed `3^12` players.
    #[must_use]
    pub fn new(depth: u32) -> RecursiveMajorityGame {
        assert!(
            (1..=12).contains(&depth),
            "depth must be in 1..=12 (n = 3^depth)"
        );
        RecursiveMajorityGame { depth }
    }

    /// The tree depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    fn reduce(bits: &[u8]) -> u8 {
        if bits.len() == 1 {
            return bits[0];
        }
        let next: Vec<u8> = bits
            .chunks(3)
            .map(|g| u8::from(g.iter().map(|&b| usize::from(b)).sum::<usize>() >= 2))
            .collect();
        RecursiveMajorityGame::reduce(&next)
    }
}

impl CoinGame for RecursiveMajorityGame {
    fn players(&self) -> usize {
        3usize.pow(self.depth)
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.players(), "input length must equal n");
        let leaves: Vec<u8> = inputs
            .iter()
            .map(|v| match v {
                Visible::Value(1) => 1,
                // Hidden counts as 0 — the fail-stop default.
                _ => 0,
            })
            .collect();
        Outcome(usize::from(RecursiveMajorityGame::reduce(&leaves)))
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        match (target.0, value) {
            (0, 1) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "recursive-majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{ExhaustiveHider, GreedyHider, HideSearch, SearchOutcome};
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn depth_one_is_plain_majority_of_three() {
        let g = RecursiveMajorityGame::new(1);
        assert_eq!(g.players(), 3);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 0])).0, 1);
        assert_eq!(g.outcome(&all_visible(&[1, 0, 0])).0, 0);
    }

    #[test]
    fn hidden_leaves_count_as_zero() {
        let g = RecursiveMajorityGame::new(1);
        let values = [1, 1, 0];
        assert_eq!(g.outcome(&with_hidden(&values, &[0])).0, 0);
    }

    #[test]
    fn two_hides_flip_a_depth_two_tree() {
        // All-ones tree: hiding one leaf in each of two level-1 gates
        // flips those gates, flipping the root.
        let g = RecursiveMajorityGame::new(2);
        let values = [1u32; 9];
        assert_eq!(g.outcome(&all_visible(&values)).0, 1);
        // One hide per gate is not enough (gates still have 2 ones)...
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 3])).0, 1);
        // ...two hides in each of two gates kill both gates.
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 1, 3, 4])).0, 0);
    }

    #[test]
    fn never_forcible_to_one() {
        let g = RecursiveMajorityGame::new(2);
        let values = [0, 1, 0, 1, 0, 0, 1, 0, 1]; // root = 0
        let r = ExhaustiveHider::default().force(&g, &values, 9, crate::Outcome(1));
        assert_eq!(r, SearchOutcome::Impossible);
    }

    #[test]
    fn greedy_forces_zero_with_modest_budget() {
        let g = RecursiveMajorityGame::new(2);
        let values = [1, 1, 0, 1, 0, 1, 0, 1, 1]; // root = 1
        match GreedyHider.force(&g, &values, 6, crate::Outcome(0)) {
            SearchOutcome::Forced(set) => {
                assert_eq!(g.outcome(&with_hidden(&values, &set)).0, 0);
            }
            other => panic!("expected forced, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "depth must be in")]
    fn zero_depth_rejected() {
        let _ = RecursiveMajorityGame::new(0);
    }
}
