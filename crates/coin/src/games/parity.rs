//! The XOR game.

use crate::game::{CoinGame, Outcome, Value, Visible};
use crate::games::visible_ones;

/// Parity: outcome is the XOR of the visible inputs (hidden counts as 0).
///
/// The classic *maximally fragile* game: a single hide of a 1-holder flips
/// the outcome, so a 1-adversary controls the game whenever at least one
/// player drew a 1 — probability `1 − 2^{−n}`.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, ParityGame, all_visible, with_hidden};
///
/// let game = ParityGame::new(4);
/// let values = [1, 1, 1, 0];
/// assert_eq!(game.outcome(&all_visible(&values)).0, 1);
/// assert_eq!(game.outcome(&with_hidden(&values, &[0])).0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityGame {
    n: usize,
}

impl ParityGame {
    /// Creates a parity game over `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> ParityGame {
        assert!(n > 0, "parity game needs at least one player");
        ParityGame { n }
    }
}

impl CoinGame for ParityGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        Outcome(visible_ones(inputs) % 2)
    }

    fn hide_preference(&self, value: Value, _target: Outcome) -> i32 {
        // Only hiding a 1 changes the parity, regardless of direction.
        if value == 1 {
            1
        } else {
            -1
        }
    }

    fn name(&self) -> &str {
        "parity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn xor_semantics() {
        let g = ParityGame::new(3);
        assert_eq!(g.outcome(&all_visible(&[0, 0, 0])).0, 0);
        assert_eq!(g.outcome(&all_visible(&[1, 0, 0])).0, 1);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 0])).0, 0);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 1])).0, 1);
    }

    #[test]
    fn hiding_a_one_flips_hiding_a_zero_does_not() {
        let g = ParityGame::new(3);
        let values = [1, 0, 1];
        let base = g.outcome(&all_visible(&values)).0;
        assert_eq!(g.outcome(&with_hidden(&values, &[0])).0, 1 - base);
        assert_eq!(g.outcome(&with_hidden(&values, &[1])).0, base);
    }

    #[test]
    fn all_zeros_is_a_fixed_point() {
        // With no 1s anywhere, no hide-set can make the outcome 1.
        let g = ParityGame::new(4);
        let values = [0, 0, 0, 0];
        for mask in 0u32..16 {
            let hide: Vec<usize> = (0..4).filter(|i| (mask >> i) & 1 == 1).collect();
            assert_eq!(g.outcome(&with_hidden(&values, &hide)).0, 0);
        }
    }
}
