//! The one-side-biased coin of the SynRan protocol.

use crate::game::{CoinGame, Outcome, Value, Visible};
use crate::games::visible_zeros;

/// The "no zero seen → 1" game: outcome 1 iff **no** visible input is 0.
///
/// This is the shape of the coin rule SynRan adds to Ben-Or's protocol
/// (`ELSE IF Z_i^r = 0 THEN b_i = 1`): the adversary can push the outcome
/// *toward 1* by hiding 0-holders, but can never manufacture a 0. The
/// protocol exploits exactly this asymmetry — the adversary's only way to
/// keep processes from converging is to spend failures.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, OneSidedGame, all_visible, with_hidden};
///
/// let game = OneSidedGame::new(3);
/// let values = [1, 0, 1];
/// assert_eq!(game.outcome(&all_visible(&values)).0, 0);   // a 0 is visible
/// assert_eq!(game.outcome(&with_hidden(&values, &[1])).0, 1); // hide it
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneSidedGame {
    n: usize,
}

impl OneSidedGame {
    /// Creates a one-sided game over `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> OneSidedGame {
        assert!(n > 0, "one-sided game needs at least one player");
        OneSidedGame { n }
    }
}

impl CoinGame for OneSidedGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        Outcome(usize::from(visible_zeros(inputs) == 0))
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        match (target.0, value) {
            // Forcing 1 means erasing every 0.
            (1, 0) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "one-sided"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn any_zero_forces_zero() {
        let g = OneSidedGame::new(4);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 0, 1])).0, 0);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 1, 1])).0, 1);
    }

    #[test]
    fn all_hidden_is_one() {
        // With everything hidden there is no visible 0, so outcome is 1 —
        // the degenerate end of the "bias toward 1" direction.
        let g = OneSidedGame::new(3);
        let values = [0, 0, 0];
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 1, 2])).0, 1);
    }

    #[test]
    fn cannot_force_zero_from_all_ones() {
        let g = OneSidedGame::new(4);
        let values = [1, 1, 1, 1];
        for mask in 0u32..16 {
            let hide: Vec<usize> = (0..4).filter(|i| (mask >> i) & 1 == 1).collect();
            assert_eq!(g.outcome(&with_hidden(&values, &hide)).0, 1);
        }
    }

    #[test]
    fn forcing_one_needs_exactly_the_zero_holders() {
        let g = OneSidedGame::new(5);
        let values = [0, 1, 0, 1, 0];
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 2])).0, 0);
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 2, 4])).0, 1);
    }
}
