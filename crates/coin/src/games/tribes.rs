//! The tribes (AND-of-ORs dual: OR-of-ANDs) game.

use crate::game::{CoinGame, Outcome, Value, Visible};

/// Tribes: players are split into blocks of equal width; outcome 1 iff some
/// block consists entirely of visible 1s.
///
/// A structured game where the adversary's cheapest 0-forcing set is *one
/// player per unanimous block* — forcing cost grows with the number of live
/// tribes, not with n. Forcing 1 by hiding is impossible (a hidden member
/// breaks its block).
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, TribesGame, all_visible};
///
/// let game = TribesGame::new(2, 3); // 2 tribes of 3, n = 6
/// assert_eq!(game.players(), 6);
/// assert_eq!(game.outcome(&all_visible(&[1, 1, 1, 0, 0, 0])).0, 1);
/// assert_eq!(game.outcome(&all_visible(&[1, 1, 0, 1, 1, 0])).0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TribesGame {
    tribes: usize,
    width: usize,
}

impl TribesGame {
    /// Creates a game with `tribes` blocks of `width` players each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(tribes: usize, width: usize) -> TribesGame {
        assert!(tribes > 0 && width > 0, "tribes and width must be positive");
        TribesGame { tribes, width }
    }

    /// Number of tribes.
    #[must_use]
    pub fn tribes(&self) -> usize {
        self.tribes
    }

    /// Players per tribe.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

impl CoinGame for TribesGame {
    fn players(&self) -> usize {
        self.tribes * self.width
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.players(), "input length must equal n");
        let unanimous = inputs
            .chunks(self.width)
            .any(|block| block.iter().all(|v| matches!(v, Visible::Value(1))));
        Outcome(usize::from(unanimous))
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        match (target.0, value) {
            (0, 1) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "tribes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn one_unanimous_tribe_suffices() {
        let g = TribesGame::new(3, 2);
        assert_eq!(g.outcome(&all_visible(&[0, 0, 1, 1, 0, 0])).0, 1);
        assert_eq!(g.outcome(&all_visible(&[0, 1, 1, 0, 0, 1])).0, 0);
    }

    #[test]
    fn hiding_one_member_kills_a_tribe() {
        let g = TribesGame::new(2, 2);
        let values = [1, 1, 1, 1];
        assert_eq!(g.outcome(&all_visible(&values)).0, 1);
        // One hide per tribe forces 0.
        assert_eq!(g.outcome(&with_hidden(&values, &[0, 2])).0, 0);
        // One hide in only one tribe leaves the other unanimous.
        assert_eq!(g.outcome(&with_hidden(&values, &[0])).0, 1);
    }

    #[test]
    fn hiding_cannot_force_one() {
        let g = TribesGame::new(2, 2);
        let values = [1, 0, 0, 1];
        for mask in 0u32..16 {
            let hide: Vec<usize> = (0..4).filter(|i| (mask >> i) & 1 == 1).collect();
            assert_eq!(g.outcome(&with_hidden(&values, &hide)).0, 0);
        }
    }
}
