//! 0-default majority voting.

use crate::game::{CoinGame, Outcome, Value, Visible};
use crate::games::visible_ones;

/// 0-1 majority voting where any missing value is counted as 0 — the
/// paper's running example of a game that is biasable only *one* way.
///
/// Outcome is 1 iff a strict majority of the `n` slots holds a visible 1.
/// Hiding a player can only lower the count of 1s, so a fail-stop
/// adversary can force 0 (by hiding 1s) but can never force 1.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, MajorityGame, with_hidden, all_visible};
///
/// let game = MajorityGame::new(5);
/// let values = [1, 1, 1, 0, 0];
/// assert_eq!(game.outcome(&all_visible(&values)).0, 1);
/// // Hiding one 1 destroys the majority.
/// assert_eq!(game.outcome(&with_hidden(&values, &[0])).0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityGame {
    n: usize,
}

impl MajorityGame {
    /// Creates a majority game over `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> MajorityGame {
        assert!(n > 0, "majority game needs at least one player");
        MajorityGame { n }
    }
}

impl CoinGame for MajorityGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        Outcome(usize::from(visible_ones(inputs) * 2 > self.n))
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        match (target.0, value) {
            // Forcing 0: hide 1s. Hiding 0s is pointless (they already
            // count as 0), and nothing helps force 1.
            (0, 1) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "majority-0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn strict_majority_required() {
        let g = MajorityGame::new(4);
        // 2 of 4 ones is not a strict majority.
        assert_eq!(g.outcome(&all_visible(&[1, 1, 0, 0])).0, 0);
        assert_eq!(g.outcome(&all_visible(&[1, 1, 1, 0])).0, 1);
    }

    #[test]
    fn hidden_counts_as_zero() {
        let g = MajorityGame::new(3);
        let values = [1, 1, 0];
        assert_eq!(g.outcome(&all_visible(&values)).0, 1);
        assert_eq!(g.outcome(&with_hidden(&values, &[1])).0, 0);
    }

    #[test]
    fn hiding_never_creates_a_one_outcome() {
        // Exhaustively: over all 2^5 inputs and all single hides, the
        // outcome never flips 0 → 1.
        let g = MajorityGame::new(5);
        for bits in 0u32..32 {
            let values: Vec<u32> = (0..5).map(|i| (bits >> i) & 1).collect();
            let base = g.outcome(&all_visible(&values));
            if base.0 == 0 {
                for h in 0..5 {
                    assert_eq!(g.outcome(&with_hidden(&values, &[h])).0, 0);
                }
            }
        }
    }

    #[test]
    fn preferences_favour_hiding_ones_for_zero() {
        let g = MajorityGame::new(3);
        assert!(g.hide_preference(1, Outcome(0)) > 0);
        assert!(g.hide_preference(0, Outcome(0)) < 0);
        assert!(g.hide_preference(1, Outcome(1)) < 0);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = MajorityGame::new(0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_arity_rejected() {
        let g = MajorityGame::new(3);
        let _ = g.outcome(&all_visible(&[1, 0]));
    }
}
