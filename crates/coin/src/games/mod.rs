//! Concrete one-round coin-flipping games.
//!
//! Each game illustrates a different point on the controllability spectrum
//! the paper draws:
//!
//! | game | forcible to 0 | forcible to 1 | role |
//! |---|---|---|---|
//! | [`MajorityGame`] | with ~√n hides | **never** (hides only lower the count) | the paper's example of one-sided bias (§1.1, §2.1) |
//! | [`ThresholdGame`] | with (ones − q + 1) hides | never | generalised quota voting |
//! | [`ParityGame`] | one hide (of a 1) | one hide | maximally fragile game |
//! | [`OneSidedGame`] | never (hides cannot create a 0) | by hiding every 0 | the shape of SynRan's `Z = 0 → 1` coin rule |
//! | [`DictatorGame`] | hide player 0 | never | degenerate single-point game |
//! | [`TribesGame`] | one hide per live tribe | never | AND-of-ORs, small forcing sets |
//! | [`RecursiveMajorityGame`] | two hides per gate on a root path | never | low individual influence, still one-side controllable |
//! | [`ModKGame`] | — | — | `k > 2` outcomes for Lemma 2.1 |

mod dictator;
mod majority;
mod modk;
mod one_sided;
mod parity;
mod recursive_majority;
mod threshold;
mod tribes;

pub use dictator::DictatorGame;
pub use majority::MajorityGame;
pub use modk::ModKGame;
pub use one_sided::OneSidedGame;
pub use parity::ParityGame;
pub use recursive_majority::RecursiveMajorityGame;
pub use threshold::ThresholdGame;
pub use tribes::TribesGame;

use crate::game::Visible;

/// Counts visible inputs equal to `1` — hidden inputs count as 0, the
/// paper's "any missing value is counted as 0" convention.
pub(crate) fn visible_ones(inputs: &[Visible]) -> usize {
    inputs
        .iter()
        .filter(|v| matches!(v, Visible::Value(1)))
        .count()
}

/// Counts visible inputs equal to `0` (hidden inputs are *not* zeros here;
/// they are absent).
pub(crate) fn visible_zeros(inputs: &[Visible]) -> usize {
    inputs
        .iter()
        .filter(|v| matches!(v, Visible::Value(0)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Visible;

    #[test]
    fn counting_helpers_ignore_hidden() {
        let seq = vec![
            Visible::Value(1),
            Visible::Hidden,
            Visible::Value(0),
            Visible::Value(1),
            Visible::Hidden,
        ];
        assert_eq!(visible_ones(&seq), 2);
        assert_eq!(visible_zeros(&seq), 1);
    }
}
