//! A k-outcome game: sum of visible values modulo k.

use crate::game::{CoinGame, Outcome, Value, Visible};
use synran_sim::SimRng;

/// Sum-mod-k: each player draws uniformly from `0..k`; the outcome is the
/// sum of visible values mod k (hidden counts as 0).
///
/// The workspace's `k > 2` game for exercising Lemma 2.1's general form
/// (`k < √n` outcomes, threshold `k·4·√(n·log n)`). Hiding a player
/// holding `v` shifts the outcome by `−v (mod k)`, so with a modest
/// diversity of visible values the adversary can steer precisely.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, ModKGame, all_visible};
///
/// let game = ModKGame::new(4, 3);
/// assert_eq!(game.outcomes(), 3);
/// assert_eq!(game.outcome(&all_visible(&[2, 2, 1, 0])).0, 2); // 5 mod 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModKGame {
    n: usize,
    k: usize,
}

impl ModKGame {
    /// Creates a sum-mod-`k` game over `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `k < 2`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> ModKGame {
        assert!(n > 0, "mod-k game needs at least one player");
        assert!(k >= 2, "mod-k game needs at least two outcomes");
        ModKGame { n, k }
    }
}

impl CoinGame for ModKGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        self.k
    }

    fn sample_input(&self, _player: usize, rng: &mut SimRng) -> Value {
        rng.below(self.k as u64) as Value
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        let sum: u64 = inputs.iter().filter_map(|v| v.value()).map(u64::from).sum();
        Outcome((sum % self.k as u64) as usize)
    }

    fn hide_preference(&self, value: Value, _target: Outcome) -> i32 {
        // Hiding zeros never moves the sum.
        if value == 0 {
            -1
        } else {
            1
        }
    }

    fn name(&self) -> &str {
        "sum-mod-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, sample_inputs, with_hidden};

    #[test]
    fn sum_mod_k_semantics() {
        let g = ModKGame::new(3, 5);
        assert_eq!(g.outcome(&all_visible(&[4, 4, 4])).0, 2); // 12 mod 5
        assert_eq!(g.outcome(&all_visible(&[0, 0, 0])).0, 0);
    }

    #[test]
    fn hiding_subtracts_the_value() {
        let g = ModKGame::new(3, 5);
        let values = [4, 3, 2];
        assert_eq!(g.outcome(&all_visible(&values)).0, 4);
        assert_eq!(g.outcome(&with_hidden(&values, &[1])).0, 1); // 6 mod 5
    }

    #[test]
    fn inputs_sampled_in_domain() {
        let g = ModKGame::new(100, 7);
        let mut rng = SimRng::new(3);
        let inputs = sample_inputs(&g, &mut rng);
        assert!(inputs.iter().all(|&v| v < 7));
        // All residues should appear in 100 draws with overwhelming prob.
        for r in 0..7u32 {
            assert!(inputs.contains(&r), "residue {r} never drawn");
        }
    }
}
