//! The dictator game.

use crate::game::{CoinGame, Outcome, Value, Visible};

/// Player 0's value decides the game; a hidden dictator counts as 0.
///
/// The extreme of concentrated influence: the adversary controls the
/// outcome toward 0 with a *single* hide, but can force 1 only when the
/// dictator already drew 1. A useful degenerate case for the control
/// estimators.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, DictatorGame, all_visible, with_hidden};
///
/// let game = DictatorGame::new(4);
/// let values = [1, 0, 0, 0];
/// assert_eq!(game.outcome(&all_visible(&values)).0, 1);
/// assert_eq!(game.outcome(&with_hidden(&values, &[0])).0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictatorGame {
    n: usize,
}

impl DictatorGame {
    /// Creates a dictator game over `n` players (player 0 dictates).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> DictatorGame {
        assert!(n > 0, "dictator game needs at least one player");
        DictatorGame { n }
    }
}

impl CoinGame for DictatorGame {
    fn players(&self) -> usize {
        self.n
    }

    fn outcomes(&self) -> usize {
        2
    }

    fn outcome(&self, inputs: &[Visible]) -> Outcome {
        assert_eq!(inputs.len(), self.n, "input length must equal n");
        match inputs[0] {
            Visible::Value(v) => Outcome(usize::from(v == 1)),
            Visible::Hidden => Outcome(0),
        }
    }

    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        // Value-based preference cannot single out player 0; hiding
        // 1-holders first at least reaches the dictator when it holds a 1.
        match (target.0, value) {
            (0, 1) => 1,
            _ => -1,
        }
    }

    fn name(&self) -> &str {
        "dictator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{all_visible, with_hidden};

    #[test]
    fn only_player_zero_matters() {
        let g = DictatorGame::new(3);
        assert_eq!(g.outcome(&all_visible(&[1, 0, 0])).0, 1);
        assert_eq!(g.outcome(&all_visible(&[0, 1, 1])).0, 0);
    }

    #[test]
    fn hiding_dictator_forces_zero() {
        let g = DictatorGame::new(3);
        assert_eq!(g.outcome(&with_hidden(&[1, 1, 1], &[0])).0, 0);
    }

    #[test]
    fn hiding_others_changes_nothing() {
        let g = DictatorGame::new(3);
        assert_eq!(g.outcome(&with_hidden(&[1, 0, 1], &[1, 2])).0, 1);
    }
}
