//! Hamming-ball blow-up on the hypercube and Schechtman's bound.
//!
//! Lemma 2.1's engine is an isoperimetric inequality (Schechtman 1981,
//! a Lévy-type inequality for product spaces): for `A ⊆ Xⁿ` with
//! `Pr(A) = α` and `l ≥ l₀ = 2·√(n·ln(1/α))`,
//!
//! ```text
//! Pr(B(A, l)) ≥ 1 − e^{−(l−l₀)²/4n}
//! ```
//!
//! where `B(A, l)` is everything within `l` coordinate changes of `A`.
//! This module provides the closed-form bound at any scale, and an **exact**
//! blow-up computation on the Boolean hypercube for small `n` so the
//! inequality itself can be verified empirically (experiment E2).

use synran_sim::SimRng;

/// Largest supported dimension for exact hypercube sets (2²⁶ bits = 8 MiB).
pub const MAX_DIMENSION: u32 = 26;

/// A subset of the Boolean hypercube `{0,1}^n`, stored as a bitset over all
/// `2^n` points.
///
/// # Examples
///
/// ```
/// use synran_coin::HypercubeSet;
///
/// let mut a = HypercubeSet::empty(4);
/// a.insert(0b0000);
/// let ball = a.blow_up(1); // Hamming ball of radius 1 around 0000
/// assert_eq!(ball.count(), 5); // center + 4 neighbours
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubeSet {
    n: u32,
    words: Vec<u64>,
}

impl HypercubeSet {
    /// The empty subset of `{0,1}^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`MAX_DIMENSION`].
    #[must_use]
    pub fn empty(n: u32) -> HypercubeSet {
        assert!(
            (1..=MAX_DIMENSION).contains(&n),
            "dimension must be in 1..={MAX_DIMENSION}"
        );
        let bits = 1usize << n;
        HypercubeSet {
            n,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The full cube `{0,1}^n`.
    #[must_use]
    pub fn full(n: u32) -> HypercubeSet {
        let mut s = HypercubeSet::empty(n);
        let bits = 1usize << n;
        for (i, w) in s.words.iter_mut().enumerate() {
            let remaining = bits - i * 64;
            *w = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
        }
        s
    }

    /// The set containing exactly `point`.
    #[must_use]
    pub fn singleton(n: u32, point: u32) -> HypercubeSet {
        let mut s = HypercubeSet::empty(n);
        s.insert(point);
        s
    }

    /// Builds a set from an iterator of points.
    #[must_use]
    pub fn from_points<I: IntoIterator<Item = u32>>(n: u32, points: I) -> HypercubeSet {
        let mut s = HypercubeSet::empty(n);
        for p in points {
            s.insert(p);
        }
        s
    }

    /// A random set including each point independently with probability `p`.
    #[must_use]
    pub fn random(n: u32, p: f64, rng: &mut SimRng) -> HypercubeSet {
        let mut s = HypercubeSet::empty(n);
        for point in 0..(1u32 << n) {
            if rng.chance(p) {
                s.insert(point);
            }
        }
        s
    }

    /// The dimension `n`.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.n
    }

    /// Adds `point` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `point` has bits above the dimension.
    pub fn insert(&mut self, point: u32) {
        assert!(point < (1u32 << self.n), "point outside the cube");
        self.words[(point / 64) as usize] |= 1u64 << (point % 64);
    }

    /// Tests membership.
    #[must_use]
    pub fn contains(&self, point: u32) -> bool {
        if point >= (1u32 << self.n) {
            return false;
        }
        self.words[(point / 64) as usize] >> (point % 64) & 1 == 1
    }

    /// Number of points in the set.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The set's measure under the uniform distribution: `|A| / 2^n`.
    #[must_use]
    pub fn measure(&self) -> f64 {
        self.count() as f64 / (1u64 << self.n) as f64
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the points of the set in ascending order.
    pub fn points(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.n;
        (0..(1u32 << n)).filter(move |&p| self.contains(p))
    }

    /// Everything within Hamming distance 1 of the set (including the set).
    #[must_use]
    pub fn expand_once(&self) -> HypercubeSet {
        let mut out = self.clone();
        for p in self.points() {
            for bit in 0..self.n {
                out.insert(p ^ (1 << bit));
            }
        }
        out
    }

    /// The paper's `B(A, l)`: everything within Hamming distance `l`.
    ///
    /// `blow_up(0)` is the set itself.
    #[must_use]
    pub fn blow_up(&self, l: u32) -> HypercubeSet {
        let mut cur = self.clone();
        for _ in 0..l {
            let next = cur.expand_once();
            if next == cur {
                break; // saturated (either empty or the full cube region)
            }
            cur = next;
        }
        cur
    }

    /// The Hamming ball of radius `r` around `center`.
    #[must_use]
    pub fn ball(n: u32, center: u32, r: u32) -> HypercubeSet {
        HypercubeSet::singleton(n, center).blow_up(r)
    }
}

/// Schechtman's critical radius `l₀ = 2·√(n·ln(1/α))` for a set of
/// measure `alpha`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
#[must_use]
pub fn schechtman_l0(n: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    2.0 * ((n as f64) * (1.0 / alpha).ln()).sqrt()
}

/// Schechtman's lower bound on `Pr(B(A, l))` for `Pr(A) = alpha`:
/// `1 − e^{−(l−l₀)²/4n}` when `l ≥ l₀`, and 0 (trivial) otherwise.
///
/// The returned value is always a valid probability lower bound — the
/// theorem's content is that it approaches 1 once `l` passes `l₀` by a few
/// `√n`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use synran_coin::{schechtman_bound, schechtman_l0};
///
/// let n = 10_000;
/// let alpha = 0.01;
/// let l0 = schechtman_l0(n, alpha);
/// // Well past l0 the blow-up has nearly full measure.
/// assert!(schechtman_bound(n, alpha, (l0 + 400.0) as u32) > 0.98);
/// ```
#[must_use]
pub fn schechtman_bound(n: usize, alpha: f64, l: u32) -> f64 {
    let l0 = schechtman_l0(n, alpha);
    let lf = f64::from(l);
    if lf <= l0 {
        return 0.0;
    }
    1.0 - (-(lf - l0).powi(2) / (4.0 * n as f64)).exp()
}

/// The bound specialised as Lemma 2.1 uses it: `α = 1/n`,
/// `l = h = 4√(n·ln n)`, giving `Pr(B(U^v, h)) ≥ 1 − 1/n`.
#[must_use]
pub fn lemma_2_1_blowup_bound(n: usize) -> f64 {
    // (4√(n ln n) − 2√(n ln n))² / 4n = (2√(n ln n))²/4n = ln n,
    // so the bound is exactly 1 − e^{−ln n} = 1 − 1/n.
    schechtman_bound(
        n,
        1.0 / n as f64,
        crate::control::bias_radius(n).ceil() as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = HypercubeSet::empty(5);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        assert_eq!(e.measure(), 0.0);
        let f = HypercubeSet::full(5);
        assert_eq!(f.count(), 32);
        assert_eq!(f.measure(), 1.0);
        // Full sets above one word, with a partial tail word.
        let f7 = HypercubeSet::full(7);
        assert_eq!(f7.count(), 128);
        let f5 = HypercubeSet::full(5);
        assert_eq!(f5.count(), 32);
    }

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = HypercubeSet::empty(6);
        for p in [0u32, 5, 17, 63] {
            assert!(!s.contains(p));
            s.insert(p);
            assert!(s.contains(p));
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.points().collect::<Vec<_>>(), vec![0, 5, 17, 63]);
    }

    #[test]
    #[should_panic(expected = "outside the cube")]
    fn insert_out_of_range_panics() {
        HypercubeSet::empty(3).insert(8);
    }

    #[test]
    fn ball_sizes_match_binomials() {
        // |B(point, r)| = Σ_{i≤r} C(n, i).
        let n = 8u32;
        let binom = |k: u32| -> u64 {
            (0..k).fold(1u64, |acc, i| acc * u64::from(n - i) / u64::from(i + 1))
        };
        for r in 0..=3u32 {
            let expect: u64 = (0..=r).map(binom).sum();
            assert_eq!(HypercubeSet::ball(n, 0b1010_1010 & 0xff, r).count(), expect);
        }
    }

    #[test]
    fn blow_up_is_monotone_and_saturates() {
        let mut rng = SimRng::new(9);
        let a = HypercubeSet::random(8, 0.05, &mut rng);
        let mut prev = a.count();
        for l in 1..=8 {
            let b = a.blow_up(l);
            assert!(b.count() >= prev, "blow-up must be monotone");
            prev = b.count();
        }
        if !a.is_empty() {
            assert_eq!(a.blow_up(8).count(), 256, "radius n covers the cube");
        }
    }

    #[test]
    fn blow_up_zero_is_identity() {
        let mut rng = SimRng::new(10);
        let a = HypercubeSet::random(7, 0.2, &mut rng);
        assert_eq!(a.blow_up(0), a);
    }

    #[test]
    fn expand_composes() {
        let mut rng = SimRng::new(11);
        let a = HypercubeSet::random(6, 0.1, &mut rng);
        assert_eq!(a.expand_once().expand_once(), a.blow_up(2));
    }

    #[test]
    fn schechtman_l0_decreasing_in_alpha() {
        let n = 100;
        assert!(schechtman_l0(n, 0.01) > schechtman_l0(n, 0.5));
        assert_eq!(schechtman_l0(n, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn schechtman_rejects_zero_alpha() {
        let _ = schechtman_l0(10, 0.0);
    }

    #[test]
    fn bound_is_a_probability_and_monotone_in_l() {
        let n = 200;
        let alpha = 0.1;
        let mut prev = -1.0;
        for l in 0..200u32 {
            let b = schechtman_bound(n, alpha, l);
            assert!((0.0..=1.0).contains(&b));
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bound_holds_exactly_on_small_cubes() {
        // The actual content of E2, in miniature: for random sets on
        // {0,1}^10, the exact blow-up measure dominates the bound.
        let n = 10u32;
        let mut rng = SimRng::new(12);
        for density in [0.01, 0.05, 0.2, 0.5] {
            let a = HypercubeSet::random(n, density, &mut rng);
            if a.is_empty() {
                continue;
            }
            let alpha = a.measure();
            for l in 0..=n {
                let exact = a.blow_up(l).measure();
                let bound = schechtman_bound(n as usize, alpha, l);
                assert!(
                    exact + 1e-12 >= bound,
                    "n={n} α={alpha} l={l}: exact {exact} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_2_1_instantiation_matches_closed_form() {
        // Pr(B(U^v, h)) ≥ 1 − 1/n exactly, by the algebra in the lemma.
        for n in [16usize, 64, 256, 1024] {
            let b = lemma_2_1_blowup_bound(n);
            let target = 1.0 - 1.0 / n as f64;
            assert!(b >= target - 0.02, "n={n}: bound {b} should be ≈ {target}");
        }
    }
}
