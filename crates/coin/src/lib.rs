//! # synran-coin — one-round collective coin-flipping games (§2)
//!
//! Part of the [`synran`](https://github.com/synran/synran) reproduction of
//! *Bar-Joseph & Ben-Or, "A Tight Lower Bound for Randomized Synchronous
//! Consensus" (PODC 1998)*.
//!
//! A **one-round collective coin-flipping game** combines `n` independent
//! local random inputs into a global outcome via a function `f`. The
//! adversary studied here is adaptive and fail-stop: it sees *all* drawn
//! inputs, then hides up to `t` of them (the paper's `—` default value)
//! before `f` is applied.
//!
//! The paper's §2 proves (Lemma 2.1 / Corollary 2.2) that for any game
//! with `k < √n` outcomes, an adversary with `t > k·4·√(n·log n)` hides can
//! force **some** particular outcome with probability `> 1 − 1/n` — but not
//! necessarily *every* outcome: 0-default majority can be forced to 0 and
//! never to 1. That asymmetry is exactly what the SynRan protocol's
//! one-side-biased coin rule exploits.
//!
//! ## Quick start
//!
//! ```
//! use synran_coin::{
//!     estimate_control, bias_radius, CombinedHider, MajorityGame, Outcome,
//! };
//! use synran_sim::SimRng;
//!
//! let n = 25;
//! let game = MajorityGame::new(n);
//! let t = bias_radius(n).ceil() as usize; // the paper's h = 4√(n log n)
//! let est = estimate_control(&game, &CombinedHider::default(), t.min(n), 200,
//!                            &mut SimRng::new(7));
//! // Majority-with-default-0 is controlled toward 0 ...
//! assert_eq!(est.best_outcome().0, Outcome(0));
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`CoinGame`], [`Visible`], [`Outcome`] | the game abstraction |
//! | [`MajorityGame`], [`ParityGame`], [`OneSidedGame`], [`DictatorGame`], [`TribesGame`], [`ThresholdGame`], [`ModKGame`] | concrete games |
//! | [`ExhaustiveHider`], [`GreedyHider`], [`CombinedHider`] | hide-set searchers |
//! | [`exact_influences`], [`estimate_influences`] | Ben-Or–Linial influences ([BOL89]'s measure, which fail-stop hiding sidesteps) |
//! | [`estimate_control`], [`bias_radius`], [`control_threshold`] | Lemma 2.1 / Corollary 2.2 machinery |
//! | [`HypercubeSet`], [`schechtman_bound`] | isoperimetric blow-up, exact and closed-form |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod adversary;
mod blowup;
mod control;
mod game;
mod games;
mod influence;

pub use adversary::{CombinedHider, ExhaustiveHider, GreedyHider, HideSearch, SearchOutcome};
pub use blowup::{
    lemma_2_1_blowup_bound, schechtman_bound, schechtman_l0, HypercubeSet, MAX_DIMENSION,
};
pub use control::{
    bias_radius, control_threshold, estimate_control, exact_uncontrollable, ControlEstimate,
};
pub use game::{all_visible, sample_inputs, with_hidden, CoinGame, Outcome, Value, Visible};
pub use games::{
    DictatorGame, MajorityGame, ModKGame, OneSidedGame, ParityGame, RecursiveMajorityGame,
    ThresholdGame, TribesGame,
};
pub use influence::{estimate_influences, exact_influences, InfluenceProfile};
