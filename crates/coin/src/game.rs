//! The one-round collective coin-flipping game abstraction.
//!
//! A game (paper §2) has `n` participants, each drawing one input from its
//! own distribution. After seeing **all** inputs, an adaptive `t`-adversary
//! may hide up to `t` of them — replacing their value with the default `—`
//! — and the outcome function `f` is applied to the resulting sequence.

use std::fmt;

use synran_sim::SimRng;

/// A player's input value. Games interpret values freely; binary games use
/// `0` and `1`.
pub type Value = u32;

/// The index of a game outcome, in `0..k`.
///
/// Binary games use outcome `0` and `1`; the consensus reduction in §3.3
/// uses three outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome(pub usize);

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "outcome {}", self.0)
    }
}

/// A player's input as the outcome function sees it: the drawn value, or
/// the paper's default value `—` if the adversary hid it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visible {
    /// The original input survived.
    Value(Value),
    /// The adversary hid this input (the paper's `—`).
    Hidden,
}

impl Visible {
    /// The value, if it is visible.
    #[must_use]
    pub fn value(self) -> Option<Value> {
        match self {
            Visible::Value(v) => Some(v),
            Visible::Hidden => None,
        }
    }

    /// `true` if the adversary hid this input.
    #[must_use]
    pub fn is_hidden(self) -> bool {
        matches!(self, Visible::Hidden)
    }
}

impl From<Value> for Visible {
    fn from(v: Value) -> Visible {
        Visible::Value(v)
    }
}

impl fmt::Display for Visible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Visible::Value(v) => write!(f, "{v}"),
            Visible::Hidden => write!(f, "—"),
        }
    }
}

/// A one-round collective coin-flipping game: input distributions plus the
/// outcome function `f`.
///
/// Implementations must be pure: [`CoinGame::outcome`] may not depend on
/// anything but the visible sequence. The adversary machinery (the
/// [`HideSearch`](crate::HideSearch) searchers and
/// [`estimate_control`](crate::estimate_control)) relies on re-evaluating
/// `f` under candidate hide-sets.
///
/// # Examples
///
/// ```
/// use synran_coin::{CoinGame, MajorityGame, Visible};
///
/// let game = MajorityGame::new(5);
/// assert_eq!(game.players(), 5);
/// assert_eq!(game.outcomes(), 2);
/// let inputs: Vec<Visible> = [1, 1, 1, 0, 0].map(Visible::Value).to_vec();
/// assert_eq!(game.outcome(&inputs).0, 1);
/// ```
pub trait CoinGame {
    /// Number of participants `n`.
    fn players(&self) -> usize;

    /// Number of possible outcomes `k`.
    fn outcomes(&self) -> usize;

    /// Draws player `player`'s input from its distribution.
    ///
    /// The default distribution is a fair coin (`0` or `1`), which is the
    /// extremal case the paper analyses; games over richer domains
    /// override this.
    fn sample_input(&self, player: usize, rng: &mut SimRng) -> Value {
        let _ = player;
        rng.bit().as_u8().into()
    }

    /// The outcome function `f` applied to a visible sequence.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `inputs.len() != self.players()`.
    fn outcome(&self, inputs: &[Visible]) -> Outcome;

    /// How much the adversary should prefer hiding a player holding
    /// `value` when trying to force `target`. Larger is hidden first.
    ///
    /// This steers the scalable greedy adversary in
    /// [`crate::adversary::GreedyHider`]; games where hiding priority is
    /// not a function of the value alone can leave the default (no
    /// preference), at the cost of a weaker greedy adversary.
    fn hide_preference(&self, value: Value, target: Outcome) -> i32 {
        let _ = (value, target);
        0
    }

    /// Short name used in experiment tables.
    fn name(&self) -> &str;
}

/// Draws a full input vector for `game`.
///
/// # Examples
///
/// ```
/// use synran_coin::{sample_inputs, MajorityGame};
/// use synran_sim::SimRng;
///
/// let game = MajorityGame::new(9);
/// let inputs = sample_inputs(&game, &mut SimRng::new(1));
/// assert_eq!(inputs.len(), 9);
/// ```
#[must_use]
pub fn sample_inputs<G: CoinGame + ?Sized>(game: &G, rng: &mut SimRng) -> Vec<Value> {
    (0..game.players())
        .map(|p| game.sample_input(p, rng))
        .collect()
}

/// Converts raw values to a fully-visible sequence.
#[must_use]
pub fn all_visible(values: &[Value]) -> Vec<Visible> {
    values.iter().copied().map(Visible::Value).collect()
}

/// Applies a hide-set: the paper's `y_s̄`, replacing the inputs at the
/// coordinates in `hide` with `—`.
///
/// # Panics
///
/// Panics if any index in `hide` is out of range.
#[must_use]
pub fn with_hidden(values: &[Value], hide: &[usize]) -> Vec<Visible> {
    let mut seq = all_visible(values);
    for &i in hide {
        seq[i] = Visible::Hidden;
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visible_accessors() {
        assert_eq!(Visible::Value(3).value(), Some(3));
        assert_eq!(Visible::Hidden.value(), None);
        assert!(Visible::Hidden.is_hidden());
        assert!(!Visible::Value(0).is_hidden());
        assert_eq!(Visible::from(7u32), Visible::Value(7));
    }

    #[test]
    fn display_uses_em_dash_for_hidden() {
        assert_eq!(Visible::Hidden.to_string(), "—");
        assert_eq!(Visible::Value(4).to_string(), "4");
        assert_eq!(Outcome(2).to_string(), "outcome 2");
    }

    #[test]
    fn with_hidden_masks_exactly_requested() {
        let values = [0, 1, 1, 0, 1];
        let seq = with_hidden(&values, &[1, 3]);
        assert_eq!(seq[0], Visible::Value(0));
        assert!(seq[1].is_hidden());
        assert_eq!(seq[2], Visible::Value(1));
        assert!(seq[3].is_hidden());
        assert_eq!(seq[4], Visible::Value(1));
    }

    #[test]
    fn with_hidden_empty_hides_nothing() {
        let values = [1, 0];
        assert_eq!(with_hidden(&values, &[]), all_visible(&values));
    }
}
