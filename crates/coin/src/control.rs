//! Control over one-round games: the machinery of Lemma 2.1 / Corollary 2.2.
//!
//! The paper defines `U^v` as the set of input vectors from which no
//! `t`-adversary can force outcome `v`, and proves that for
//! `t > k·4·√(n·log n)` **some** outcome `v` has `Pr(U^v) < 1/n` — i.e. the
//! adversary *controls* the game toward `v` (Corollary 2.2). This module
//! estimates `Pr(U^v)` empirically: sample input vectors, run a hide-set
//! search per outcome, and tally.

use crate::adversary::{HideSearch, SearchOutcome};
use crate::game::{sample_inputs, CoinGame, Outcome};
use synran_sim::SimRng;

/// The paper's `h = 4·√(n·log n)` — the per-outcome bias radius of
/// Lemma 2.1 (natural log; the paper's constant is asymptotic, so the
/// base only shifts it).
///
/// # Examples
///
/// ```
/// let h = synran_coin::bias_radius(100);
/// assert!((h - 4.0 * (100.0f64 * 100.0f64.ln()).sqrt()).abs() < 1e-9);
/// ```
#[must_use]
pub fn bias_radius(n: usize) -> f64 {
    let nf = n as f64;
    4.0 * (nf * nf.max(2.0).ln()).sqrt()
}

/// The failure budget above which Lemma 2.1 guarantees control of a
/// `k`-outcome game: `k · 4·√(n·log n)`.
#[must_use]
pub fn control_threshold(n: usize, k: usize) -> f64 {
    k as f64 * bias_radius(n)
}

/// Empirical estimate of per-outcome forcibility for one `(game, t)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlEstimate {
    samples: usize,
    forced: Vec<usize>,
    proven_impossible: Vec<usize>,
}

impl ControlEstimate {
    /// Number of sampled input vectors.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Fraction of samples where the searcher forced outcome `v` — an
    /// empirical lower bound on `1 − Pr(U^v)` (exact when the searcher is
    /// exhaustive and within budget).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an outcome of the game.
    #[must_use]
    pub fn forcible_fraction(&self, v: Outcome) -> f64 {
        self.forced[v.0] as f64 / self.samples as f64
    }

    /// Fraction of samples where forcing `v` was *proven* impossible — an
    /// empirical lower bound on `Pr(U^v)`.
    #[must_use]
    pub fn impossible_fraction(&self, v: Outcome) -> f64 {
        self.proven_impossible[v.0] as f64 / self.samples as f64
    }

    /// The outcome with the highest forcible fraction, with its fraction.
    #[must_use]
    pub fn best_outcome(&self) -> (Outcome, f64) {
        let (v, &count) = self
            .forced
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("games have at least one outcome");
        (Outcome(v), count as f64 / self.samples as f64)
    }

    /// Corollary 2.2's verdict: the controlled outcome, if some outcome is
    /// forcible in at least `threshold` of the samples.
    ///
    /// For the paper's statement use `threshold = 1 − 1/n`.
    #[must_use]
    pub fn controlled_outcome(&self, threshold: f64) -> Option<Outcome> {
        let (v, frac) = self.best_outcome();
        (frac >= threshold).then_some(v)
    }

    /// Per-outcome forcible fractions in outcome order.
    #[must_use]
    pub fn forcible_fractions(&self) -> Vec<f64> {
        (0..self.forced.len())
            .map(|v| self.forcible_fraction(Outcome(v)))
            .collect()
    }
}

/// Samples `samples` input vectors for `game` and, for every outcome,
/// searches for a hide-set of size ≤ `t` forcing it.
///
/// # Panics
///
/// Panics if `samples` is zero.
///
/// # Examples
///
/// ```
/// use synran_coin::{estimate_control, CombinedHider, MajorityGame, Outcome};
/// use synran_sim::SimRng;
///
/// let game = MajorityGame::new(25);
/// let est = estimate_control(&game, &CombinedHider::default(), 13, 50, &mut SimRng::new(1));
/// // With t = n/2 hides, majority-0 is forcible to 0 from any input.
/// assert_eq!(est.forcible_fraction(Outcome(0)), 1.0);
/// ```
#[must_use]
pub fn estimate_control<G: CoinGame + ?Sized, S: HideSearch>(
    game: &G,
    searcher: &S,
    t: usize,
    samples: usize,
    rng: &mut SimRng,
) -> ControlEstimate {
    assert!(samples > 0, "need at least one sample");
    let k = game.outcomes();
    let mut forced = vec![0usize; k];
    let mut proven_impossible = vec![0usize; k];
    for _ in 0..samples {
        let values = sample_inputs(game, rng);
        for v in 0..k {
            match searcher.force(game, &values, t, Outcome(v)) {
                SearchOutcome::Forced(_) => forced[v] += 1,
                SearchOutcome::Impossible => proven_impossible[v] += 1,
                SearchOutcome::Unknown => {}
            }
        }
    }
    ControlEstimate {
        samples,
        forced,
        proven_impossible,
    }
}

/// Computes `Pr(U^v)` **exactly** for a binary-fair-input game by
/// enumerating all `2^n` input vectors and running the exact hide-set
/// search on each — the paper's `U^v` with no sampling error.
///
/// `U^v` is the set of input vectors from which *no* hide-set of size ≤ t
/// forces outcome `v`; Lemma 2.1 asserts some `v` has `Pr(U^v) < 1/n` once
/// `t > k·4√(n·log n)`.
///
/// # Panics
///
/// Panics if `n > 20` (enumeration cost) or the game's input distribution
/// is not the fair coin (checked by sampling: any sampled input outside
/// `{0, 1}` trips the assertion — games with richer domains need the
/// Monte-Carlo estimator instead).
///
/// # Examples
///
/// ```
/// use synran_coin::{exact_uncontrollable, MajorityGame, Outcome};
///
/// // With t = 2 hides on 5 players, forcing 0 fails only on the all-but-
/// // two-ones inputs where too few 1s can be hidden... enumerate exactly:
/// let p = exact_uncontrollable(&MajorityGame::new(5), 2, Outcome(1));
/// // Forcing 1 is impossible unless the input already majorizes to 1:
/// // exactly half the cube (16/32 vectors) is uncontrollable toward 1.
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn exact_uncontrollable<G: CoinGame + ?Sized>(game: &G, t: usize, v: Outcome) -> f64 {
    use crate::adversary::{ExhaustiveHider, SearchOutcome};
    use crate::game::all_visible;

    let n = game.players();
    assert!(n <= 20, "exact enumeration needs n ≤ 20 (got {n})");
    {
        // Fair-coin check: sample a few inputs and insist they are bits.
        let mut rng = SimRng::new(0x0b17);
        for _ in 0..64 {
            for p in 0..n {
                assert!(
                    game.sample_input(p, &mut rng) <= 1,
                    "exact_uncontrollable requires binary inputs"
                );
            }
        }
    }
    let searcher = ExhaustiveHider::with_budget(u64::MAX);
    let total = 1u64 << n;
    let mut uncontrollable = 0u64;
    let mut values = vec![0u32; n];
    for point in 0..total {
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = ((point >> i) & 1) as u32;
        }
        // Already-v inputs are trivially controllable (empty hide-set).
        if game.outcome(&all_visible(&values)) == v {
            continue;
        }
        match searcher.force(game, &values, t, v) {
            SearchOutcome::Forced(_) => {}
            SearchOutcome::Impossible => uncontrollable += 1,
            SearchOutcome::Unknown => unreachable!("unbounded exhaustive search cannot give up"),
        }
    }
    uncontrollable as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CombinedHider, ExhaustiveHider, GreedyHider};
    use crate::games::{MajorityGame, OneSidedGame, ParityGame};

    #[test]
    fn bias_radius_monotone_in_n() {
        let mut prev = 0.0;
        for n in [4usize, 16, 64, 256, 1024] {
            let h = bias_radius(n);
            assert!(h > prev, "h({n}) = {h} not increasing");
            prev = h;
        }
    }

    #[test]
    fn control_threshold_scales_with_k() {
        let n = 100;
        assert!((control_threshold(n, 3) - 3.0 * bias_radius(n)).abs() < 1e-9);
    }

    #[test]
    fn parity_is_controlled_both_ways_with_one_hide() {
        let g = ParityGame::new(11);
        let mut rng = SimRng::new(5);
        let est = estimate_control(&g, &GreedyHider, 1, 300, &mut rng);
        // Either outcome is forcible unless all coins landed 0 (2^-11).
        assert!(est.forcible_fraction(Outcome(0)) > 0.95);
        assert!(est.forcible_fraction(Outcome(1)) > 0.95);
        assert!(est.controlled_outcome(1.0 - 1.0 / 11.0).is_some());
    }

    #[test]
    fn majority_controlled_to_zero_only() {
        let g = MajorityGame::new(15);
        let mut rng = SimRng::new(6);
        let est = estimate_control(&g, &ExhaustiveHider::default(), 4, 100, &mut rng);
        // Hiding up to 4 of 15 can almost always erase a majority of 1s...
        assert!(est.forcible_fraction(Outcome(0)) > 0.9);
        // ...but 1 is forcible only when already true (≈ half the time).
        assert!(est.forcible_fraction(Outcome(1)) < 0.8);
        assert!(est.impossible_fraction(Outcome(1)) > 0.2);
        assert_eq!(est.best_outcome().0, Outcome(0));
    }

    #[test]
    fn one_sided_controlled_to_zero() {
        // With no hides allowed, outcome 0 already holds w.p. 1 − 2^-n.
        let g = OneSidedGame::new(12);
        let mut rng = SimRng::new(7);
        let est = estimate_control(&g, &GreedyHider, 0, 200, &mut rng);
        assert!(est.forcible_fraction(Outcome(0)) > 0.99);
        assert_eq!(est.controlled_outcome(1.0 - 1.0 / 12.0), Some(Outcome(0)));
    }

    #[test]
    fn fractions_sum_constraints() {
        let g = MajorityGame::new(9);
        let mut rng = SimRng::new(8);
        let est = estimate_control(&g, &CombinedHider::default(), 2, 50, &mut rng);
        for v in 0..2 {
            let f = est.forcible_fraction(Outcome(v));
            let i = est.impossible_fraction(Outcome(v));
            assert!((0.0..=1.0).contains(&f));
            assert!((0.0..=1.0).contains(&i));
            // Exhaustive-backed searches decide every sample.
            assert!((f + i - 1.0).abs() < 1e-9, "f = {f}, i = {i}");
        }
        assert_eq!(est.samples(), 50);
        assert_eq!(est.forcible_fractions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let g = MajorityGame::new(3);
        let mut rng = SimRng::new(0);
        let _ = estimate_control(&g, &GreedyHider, 1, 0, &mut rng);
    }

    #[test]
    fn exact_uncontrollable_known_values() {
        // Parity with t ≥ 1: only the all-zeros input resists forcing
        // either outcome (no 1 to hide): Pr(U^v) = 2^-n for the opposite
        // of what all-zeros yields, 0 for outcome 0 itself.
        let g = ParityGame::new(6);
        let p1 = exact_uncontrollable(&g, 1, Outcome(1));
        assert!((p1 - 1.0 / 64.0).abs() < 1e-12, "p1 = {p1}");
        let p0 = exact_uncontrollable(&g, 1, Outcome(0));
        assert_eq!(p0, 0.0, "all-zeros already evaluates to 0");

        // Majority of 5, unlimited hides: U^0 is empty (hide every 1),
        // U^1 is exactly the inputs with a 0-majority.
        let g = MajorityGame::new(5);
        assert_eq!(exact_uncontrollable(&g, 5, Outcome(0)), 0.0);
        assert!((exact_uncontrollable(&g, 5, Outcome(1)) - 0.5).abs() < 1e-12);

        // One-sided: U^1 = nothing (hide all zeros), U^0 = the all-ones
        // point only.
        let g = OneSidedGame::new(5);
        assert_eq!(exact_uncontrollable(&g, 5, Outcome(1)), 0.0);
        assert!((exact_uncontrollable(&g, 5, Outcome(0)) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn exact_uncontrollable_decreases_with_budget() {
        let g = MajorityGame::new(7);
        let mut prev = 1.0;
        for t in 0..=7 {
            let p = exact_uncontrollable(&g, t, Outcome(0));
            assert!(p <= prev + 1e-12, "t={t}: {p} > {prev}");
            prev = p;
        }
        assert_eq!(prev, 0.0, "unlimited hides force 0 from anywhere");
    }

    #[test]
    fn monte_carlo_matches_exact_enumeration() {
        // The estimator's impossible_fraction is the sampled version of
        // exact_uncontrollable; they must agree within sampling noise.
        let g = MajorityGame::new(9);
        let t = 2;
        let exact = exact_uncontrollable(&g, t, Outcome(1));
        let mut rng = SimRng::new(21);
        let est = estimate_control(&g, &ExhaustiveHider::default(), t, 2_000, &mut rng);
        let sampled = est.impossible_fraction(Outcome(1));
        assert!(
            (sampled - exact).abs() < 0.04,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "binary inputs")]
    fn exact_uncontrollable_rejects_rich_domains() {
        let g = crate::games::ModKGame::new(4, 3);
        let _ = exact_uncontrollable(&g, 1, Outcome(0));
    }
}
