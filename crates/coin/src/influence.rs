//! Ben-Or–Linial influences: the classical robustness measure the paper's
//! §2 quietly upends.
//!
//! The **influence** of player `i` on a game is the probability (over the
//! other inputs) that flipping `i`'s input flips the outcome. The
//! collective-coin-flipping literature the paper cites ([BOL89]) designs
//! games minimising the *maximum individual influence* — recursive
//! majority gets it down to `O(n^{−0.63})` — on the theory that
//! low-influence players cannot bias the coin.
//!
//! A **fail-stop** adversary plays a different game: it does not flip
//! inputs, it *hides* them after seeing everything, and it buys many hides
//! at once. E1's influence section shows the punchline: recursive majority
//! has a fraction of flat majority's per-player influence, yet both are
//! forced to 0 by the same `~√n` hides. Influence measures resilience to
//! corruptions, not to adaptive crashes.

use synran_sim::SimRng;

use crate::game::{all_visible, sample_inputs, CoinGame, Visible};

/// Per-player influences of a binary-input game.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluenceProfile {
    influences: Vec<f64>,
}

impl InfluenceProfile {
    /// The influence of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn of(&self, i: usize) -> f64 {
        self.influences[i]
    }

    /// All influences, in player order.
    #[must_use]
    pub fn all(&self) -> &[f64] {
        &self.influences
    }

    /// The largest individual influence — [BOL89]'s design target.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.influences.iter().copied().fold(0.0, f64::max)
    }

    /// The total influence (the average sensitivity / edge boundary).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.influences.iter().sum()
    }
}

/// Computes exact influences by enumerating all `2^n` fair-coin inputs.
///
/// # Panics
///
/// Panics if the game has more than 22 players (enumeration would exceed
/// ~4M × n evaluations) or non-binary outcomes.
#[must_use]
pub fn exact_influences<G: CoinGame + ?Sized>(game: &G) -> InfluenceProfile {
    let n = game.players();
    assert!(n <= 22, "exact influences need n ≤ 22 (got {n})");
    assert_eq!(
        game.outcomes(),
        2,
        "influences are defined for binary games"
    );
    let mut flips = vec![0u64; n];
    let total = 1u64 << n;
    let mut seq: Vec<Visible> = all_visible(&vec![0; n]);
    for point in 0..total {
        for (i, slot) in seq.iter_mut().enumerate() {
            *slot = Visible::Value(((point >> i) & 1) as u32);
        }
        let base = game.outcome(&seq);
        for i in 0..n {
            let original = seq[i];
            seq[i] = Visible::Value(((point >> i) & 1 ^ 1) as u32);
            if game.outcome(&seq) != base {
                flips[i] += 1;
            }
            seq[i] = original;
        }
    }
    InfluenceProfile {
        influences: flips.iter().map(|&f| f as f64 / total as f64).collect(),
    }
}

/// Estimates influences by sampling `samples` input vectors.
///
/// # Panics
///
/// Panics if `samples` is zero or the game is not binary-outcome.
#[must_use]
pub fn estimate_influences<G: CoinGame + ?Sized>(
    game: &G,
    samples: usize,
    rng: &mut SimRng,
) -> InfluenceProfile {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(
        game.outcomes(),
        2,
        "influences are defined for binary games"
    );
    let n = game.players();
    let mut flips = vec![0u64; n];
    for _ in 0..samples {
        let values = sample_inputs(game, rng);
        let mut seq = all_visible(&values);
        let base = game.outcome(&seq);
        for i in 0..n {
            let original = seq[i];
            seq[i] = Visible::Value(values[i] ^ 1);
            if game.outcome(&seq) != base {
                flips[i] += 1;
            }
            seq[i] = original;
        }
    }
    InfluenceProfile {
        influences: flips.iter().map(|&f| f as f64 / samples as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::{DictatorGame, MajorityGame, ParityGame, RecursiveMajorityGame, TribesGame};

    #[test]
    fn dictator_concentrates_all_influence() {
        let p = exact_influences(&DictatorGame::new(5));
        assert_eq!(p.of(0), 1.0);
        for i in 1..5 {
            assert_eq!(p.of(i), 0.0);
        }
        assert_eq!(p.max(), 1.0);
        assert_eq!(p.total(), 1.0);
    }

    #[test]
    fn parity_gives_everyone_full_influence() {
        let p = exact_influences(&ParityGame::new(6));
        for i in 0..6 {
            assert_eq!(p.of(i), 1.0);
        }
        assert_eq!(p.total(), 6.0);
    }

    #[test]
    fn majority_influence_matches_central_binomial() {
        // For odd n, a player is pivotal iff the others split (n−1)/2 each:
        // influence = C(n−1, (n−1)/2) / 2^{n−1}.
        let n = 9usize;
        let p = exact_influences(&MajorityGame::new(n));
        let expected = 70.0 / 256.0; // C(8,4)/2^8
        for i in 0..n {
            assert!(
                (p.of(i) - expected).abs() < 1e-12,
                "player {i}: {}",
                p.of(i)
            );
        }
    }

    #[test]
    fn recursive_majority_has_lower_influence_than_flat() {
        // The [BOL89] point: same n, much smaller per-player influence...
        let flat = exact_influences(&MajorityGame::new(9));
        let tree = exact_influences(&RecursiveMajorityGame::new(2));
        assert!(
            tree.max() < flat.max(),
            "tree {} should be below flat {}",
            tree.max(),
            flat.max()
        );
        // Depth-2 tree: pivotal iff pivotal in your gate (1/2) and your
        // gate pivotal at the root (1/2): influence = 1/4.
        assert!((tree.max() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tribes_influence_is_asymmetric_in_structure_only() {
        // All players symmetric within the tribes layout.
        let p = exact_influences(&TribesGame::new(2, 3));
        let first = p.of(0);
        for i in 1..6 {
            assert!((p.of(i) - first).abs() < 1e-12);
        }
        assert!(first > 0.0);
    }

    #[test]
    fn estimates_converge_to_exact() {
        let game = MajorityGame::new(7);
        let exact = exact_influences(&game);
        let mut rng = SimRng::new(5);
        let est = estimate_influences(&game, 20_000, &mut rng);
        for i in 0..7 {
            assert!(
                (est.of(i) - exact.of(i)).abs() < 0.02,
                "player {i}: est {} vs exact {}",
                est.of(i),
                exact.of(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "n ≤ 22")]
    fn exact_guard_fires() {
        let _ = exact_influences(&MajorityGame::new(23));
    }

    #[test]
    #[should_panic(expected = "binary games")]
    fn non_binary_rejected() {
        let _ = exact_influences(&crate::games::ModKGame::new(4, 3));
    }
}
