//! Adversaries for one-round games: hide-set searchers.
//!
//! An adaptive fail-stop adversary sees the drawn inputs and picks a set
//! `s` of at most `t` coordinates to hide, aiming for `f(y_s̄) = v`. This
//! module provides three searchers:
//!
//! * [`ExhaustiveHider`] — exact: enumerates hide-sets in increasing size,
//!   so it either finds a forcing set, **proves** none exists, or gives up
//!   at its evaluation cap.
//! * [`GreedyHider`] — scalable: hides players in the order the game's
//!   [`hide_preference`](crate::CoinGame::hide_preference) suggests,
//!   checking the outcome after each hide. Sound (never claims a forcing
//!   set that doesn't work) but incomplete.
//! * [`CombinedHider`] — greedy first, falling back to exhaustive within a
//!   budget: the default for the control experiments.

use crate::game::{all_visible, CoinGame, Outcome, Value, Visible};

/// The verdict of a hide-set search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A hide-set of size ≤ t forcing the target; the set is returned.
    Forced(Vec<usize>),
    /// Proven: **no** hide-set of size ≤ t forces the target.
    Impossible,
    /// The search gave up without a proof either way.
    Unknown,
}

impl SearchOutcome {
    /// `true` if a forcing set was found.
    #[must_use]
    pub fn is_forced(&self) -> bool {
        matches!(self, SearchOutcome::Forced(_))
    }

    /// The forcing set, if one was found.
    #[must_use]
    pub fn forcing_set(&self) -> Option<&[usize]> {
        match self {
            SearchOutcome::Forced(s) => Some(s),
            _ => None,
        }
    }
}

/// A strategy for finding hide-sets that force an outcome.
pub trait HideSearch {
    /// Searches for `s`, `|s| ≤ t`, with `f(values_s̄) = target`.
    ///
    /// Implementations must verify a found set before returning it;
    /// [`SearchOutcome::Forced`] is a guarantee, not a guess.
    fn force<G: CoinGame + ?Sized>(
        &self,
        game: &G,
        values: &[Value],
        t: usize,
        target: Outcome,
    ) -> SearchOutcome;
}

/// Exact search over all hide-sets of size at most `t`, smallest first.
///
/// # Examples
///
/// ```
/// use synran_coin::{ExhaustiveHider, HideSearch, MajorityGame, Outcome, SearchOutcome};
///
/// let game = MajorityGame::new(5);
/// let searcher = ExhaustiveHider::default();
/// // 3-2 majority for 1; hiding one 1 forces 0...
/// assert!(searcher.force(&game, &[1, 1, 1, 0, 0], 1, Outcome(0)).is_forced());
/// // ...but no hide-set can force 1 from a 2-3 minority.
/// assert_eq!(
///     searcher.force(&game, &[1, 1, 0, 0, 0], 5, Outcome(1)),
///     SearchOutcome::Impossible
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveHider {
    max_evals: u64,
}

impl ExhaustiveHider {
    /// Creates a searcher that evaluates at most `max_evals` hide-sets
    /// before giving up with [`SearchOutcome::Unknown`].
    #[must_use]
    pub fn with_budget(max_evals: u64) -> ExhaustiveHider {
        ExhaustiveHider { max_evals }
    }
}

impl Default for ExhaustiveHider {
    /// A budget of 2²⁰ evaluations — instant for the small-n exact
    /// experiments, far beyond what interactive tests need.
    fn default() -> ExhaustiveHider {
        ExhaustiveHider::with_budget(1 << 20)
    }
}

impl HideSearch for ExhaustiveHider {
    fn force<G: CoinGame + ?Sized>(
        &self,
        game: &G,
        values: &[Value],
        t: usize,
        target: Outcome,
    ) -> SearchOutcome {
        let n = values.len();
        let t = t.min(n);
        let mut seq = all_visible(values);
        let mut evals: u64 = 0;

        // Depth-first over subsets in lexicographic order, bounded depth;
        // the empty set is checked first so "already forced" is free.
        #[allow(clippy::too_many_arguments)]
        fn dfs<G: CoinGame + ?Sized>(
            game: &G,
            seq: &mut Vec<Visible>,
            values: &[Value],
            start: usize,
            depth_left: usize,
            target: Outcome,
            evals: &mut u64,
            cap: u64,
        ) -> Option<Option<Vec<usize>>> {
            // Returns Some(Some(set)) on success, Some(None) if this branch
            // is exhausted, None if the eval budget ran out.
            *evals += 1;
            if *evals > cap {
                return None;
            }
            if game.outcome(seq) == target {
                let set = seq
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.is_hidden().then_some(i))
                    .collect();
                return Some(Some(set));
            }
            if depth_left == 0 {
                return Some(None);
            }
            for i in start..values.len() {
                seq[i] = Visible::Hidden;
                let r = dfs(game, seq, values, i + 1, depth_left - 1, target, evals, cap);
                seq[i] = Visible::Value(values[i]);
                match r {
                    Some(Some(set)) => return Some(Some(set)),
                    Some(None) => {}
                    None => return None,
                }
            }
            Some(None)
        }

        match dfs(
            game,
            &mut seq,
            values,
            0,
            t,
            target,
            &mut evals,
            self.max_evals,
        ) {
            Some(Some(set)) => {
                debug_assert_eq!(
                    game.outcome(&crate::game::with_hidden(values, &set)),
                    target
                );
                SearchOutcome::Forced(set)
            }
            Some(None) => SearchOutcome::Impossible,
            None => SearchOutcome::Unknown,
        }
    }
}

/// Greedy hill-climbing guided by the game's hide preferences.
///
/// Hides candidates in descending preference (ties broken by index),
/// skipping players the game marks as useless (negative preference), and
/// stops as soon as the target outcome appears. Linear in `n` evaluations.
///
/// # Examples
///
/// ```
/// use synran_coin::{GreedyHider, HideSearch, OneSidedGame, Outcome};
///
/// let game = OneSidedGame::new(6);
/// // Force 1 by hiding both zeros.
/// let result = GreedyHider.force(&game, &[1, 0, 1, 1, 0, 1], 2, Outcome(1));
/// assert_eq!(result.forcing_set(), Some(&[1, 4][..]));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyHider;

impl HideSearch for GreedyHider {
    fn force<G: CoinGame + ?Sized>(
        &self,
        game: &G,
        values: &[Value],
        t: usize,
        target: Outcome,
    ) -> SearchOutcome {
        let mut seq = all_visible(values);
        if game.outcome(&seq) == target {
            return SearchOutcome::Forced(Vec::new());
        }
        let mut candidates: Vec<(i32, usize)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (game.hide_preference(v, target), i))
            .filter(|&(pref, _)| pref >= 0)
            .collect();
        // Highest preference first; stable on index for determinism.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut hide = Vec::new();
        for (_, i) in candidates {
            if hide.len() >= t {
                break;
            }
            seq[i] = Visible::Hidden;
            hide.push(i);
            if game.outcome(&seq) == target {
                return SearchOutcome::Forced(hide);
            }
        }
        SearchOutcome::Unknown
    }
}

/// Greedy first, then exhaustive within an evaluation budget.
///
/// This is the searcher the control experiments (E1) use: cheap on the
/// cases preference-guided hiding solves, exact on the rest up to the
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CombinedHider {
    exhaustive: ExhaustiveHider,
}

impl CombinedHider {
    /// Creates a combined searcher whose exhaustive fallback evaluates at
    /// most `max_evals` hide-sets.
    #[must_use]
    pub fn with_budget(max_evals: u64) -> CombinedHider {
        CombinedHider {
            exhaustive: ExhaustiveHider::with_budget(max_evals),
        }
    }
}

impl HideSearch for CombinedHider {
    fn force<G: CoinGame + ?Sized>(
        &self,
        game: &G,
        values: &[Value],
        t: usize,
        target: Outcome,
    ) -> SearchOutcome {
        match GreedyHider.force(game, values, t, target) {
            SearchOutcome::Forced(set) => SearchOutcome::Forced(set),
            _ => self.exhaustive.force(game, values, t, target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::with_hidden;
    use crate::games::{
        DictatorGame, MajorityGame, ModKGame, OneSidedGame, ParityGame, TribesGame,
    };
    use synran_sim::SimRng;

    #[test]
    fn exhaustive_finds_minimum_size_sets() {
        let g = MajorityGame::new(7);
        // 5 ones: need to hide exactly 2 to force 0.
        let values = [1, 1, 1, 1, 1, 0, 0];
        match ExhaustiveHider::default().force(&g, &values, 7, Outcome(0)) {
            SearchOutcome::Forced(set) => assert_eq!(set.len(), 2),
            other => panic!("expected forced, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_proves_impossibility() {
        let g = MajorityGame::new(5);
        let r = ExhaustiveHider::default().force(&g, &[0, 0, 0, 1, 1], 5, Outcome(1));
        assert_eq!(r, SearchOutcome::Impossible);
    }

    #[test]
    fn exhaustive_respects_budget() {
        let g = MajorityGame::new(20);
        let values = [0u32; 20];
        // A 2-evaluation budget cannot even finish size-1 subsets.
        let r = ExhaustiveHider::with_budget(2).force(&g, &values, 20, Outcome(1));
        assert_eq!(r, SearchOutcome::Unknown);
    }

    #[test]
    fn empty_hide_set_when_already_forced() {
        let g = MajorityGame::new(3);
        let r = ExhaustiveHider::default().force(&g, &[1, 1, 1], 0, Outcome(1));
        assert_eq!(r, SearchOutcome::Forced(vec![]));
        let r = GreedyHider.force(&g, &[1, 1, 1], 0, Outcome(1));
        assert_eq!(r, SearchOutcome::Forced(vec![]));
    }

    #[test]
    fn greedy_forces_majority_to_zero() {
        let g = MajorityGame::new(9);
        let values = [1, 1, 1, 1, 1, 1, 0, 0, 0];
        match GreedyHider.force(&g, &values, 3, Outcome(0)) {
            SearchOutcome::Forced(set) => {
                assert!(set.len() <= 3);
                assert_eq!(g.outcome(&with_hidden(&values, &set)), Outcome(0));
            }
            other => panic!("expected forced, got {other:?}"),
        }
    }

    #[test]
    fn greedy_never_forces_majority_to_one() {
        let g = MajorityGame::new(5);
        let r = GreedyHider.force(&g, &[0, 0, 0, 1, 1], 5, Outcome(1));
        assert_eq!(r, SearchOutcome::Unknown);
    }

    #[test]
    fn greedy_flips_parity_with_one_hide() {
        let g = ParityGame::new(6);
        let values = [1, 0, 1, 1, 0, 0];
        let base = g.outcome(&crate::game::all_visible(&values));
        let target = Outcome(1 - base.0);
        match GreedyHider.force(&g, &values, 1, target) {
            SearchOutcome::Forced(set) => assert_eq!(set.len(), 1),
            other => panic!("expected forced, got {other:?}"),
        }
    }

    #[test]
    fn greedy_handles_dictator() {
        let g = DictatorGame::new(4);
        let r = GreedyHider.force(&g, &[1, 1, 0, 0], 1, Outcome(0));
        assert_eq!(r, SearchOutcome::Forced(vec![0]));
    }

    #[test]
    fn greedy_handles_tribes_with_slack_budget() {
        // Greedy hides 1s in index order, wasting budget inside one tribe:
        // with the optimal budget of 2 it fails (expected incompleteness)...
        let g = TribesGame::new(2, 3);
        let values = [1, 1, 1, 1, 1, 1];
        assert_eq!(
            GreedyHider.force(&g, &values, 2, Outcome(0)),
            SearchOutcome::Unknown
        );
        // ...with slack it succeeds,
        match GreedyHider.force(&g, &values, 4, Outcome(0)) {
            SearchOutcome::Forced(set) => {
                assert_eq!(g.outcome(&with_hidden(&values, &set)), Outcome(0));
            }
            other => panic!("expected forced, got {other:?}"),
        }
        // ...and the exhaustive fallback finds the optimal 2-hide set.
        match CombinedHider::default().force(&g, &values, 2, Outcome(0)) {
            SearchOutcome::Forced(set) => assert_eq!(set.len(), 2),
            other => panic!("expected forced, got {other:?}"),
        }
    }

    #[test]
    fn combined_falls_back_to_exhaustive() {
        // Mod-k steering needs the exact searcher when greedy's value
        // ordering misses the residue.
        let g = ModKGame::new(6, 4);
        let values = [3, 3, 2, 1, 0, 0]; // sum 9 ≡ 1 (mod 4)
        let searcher = CombinedHider::default();
        for target in 0..4 {
            let r = searcher.force(&g, &values, 3, Outcome(target));
            match r {
                SearchOutcome::Forced(set) => {
                    assert_eq!(g.outcome(&with_hidden(&values, &set)), Outcome(target));
                }
                other => panic!("target {target} should be forcible, got {other:?}"),
            }
        }
    }

    #[test]
    fn searchers_agree_on_random_small_instances() {
        // Greedy claiming Forced must always be confirmed by exhaustive.
        let mut rng = SimRng::new(77);
        let g = MajorityGame::new(9);
        for _ in 0..200 {
            let values: Vec<u32> = (0..9).map(|_| rng.bit().as_u8().into()).collect();
            for target in 0..2 {
                let greedy = GreedyHider.force(&g, &values, 2, Outcome(target));
                let exact = ExhaustiveHider::default().force(&g, &values, 2, Outcome(target));
                if greedy.is_forced() {
                    assert!(exact.is_forced(), "greedy found a set exhaustive missed?!");
                }
                if exact == SearchOutcome::Impossible {
                    assert!(!greedy.is_forced());
                }
            }
        }
    }

    #[test]
    fn one_sided_game_asymmetry_is_visible_to_searchers() {
        let g = OneSidedGame::new(8);
        let values = [1, 1, 1, 1, 1, 1, 1, 1];
        // Force 0 from all-ones: impossible, and exhaustive proves it.
        let r = ExhaustiveHider::default().force(&g, &values, 8, Outcome(0));
        assert_eq!(r, SearchOutcome::Impossible);
    }
}
