//! E3 — Theorem 1: the adversary forces `Ω(t / √(n·log n))` rounds.
//!
//! Thin wrapper over the `synran-lab` E3 campaign preset: the bespoke
//! sweep loop this binary used to carry lives in
//! `synran_lab::presets::e3`, shared byte-for-byte with
//! `synran campaign run campaigns/e3.campaign`. The wrapper only maps
//! CLI knobs onto [`E3Params`] and picks the thread count.
//!
//! Telemetry defaults to `spans` so the committed
//! `results/e3_lower_bound.telemetry.jsonl` carries the span tree
//! `synran report --format folded` aggregates; `--telemetry counters`
//! (or `off`) restores the lighter modes.

use synran_bench::Args;
use synran_lab::presets::e3::{self, E3Params};
use synran_lab::Engine;
use synran_sim::{Telemetry, TelemetryMode};

fn main() {
    let args = Args::from_env();
    let mode: TelemetryMode = args
        .get("telemetry")
        .unwrap_or("spans")
        .parse()
        .expect("--telemetry");
    let params = E3Params {
        sizes: if args.flag("fast") {
            vec![16, 24]
        } else {
            e3::DEFAULT_SIZES.to_vec()
        },
        runs: args.get_usize("runs", 8),
        samples: args.get_usize("samples", 3),
        seed: args.get_u64("seed", 3),
    };
    let mut engine = Engine::new(args.get_usize("threads", 0), Telemetry::new(mode));
    e3::run(&params, &mut engine, &mut std::io::stdout().lock()).expect("e3 failed");
}
