//! E3 — Theorem 1: the adversary forces `Ω(t / √(n·log n))` rounds.
//!
//! Claim: a full-information adaptive fail-stop adversary spending at most
//! `4√(n·log n) + 1` kills per round keeps the protocol in bivalent or
//! null-valent states, forcing ~`t / (4√(n·log n)+1)` rounds w.h.p.
//!
//! The harness runs the valency-guided lower-bound adversary with the
//! paper's per-round cap against SynRan (the strongest protocol in the
//! workspace — by Theorem 2 no protocol does asymptotically better), and
//! checks that forced rounds scale as `t/√(n·ln n)` with a stable
//! constant, far above passive play. A second section shows the flip side
//! (Lemma 4.6): a cap *below* the `√(n·log n)` threshold cannot stall at
//! all — the two bounds pinch at the same per-round spend.

use synran_adversary::{find_adversarial_input, LowerBoundAdversary};
use synran_analysis::{fmt_f64, lower_bound_rounds, ShapeFit, Summary, Table};
use synran_bench::{banner, results_telemetry_path, section, write_telemetry_jsonl, Args};
use synran_core::{check_consensus_with, per_round_kill_budget, SynRan};
use synran_sim::{Passive, SimConfig, SimRng, Telemetry, TelemetryMode};

#[derive(Debug, Clone, Copy)]
enum Attack {
    Passive,
    LowerBound { cap: usize, samples: usize },
}

fn mean_rounds(
    n: usize,
    t: usize,
    runs: usize,
    seed: u64,
    attack: Attack,
    telemetry: &Telemetry,
) -> (f64, f64, f64) {
    let protocol = SynRan::new();
    let inputs: Vec<synran_sim::Bit> = (0..n).map(|i| synran_sim::Bit::from(i < n / 2)).collect();
    let mut rounds = Vec::new();
    let mut kills = Vec::new();
    for r in 0..runs {
        let run_seed = SimRng::new(seed).derive(r as u64).next_u64();
        let cfg = SimConfig::new(n)
            .faults(t)
            .seed(run_seed)
            .max_rounds(100_000);
        let verdict = match attack {
            Attack::Passive => {
                check_consensus_with(&protocol, &inputs, cfg, &mut Passive, telemetry)
            }
            Attack::LowerBound { cap, samples } => {
                let horizon = 3 * (n as f64).sqrt() as u32 + 20;
                let mut adv = LowerBoundAdversary::with_params(cap, samples, horizon, run_seed);
                check_consensus_with(&protocol, &inputs, cfg, &mut adv, telemetry)
            }
        }
        .expect("engine error");
        assert!(
            verdict.is_correct(),
            "consensus violated at n={n} t={t}: {:?}",
            verdict.violations()
        );
        rounds.push(verdict.rounds());
        kills.push(verdict.report().metrics().total_kills() as u32);
    }
    let s = Summary::of_u32(&rounds);
    let k = Summary::of_u32(&kills);
    (s.mean(), s.ci95_halfwidth(), k.mean())
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 8);
    let samples = args.get_usize("samples", 3);
    let seed = args.get_u64("seed", 3);
    let sizes: Vec<usize> = if args.flag("fast") {
        vec![16, 24]
    } else {
        vec![16, 24, 32, 48, 64]
    };

    banner(
        "E3 the lower bound (Theorem 1)",
        "an adaptive full-information adversary forces Ω(t/√(n·log n)) rounds",
    );
    println!(
        "valency-guided adversary, paper cap = ⌈4√(n·ln n)⌉ + 1 per round, {runs} runs/point, {samples} forks/probe"
    );
    // One counters-mode hub across the whole experiment; exported to
    // results/e3_lower_bound.telemetry.jsonl at the end. Observe-only: the
    // tables are identical with or without it.
    let telemetry = Telemetry::new(TelemetryMode::Counters);

    section("forced rounds vs the t/√(n·ln n) curve");
    let mut table = Table::new([
        "n",
        "t",
        "cap/round",
        "passive",
        "forced",
        "±95%",
        "kills used",
        "t/√(n·ln n)",
        "forced ÷ curve",
    ]);
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &n in &sizes {
        let cap = per_round_kill_budget(n).ceil() as usize + 1;
        for t in [n / 2, n - 1] {
            let (passive_mean, _, _) =
                mean_rounds(n, t, runs, seed ^ 0xAAAA, Attack::Passive, &telemetry);
            let (forced_mean, ci, kills) = mean_rounds(
                n,
                t,
                runs,
                seed,
                Attack::LowerBound { cap, samples },
                &telemetry,
            );
            let curve = lower_bound_rounds(n, t);
            measured.push(forced_mean);
            predicted.push(curve);
            table.row([
                n.to_string(),
                t.to_string(),
                cap.to_string(),
                fmt_f64(passive_mean, 1),
                fmt_f64(forced_mean, 1),
                fmt_f64(ci, 1),
                fmt_f64(kills, 1),
                fmt_f64(curve, 2),
                fmt_f64(forced_mean / curve, 2),
            ]);
        }
    }
    print!("{table}");

    let fit = ShapeFit::fit(&measured, &predicted);
    println!(
        "\nshape fit: forced ≈ {} · t/√(n·ln n), max relative residual {}",
        fmt_f64(fit.scale(), 2),
        fmt_f64(fit.max_rel_residual(), 2)
    );
    println!("expected: 'forced ÷ curve' roughly flat in n, and forced ≫ passive.");

    section("Lemma 4.6's pinch: a sub-threshold cap cannot stall");
    let mut pinch = Table::new(["n", "t", "cap/round", "forced rounds", "kills used"]);
    for &n in &sizes[..sizes.len().min(2)] {
        let t = n - 1;
        let starved_cap = ((per_round_kill_budget(n) / 16.0).ceil() as usize).max(1);
        let (forced, _, kills) = mean_rounds(
            n,
            t,
            runs,
            seed ^ 0xBBBB,
            Attack::LowerBound {
                cap: starved_cap,
                samples,
            },
            &telemetry,
        );
        pinch.row([
            n.to_string(),
            t.to_string(),
            starved_cap.to_string(),
            fmt_f64(forced, 1),
            fmt_f64(kills, 1),
        ]);
    }
    print!("{pinch}");
    println!("\nexpected: with cap ≪ √(n·ln n), forced rounds collapse to near-passive —");
    println!("the same per-round spend threshold the upper bound's accounting charges.");

    section("Lemma 3.5: adversarially chosen initial state");
    let n = sizes[0];
    let cfg = SimConfig::new(n).max_rounds(50_000);
    let inputs = find_adversarial_input(&SynRan::new(), &cfg, 4, seed).expect("probe error");
    let ones = inputs.iter().filter(|b| b.is_one()).count();
    println!(
        "n = {n}: passive-play flip point at {ones} ones — the non-univalent initial state the chain argument finds"
    );

    // Telemetry artifact: the experiment-wide counters plus per-round
    // kill-budget accounting from one representative forced run.
    let rep_n = *sizes.last().expect("sizes nonempty");
    let rep_t = rep_n - 1;
    let rep_cap = per_round_kill_budget(rep_n).ceil() as usize + 1;
    let rep_seed = SimRng::new(seed).derive(0).next_u64();
    let rep_inputs: Vec<synran_sim::Bit> = (0..rep_n)
        .map(|i| synran_sim::Bit::from(i < rep_n / 2))
        .collect();
    let horizon = 3 * (rep_n as f64).sqrt() as u32 + 20;
    let mut rep_adv = LowerBoundAdversary::with_params(rep_cap, samples, horizon, rep_seed);
    let rep_verdict = check_consensus_with(
        &SynRan::new(),
        &rep_inputs,
        SimConfig::new(rep_n)
            .faults(rep_t)
            .seed(rep_seed)
            .max_rounds(100_000),
        &mut rep_adv,
        &telemetry,
    )
    .expect("engine error");
    let path = results_telemetry_path("e3_lower_bound");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e3_lower_bound".to_string()),
            ("adversary", "lower-bound".to_string()),
            ("n", rep_n.to_string()),
            ("t", rep_t.to_string()),
            ("cap_per_round", rep_cap.to_string()),
            ("seed", seed.to_string()),
            ("runs", runs.to_string()),
        ],
        &telemetry,
        rep_verdict.report().metrics().kills_per_round(),
        rep_n,
    )
    .expect("write telemetry jsonl");
    println!("\ntelemetry: {}", path.display());
}
