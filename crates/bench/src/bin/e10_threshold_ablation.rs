//! E10 — ablation of Lemma 4.2's margins: the threshold constants are
//! tight.
//!
//! SynRan's constants 7/10, 6/10, 5/10, 4/10 with stability margin 1/10
//! satisfy `decide − propose = stability` **exactly**, on both sides.
//! Lemma 4.2's Agreement proof consumes the whole margin: a stopping
//! process's evidence (`> 7/10·N` votes) minus the deaths the stability
//! rule tolerates (`≤ 1/10·N`) must still clear everyone else's propose
//! line (`> 6/10·N`).
//!
//! The harness runs the boundary attack — which constructs exactly the
//! execution the proof rules out — against threshold variants on both
//! sides of the margin, and reports agreement-violation rates. Expected:
//! zero violations whenever `respects_lemma_4_2`, consistent violations
//! as soon as the decide gap dips below the stability margin, with wider
//! margins costing latency.

use synran_adversary::{Balancer, BoundaryAttack};
use synran_analysis::{fmt_f64, Summary, Table};
use synran_bench::{banner, section, Args};
use synran_core::{check_consensus, run_batch, InputAssignment, SynRan, Thresholds};
use synran_sim::{Bit, SimConfig, SimRng};

fn violation_rate(
    thresholds: Thresholds,
    target: Bit,
    n: usize,
    runs: usize,
    base_seed: u64,
) -> (usize, f64) {
    let protocol = SynRan::with_thresholds(thresholds);
    let ones = BoundaryAttack::ideal_ones(n, thresholds, target);
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < ones)).collect();
    let mut violations = 0usize;
    let mut rounds = Vec::new();
    for r in 0..runs {
        let seed = SimRng::new(base_seed).derive(r as u64).next_u64();
        let verdict = check_consensus(
            &protocol,
            &inputs,
            SimConfig::new(n)
                .faults(n - 1)
                .seed(seed)
                .max_rounds(100_000),
            &mut BoundaryAttack::targeting(target),
        )
        .expect("engine error");
        if !verdict.is_correct() {
            violations += 1;
        }
        rounds.push(verdict.rounds());
    }
    (violations, Summary::of_u32(&rounds).mean())
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 40);
    let n = args.get_usize("n", 40);
    let seed = args.get_u64("seed", 10);

    banner(
        "E10 threshold-margin ablation (Lemma 4.2)",
        "decide − propose ≥ stability is exactly what Agreement needs — no slack",
    );
    println!("boundary attack, n = {n}, t = n − 1, {runs} runs per variant");

    section("agreement under the boundary attack, by margin");
    let variants: Vec<(&str, Thresholds)> = vec![
        ("paper (gap = margin)", Thresholds::paper()),
        ("wide gap (15/12)", Thresholds::new(15, 12, 10, 7, 2)),
        ("narrow gap (13/12)", Thresholds::new(13, 12, 10, 8, 2)),
        ("zero gap (12/12)", Thresholds::new(12, 12, 10, 8, 2)),
        ("narrow 0-side (10/9)", Thresholds::new(14, 12, 10, 9, 2)),
        (
            "big margin, ok (15/12, s=3)",
            Thresholds::new(15, 12, 9, 6, 3),
        ),
    ];
    let mut table = Table::new([
        "variant",
        "lemma 4.2 margin ok",
        "violations (1-side attack)",
        "violations (0-side attack)",
        "mean rounds",
    ]);
    for (name, th) in &variants {
        let (v1, mean_rounds) = violation_rate(*th, Bit::One, n, runs, seed);
        let (v0, _) = violation_rate(*th, Bit::Zero, n, runs, seed ^ 0xF0);
        table.row([
            (*name).to_string(),
            if th.respects_lemma_4_2() { "yes" } else { "NO" }.to_string(),
            format!("{v1}/{runs}"),
            format!("{v0}/{runs}"),
            fmt_f64(mean_rounds, 1),
        ]);
        if th.respects_lemma_4_2() {
            assert_eq!(
                (v1, v0),
                (0, 0),
                "{name}: a margin-respecting variant must never violate agreement"
            );
        }
    }
    print!("{table}");
    println!("\nexpected: every margin-respecting row shows 0 violations; every");
    println!("margin-violating row shows a substantial violation rate — the paper's");
    println!("constants sit exactly on the safe edge.");

    section("the latency cost of wider margins (balancer, even split)");
    let mut latency = Table::new(["variant", "mean rounds", "all correct"]);
    for (name, th) in variants.iter().filter(|(_, th)| th.respects_lemma_4_2()) {
        let outcome = run_batch(
            &SynRan::with_thresholds(*th),
            InputAssignment::even_split(n),
            &SimConfig::new(n).faults(n - 1).max_rounds(100_000),
            runs.min(25),
            seed ^ 0xE10,
            |_| Balancer::unbounded(),
        )
        .expect("engine error");
        latency.row([
            (*name).to_string(),
            fmt_f64(outcome.mean_rounds(), 1),
            if outcome.all_correct() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print!("{latency}");
    println!("\nreading: safety is free to widen, latency is not — the paper's choice");
    println!("is the fastest margin-respecting point.");
}
