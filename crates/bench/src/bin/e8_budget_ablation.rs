//! E8 — Lemma 4.6 / Theorem 2 accounting: stalling SynRan costs the
//! adversary ~`√(p·log p)/16` kills per 3-round block.
//!
//! The harness runs SynRan against the coin-band balancer with tracing on,
//! reconstructs the alive-population timeline from the kill log, groups
//! rounds into blocks of three (the unit of Lemma 4.6's argument), and
//! compares the adversary's spend per block with the `√(p·ln p)` law as
//! the population halves — plus an ablation of the balancer's per-round
//! cap, which should reduce both spend *and* stalling power together.

use synran_adversary::Balancer;
use synran_analysis::{fmt_f64, Accumulator, Table};
use synran_bench::{banner, results_telemetry_path, section, write_telemetry_jsonl, Args};
use synran_core::{check_consensus_with, ln_clamped, SynRan};
use synran_sim::{Bit, SimConfig, SimRng, Telemetry, TelemetryMode};

/// Per-block observations: population at block start, kills in the block.
fn blocks_of_one_run(
    n: usize,
    seed: u64,
    cap: Option<usize>,
    telemetry: &Telemetry,
) -> (Vec<(usize, usize)>, u32) {
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
    let mut adversary = match cap {
        Some(c) => Balancer::with_cap(c),
        None => Balancer::unbounded(),
    };
    let verdict = check_consensus_with(
        &SynRan::new(),
        &inputs,
        SimConfig::new(n)
            .faults(n - 1)
            .seed(seed)
            .max_rounds(200_000),
        &mut adversary,
        telemetry,
    )
    .expect("engine error");
    assert!(verdict.is_correct(), "{:?}", verdict.violations());
    let rounds = verdict.rounds();
    // kills per round, dense.
    let mut per_round = vec![0usize; rounds as usize + 1];
    for &(round, k) in verdict.report().metrics().kills_per_round() {
        per_round[round.index() as usize - 1] += k;
    }
    let mut blocks = Vec::new();
    let mut population = n;
    let mut i = 0usize;
    while i < per_round.len() {
        let kills: usize = per_round[i..(i + 3).min(per_round.len())].iter().sum();
        blocks.push((population, kills));
        population -= kills;
        i += 3;
    }
    (blocks, rounds)
}

fn law(p: usize) -> f64 {
    ((p as f64) * ln_clamped(p)).sqrt()
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 25);
    let n = args.get_usize("n", 128);
    let seed = args.get_u64("seed", 8);

    banner(
        "E8 stalling-cost accounting (Lemma 4.6 / Theorem 2)",
        "the adversary must spend ~√(p·log p)/16 kills per 3-round block to stall SynRan",
    );
    println!("n = {n}, t = n − 1, {runs} runs, even-split inputs, balancer adversary");
    // One counters-mode hub across the whole experiment; exported to
    // results/e8_budget_ablation.telemetry.jsonl at the end. Observe-only:
    // the tables are identical with or without it.
    let telemetry = Telemetry::new(TelemetryMode::Counters);

    section("spend per 3-round block vs √(p·ln p), by population band");
    // Aggregate block spends into population bands [n/2^k, n/2^{k+1}).
    let bands = 5usize;
    let mut band_spend: Vec<Accumulator> = vec![Accumulator::new(); bands];
    let mut total_rounds = Accumulator::new();
    let mut total_kills = Accumulator::new();
    for r in 0..runs {
        let run_seed = SimRng::new(seed).derive(r as u64).next_u64();
        let (blocks, rounds) = blocks_of_one_run(n, run_seed, None, &telemetry);
        total_rounds.push(f64::from(rounds));
        total_kills.push(blocks.iter().map(|&(_, k)| k as f64).sum());
        for (p, kills) in blocks {
            if p == 0 {
                continue;
            }
            // band 0: p in (n/2, n]; band 1: (n/4, n/2]; ...
            let mut band = 0usize;
            let mut bound = n / 2;
            while p <= bound && band + 1 < bands {
                band += 1;
                bound /= 2;
            }
            band_spend[band].push(kills as f64);
        }
    }
    let mut table = Table::new([
        "population band",
        "blocks observed",
        "mean kills/block",
        "√(p·ln p) at band top",
        "ratio",
    ]);
    let mut top = n;
    for acc in band_spend.iter().take(bands) {
        if acc.count() > 0 {
            let predicted = law(top);
            table.row([
                format!("({}, {}]", top / 2, top),
                acc.count().to_string(),
                fmt_f64(acc.mean(), 1),
                fmt_f64(predicted, 1),
                fmt_f64(acc.mean() / predicted, 2),
            ]);
        }
        top /= 2;
    }
    print!("{table}");
    println!(
        "\nmean run: {} rounds, {} kills — expected: the ratio column is a modest constant,",
        fmt_f64(total_rounds.mean(), 1),
        fmt_f64(total_kills.mean(), 0),
    );
    println!("stable across bands, i.e. spend/block tracks √(p·ln p) as p halves (Lemma 4.6).");

    section("ablation: capping the balancer's per-round spend");
    let mut ablation = Table::new(["per-round cap", "mean rounds", "mean kills"]);
    for cap in [
        None,
        Some(law(n).ceil() as usize),
        Some((law(n) / 4.0).ceil() as usize),
        Some(1),
    ] {
        let mut rounds_acc = Accumulator::new();
        let mut kills_acc = Accumulator::new();
        for r in 0..runs {
            let run_seed = SimRng::new(seed ^ 0xAB).derive(r as u64).next_u64();
            let (blocks, rounds) = blocks_of_one_run(n, run_seed, cap, &telemetry);
            rounds_acc.push(f64::from(rounds));
            kills_acc.push(blocks.iter().map(|&(_, k)| k as f64).sum());
        }
        ablation.row([
            cap.map_or("unbounded".to_string(), |c| c.to_string()),
            fmt_f64(rounds_acc.mean(), 1),
            fmt_f64(kills_acc.mean(), 0),
        ]);
    }
    print!("{ablation}");
    println!("\nexpected: caps below ~√(n·ln n) starve the split move and stalling collapses —");
    println!("the same threshold the paper's lower-bound adversary needs per round.");

    // Telemetry artifact: the experiment-wide counters plus per-round
    // kill-budget accounting from one representative unbounded run.
    let rep_seed = SimRng::new(seed).derive(0).next_u64();
    let rep_inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
    let rep_verdict = check_consensus_with(
        &SynRan::new(),
        &rep_inputs,
        SimConfig::new(n)
            .faults(n - 1)
            .seed(rep_seed)
            .max_rounds(200_000),
        &mut Balancer::unbounded(),
        &telemetry,
    )
    .expect("engine error");
    let path = results_telemetry_path("e8_budget_ablation");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e8_budget_ablation".to_string()),
            ("adversary", "balancer".to_string()),
            ("n", n.to_string()),
            ("t", (n - 1).to_string()),
            ("seed", seed.to_string()),
            ("runs", runs.to_string()),
        ],
        &telemetry,
        rep_verdict.report().metrics().kills_per_round(),
        n,
    )
    .expect("write telemetry jsonl");
    println!("\ntelemetry: {}", path.display());
}
