//! E4 — Theorems 2 & 3: SynRan's expected round count is
//! `O(t/√(n·log(2+t/√n)))` under **any** fail-stop adversary.
//!
//! Thin wrapper over the `synran-lab` E4 campaign preset (see
//! `campaigns/e4.campaign` for the declarative form).
//!
//! Telemetry defaults to `counters` so the committed
//! `results/e4_synran_upper.telemetry.jsonl` carries the representative
//! run's counters; `--telemetry spans` (or `off`) picks the other modes.

use synran_bench::Args;
use synran_lab::presets::e4::{self, E4Params};
use synran_lab::Engine;
use synran_sim::{Telemetry, TelemetryMode};

fn main() {
    let args = Args::from_env();
    let mode: TelemetryMode = args
        .get("telemetry")
        .unwrap_or("counters")
        .parse()
        .expect("--telemetry");
    let params = E4Params {
        sizes: if args.flag("fast") {
            vec![32, 64]
        } else {
            e4::DEFAULT_SIZES.to_vec()
        },
        runs: args.get_usize("runs", 30),
        seed: args.get_u64("seed", 4),
    };
    let mut engine = Engine::new(args.get_usize("threads", 0), Telemetry::new(mode));
    e4::run(&params, &mut engine, &mut std::io::stdout().lock()).expect("e4 failed");
}
