//! E4 — Theorems 2 & 3: SynRan's expected round count is
//! `O(t/√(n·log(2+t/√n)))` under **any** fail-stop adversary.
//!
//! The harness runs SynRan under the whole adversary suite (passive,
//! random, storm, preference-targeting, the coin-band balancer) across a
//! range of `n` with `t = n − 1`, and checks that even the worst
//! adversary's mean rounds track the tight curve with a roughly flat
//! ratio.

use synran_adversary::{Balancer, PreferenceKiller, RandomKiller, Storm};
use synran_analysis::{fmt_f64, tight_bound_rounds, ShapeFit, Table};
use synran_bench::{banner, section, Args};
use synran_core::{run_batch, InputAssignment, SynRan, SynRanProcess};
use synran_sim::{Adversary, Bit, Passive, SimConfig};

type Factory = Box<dyn Fn(u64) -> Box<dyn Adversary<SynRanProcess> + Send> + Sync>;

fn adversaries(n: usize) -> Vec<(&'static str, Factory)> {
    let rate = (n as f64).sqrt().ceil() as usize;
    vec![
        ("passive", Box::new(|_| Box::new(Passive))),
        (
            "random(√n)",
            Box::new(move |s| Box::new(RandomKiller::new(rate, s))),
        ),
        ("storm", Box::new(|s| Box::new(Storm::new(s)))),
        (
            "kill-ones(√n)",
            Box::new(move |_| Box::new(PreferenceKiller::new(Bit::One, rate))),
        ),
        ("balancer", Box::new(|_| Box::new(Balancer::unbounded()))),
    ]
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 30);
    let seed = args.get_u64("seed", 4);
    let sizes: Vec<usize> = if args.flag("fast") {
        vec![32, 64]
    } else {
        vec![32, 64, 128, 256, 512]
    };

    banner(
        "E4 SynRan upper bound (Theorems 2 & 3)",
        "expected rounds = O(t/√(n·log(2+t/√n))) under ANY fail-stop adversary",
    );
    println!("t = n − 1 (maximum resilience), even-split inputs, {runs} runs/cell");

    section("mean rounds by adversary");
    let mut table = Table::new([
        "n",
        "adversary",
        "mean rounds",
        "max",
        "kills used (mean)",
        "bound curve",
        "ratio",
    ]);
    let mut worst_measured = Vec::new();
    let mut worst_predicted = Vec::new();
    for &n in &sizes {
        let t = n - 1;
        let curve = tight_bound_rounds(n, t);
        let mut worst = 0.0f64;
        for (name, factory) in adversaries(n) {
            let outcome = run_batch(
                &SynRan::new(),
                InputAssignment::even_split(n),
                &SimConfig::new(n).faults(t).max_rounds(200_000),
                runs,
                seed ^ n as u64,
                factory,
            )
            .expect("engine error");
            assert!(
                outcome.all_correct(),
                "violations at n={n} under {name}: {:?}",
                outcome.incorrect()
            );
            let mean = outcome.mean_rounds();
            let kills_mean = outcome.kills().iter().map(|&k| k as f64).sum::<f64>()
                / outcome.kills().len() as f64;
            worst = worst.max(mean);
            table.row([
                n.to_string(),
                name.to_string(),
                fmt_f64(mean, 1),
                outcome.max_rounds().map_or("-".into(), |m| m.to_string()),
                fmt_f64(kills_mean, 1),
                fmt_f64(curve, 2),
                fmt_f64(mean / curve, 2),
            ]);
        }
        worst_measured.push(worst);
        worst_predicted.push(curve);
    }
    print!("{table}");

    let fit = ShapeFit::fit(&worst_measured, &worst_predicted);
    println!(
        "\nworst-adversary shape fit: rounds ≈ {} · t/√(n·log(2+t/√n)), max rel residual {}",
        fmt_f64(fit.scale(), 2),
        fmt_f64(fit.max_rel_residual(), 2)
    );
    println!("expected: ratio column roughly flat in n for the worst adversary — the upper bound's shape.");
}
