//! Records the serial-vs-parallel baseline in `BENCH_parallel.json`.
//!
//! For each system size the binary times `estimate_valency` and
//! `run_batch` at `threads = 1` and `threads = max(2, cores)`, asserts
//! that threads ∈ {1, 2, 8} all produce byte-identical results, and
//! writes the wall times plus the measured speedup to a hand-rolled JSON
//! file at the repo root (or `--out <path>`). The versioned `"pool"` key
//! records the persistent worker pool's spawn/re-use counters — in steady
//! state the pool re-uses far more than it spawns.
//!
//! The acceptance criterion — at least 2x speedup at n = 256 — applies on
//! machines with at least 4 cores; the JSON records the core count the
//! numbers were taken on so single-core CI runs are interpretable.
//!
//! ```text
//! cargo run --release -p synran-bench --bin bench_parallel
//! ```
//!
//! `--smoke` shrinks every knob for CI: same rows, same identity
//! assertions (that is the point), a fraction of the wall time.

use std::time::Instant;

use synran_adversary::{estimate_valency, Balancer, ProbeSet};
use synran_bench::{results_telemetry_path, write_telemetry_jsonl, Args};
use synran_core::{run_batch, run_batch_with, ConsensusProtocol, InputAssignment, SynRan};
use synran_sim::{parallel, Bit, SimConfig, Telemetry, TelemetryMode, World};

/// Thread counts every row's results are verified byte-identical at
/// (serial golden first; the machine clamp may collapse 8 to fewer
/// workers, which the determinism contract makes unobservable).
const VERIFY_THREADS: [usize; 3] = [1, 2, 8];

/// One serial-vs-parallel comparison row.
struct Row {
    group: &'static str,
    n: usize,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds (after one warm-up call).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn valency_row(n: usize, threads: usize, samples: usize, horizon: u32, reps: usize) -> Row {
    let build = |threads: usize| {
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n / 2)
                .seed(4)
                .max_rounds(10_000)
                .threads(threads),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        world.phase_a().expect("phase A");
        world
    };
    let serial = build(1);
    let par = build(threads);
    let probes = ProbeSet::synran(n / 2);
    let golden = format!(
        "{:?}",
        estimate_valency(&serial, &probes, samples, horizon, 5).expect("estimate")
    );
    let identical = VERIFY_THREADS.iter().all(|&t| {
        let est = estimate_valency(&build(t), &probes, samples, horizon, 5).expect("estimate");
        format!("{est:?}") == golden
    });
    assert!(identical, "parallel valency estimate diverged at n={n}");
    Row {
        group: "valency_estimate",
        n,
        serial_ms: time_ms(reps, || {
            estimate_valency(&serial, &probes, samples, horizon, 5).expect("estimate")
        }),
        parallel_ms: time_ms(reps, || {
            estimate_valency(&par, &probes, samples, horizon, 5).expect("estimate")
        }),
        identical,
    }
}

fn batch_row(n: usize, threads: usize, runs: usize, reps: usize) -> Row {
    let protocol = SynRan::new();
    let cfg = |threads: usize| {
        SimConfig::new(n)
            .faults(n - 1)
            .max_rounds(100_000)
            .threads(threads)
    };
    let go = |threads: usize| {
        run_batch(
            &protocol,
            InputAssignment::Split { ones: n / 2 },
            &cfg(threads),
            runs,
            9,
            |_| Balancer::unbounded(),
        )
        .expect("batch")
    };
    let golden = format!("{:?}", go(1));
    let identical = VERIFY_THREADS
        .iter()
        .all(|&t| format!("{:?}", go(t)) == golden);
    assert!(identical, "parallel batch outcome diverged at n={n}");
    Row {
        group: "seed_batch",
        n,
        serial_ms: time_ms(reps, || go(1)),
        parallel_ms: time_ms(reps, || go(threads)),
        identical,
    }
}

/// Measures a fan-out of exactly [`parallel::MIN_CHUNK`] small worlds —
/// below the spawn threshold, so `par_map` runs inline at any thread
/// count and a tiny batch no longer pays thread spawn overhead
/// (`speedup` ≈ 1.0 instead of the pre-threshold small-n penalty).
fn tiny_batch_row(n: usize, threads: usize, reps: usize) -> Row {
    let total = parallel::MIN_CHUNK;
    let work = |i: usize| {
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n / 2)
                .seed(100 + i as u64)
                .max_rounds(10_000),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        let report = world.run(&mut synran_sim::Passive).expect("run");
        format!("{report:?}")
    };
    let go = |threads: usize| parallel::par_map(threads, total, work);
    let golden = go(1);
    let identical = VERIFY_THREADS.iter().all(|&t| go(t) == golden);
    assert!(identical, "tiny batch diverged at n={n}");
    Row {
        group: "tiny_batch",
        n,
        serial_ms: time_ms(reps, || go(1)),
        parallel_ms: time_ms(reps, || go(threads)),
        identical,
    }
}

/// One spans-mode pass — a valency estimate plus a seed batch at the given
/// thread count — returning the hub with the phase breakdown. Run outside
/// the timed loops: telemetry is observe-only, but the breakdown should
/// describe an instrumented run, not perturb the timed ones.
fn instrumented_pass(
    n: usize,
    threads: usize,
    samples: usize,
    horizon: u32,
    runs: usize,
) -> Telemetry {
    let telemetry = Telemetry::new(TelemetryMode::Spans);
    let protocol = SynRan::new();
    let mut world = World::new(
        SimConfig::new(n)
            .faults(n / 2)
            .seed(4)
            .max_rounds(10_000)
            .threads(threads),
        |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .expect("valid config");
    world.set_telemetry(telemetry.clone());
    world.phase_a().expect("phase A");
    let probes = ProbeSet::synran(n / 2);
    estimate_valency(&world, &probes, samples, horizon, 5).expect("estimate");
    run_batch_with(
        &protocol,
        InputAssignment::Split { ones: n / 2 },
        &SimConfig::new(n)
            .faults(n - 1)
            .max_rounds(100_000)
            .threads(threads),
        runs,
        9,
        &telemetry,
        |_| Balancer::unbounded(),
    )
    .expect("batch");
    telemetry
}

/// Span totals of a hub as a JSON array (name order).
fn span_totals_json(telemetry: &Telemetry) -> String {
    let items: Vec<String> = telemetry
        .snapshot()
        .span_totals()
        .iter()
        .map(|(name, count, total_ns)| {
            format!("{{\"name\": \"{name}\", \"count\": {count}, \"total_ns\": {total_ns}}}")
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// Counters of a hub as a JSON object (name order).
fn counters_json(telemetry: &Telemetry) -> String {
    let items: Vec<String> = telemetry
        .snapshot()
        .counters
        .iter()
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    format!("{{{}}}", items.join(", "))
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let reps = args.get_usize("reps", if smoke { 1 } else { 3 });
    let samples = args.get_usize("samples", if smoke { 2 } else { 4 });
    let horizon =
        u32::try_from(args.get_usize("horizon", if smoke { 20 } else { 40 })).expect("horizon");
    let runs = args.get_usize("runs", if smoke { 6 } else { 16 });
    let sizes: [usize; 2] = if smoke { [16, 48] } else { [64, 256] };
    let cores = parallel::resolve_threads(parallel::AUTO_THREADS);
    // `Args::threads` applies the oversubscription clamp; the bench floors
    // at 2 so the parallel column exercises the pool even on one core.
    let threads = args.threads().max(2);
    let out = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map_or_else(|| "BENCH_parallel.json".to_string(), |w| w[1].clone());

    println!("bench_parallel: cores={cores} threads={threads} reps={reps} smoke={smoke}");
    let mut rows = Vec::new();
    let mut pool_after_second_batch = None;
    for n in sizes {
        let v = valency_row(n, threads, samples, horizon, reps);
        println!(
            "valency_estimate n={n}: serial {:.2} ms, {threads}-thread {:.2} ms ({:.2}x)",
            v.serial_ms,
            v.parallel_ms,
            v.speedup()
        );
        rows.push(v);
        let s = batch_row(n, threads, runs, reps);
        println!(
            "seed_batch       n={n}: serial {:.2} ms, {threads}-thread {:.2} ms ({:.2}x)",
            s.serial_ms,
            s.parallel_ms,
            s.speedup()
        );
        rows.push(s);
        // The acceptance criterion reads the pool counters "after the
        // second batch": snapshot them once the first size's two batch
        // groups have dispatched.
        pool_after_second_batch.get_or_insert_with(|| parallel::global_pool().stats());
    }
    let tiny = tiny_batch_row(sizes[0], threads, reps);
    println!(
        "tiny_batch       n={}: serial {:.2} ms, {threads}-thread {:.2} ms ({:.2}x, inline below MIN_CHUNK)",
        sizes[0],
        tiny.serial_ms,
        tiny.parallel_ms,
        tiny.speedup()
    );
    rows.push(tiny);

    // Pool scheduling counters: spawn once, re-use forever afterwards.
    let mid = pool_after_second_batch.expect("two batches ran");
    let fin = parallel::global_pool().stats();
    assert!(
        mid.reused > mid.spawned,
        "pool must re-use more helpers than it spawned after the second batch \
         (spawned={}, reused={})",
        mid.spawned,
        mid.reused
    );
    println!(
        "pool: spawned={} reused={} tasks={} inline={} (after 2nd batch: spawned={} reused={})",
        fin.spawned, fin.reused, fin.tasks, fin.inline, mid.spawned, mid.reused
    );
    let pool_block = format!(
        "  \"pool\": {{\n    \"version\": 1,\n    \
         \"after_second_batch\": {{\"spawned\": {}, \"reused\": {}}},\n    \
         \"final\": {{\"spawned\": {}, \"reused\": {}, \"tasks\": {}, \"inline\": {}}},\n    \
         \"reused_gt_spawned\": {}\n  }},\n",
        mid.spawned,
        mid.reused,
        fin.spawned,
        fin.reused,
        fin.tasks,
        fin.inline,
        mid.reused > mid.spawned
    );

    // Spans-mode instrumentation pass (not timed): the serial-vs-parallel
    // phase breakdown recorded under the versioned "telemetry" key.
    let telemetry_n = sizes[0];
    let serial_hub = instrumented_pass(telemetry_n, 1, samples, horizon, runs);
    let parallel_hub = instrumented_pass(telemetry_n, threads, samples, horizon, runs);
    let telemetry_block = format!(
        "  \"telemetry\": {{\n    \"version\": 1,\n    \"mode\": \"spans\",\n    \
         \"n\": {telemetry_n},\n    \"serial_spans\": {},\n    \"parallel_spans\": {}\n  }},\n",
        span_totals_json(&serial_hub),
        span_totals_json(&parallel_hub)
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_parallel\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"threads_parallel\": {threads},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(
        "  \"note\": \"speedup target (>=2x at n=256) applies on machines with >=4 cores; \
         results at threads 1/2/8 are byte-identical by construction\",\n",
    );
    json.push_str(&pool_block);
    json.push_str(&telemetry_block);
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"n\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            r.group,
            r.n,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write baseline");
    println!("wrote {out}");

    // The same instrumented run, recorded as its own artifact.
    let mut summary = String::new();
    summary.push_str("{\n");
    summary.push_str("  \"bench\": \"bench_parallel\",\n");
    summary.push_str("  \"version\": 1,\n");
    summary.push_str(&format!("  \"cores\": {cores},\n"));
    summary.push_str(&format!("  \"threads_parallel\": {threads},\n"));
    summary.push_str(&format!("  \"n\": {telemetry_n},\n"));
    summary.push_str(&format!(
        "  \"serial\": {{\"counters\": {}, \"spans\": {}}},\n",
        counters_json(&serial_hub),
        span_totals_json(&serial_hub)
    ));
    summary.push_str(&format!(
        "  \"parallel\": {{\"counters\": {}, \"spans\": {}}}\n",
        counters_json(&parallel_hub),
        span_totals_json(&parallel_hub)
    ));
    summary.push_str("}\n");
    std::fs::write("BENCH_telemetry.json", summary).expect("write telemetry summary");
    println!("wrote BENCH_telemetry.json");

    // Per-round kill-budget accounting from one representative balancer
    // run, emitted next to the experiment results.
    let protocol = SynRan::new();
    let kill_hub = Telemetry::new(TelemetryMode::Counters);
    let mut world = World::new(
        SimConfig::new(telemetry_n)
            .faults(telemetry_n - 1)
            .seed(9)
            .max_rounds(100_000),
        |pid| protocol.spawn(pid, telemetry_n, Bit::from(pid.index() < telemetry_n / 2)),
    )
    .expect("valid config");
    world.set_telemetry(kill_hub.clone());
    let report = world.run(&mut Balancer::unbounded()).expect("run");
    let jsonl_path = results_telemetry_path("bench_parallel");
    write_telemetry_jsonl(
        &jsonl_path,
        &[
            ("experiment", "bench_parallel".to_string()),
            ("adversary", "balancer".to_string()),
            ("n", telemetry_n.to_string()),
            ("t", (telemetry_n - 1).to_string()),
            ("seed", "9".to_string()),
        ],
        &kill_hub,
        report.metrics().kills_per_round(),
        telemetry_n,
    )
    .expect("write telemetry jsonl");
    println!("wrote {}", jsonl_path.display());
}
