//! Records the serial-vs-parallel baseline in `BENCH_parallel.json`.
//!
//! For each system size the binary times `estimate_valency` and
//! `run_batch` at `threads = 1` and `threads = max(2, cores)`, asserts the
//! two configurations produce byte-identical results, and writes the wall
//! times plus the measured speedup to a hand-rolled JSON file at the repo
//! root (or `--out <path>`).
//!
//! The acceptance criterion — at least 2x speedup at n = 256 — applies on
//! machines with at least 4 cores; the JSON records the core count the
//! numbers were taken on so single-core CI runs are interpretable.
//!
//! ```text
//! cargo run --release -p synran-bench --bin bench_parallel
//! ```

use std::time::Instant;

use synran_adversary::{estimate_valency, Balancer, ProbeSet};
use synran_bench::Args;
use synran_core::{run_batch, ConsensusProtocol, InputAssignment, SynRan};
use synran_sim::{parallel, Bit, SimConfig, World};

/// One serial-vs-parallel comparison row.
struct Row {
    group: &'static str,
    n: usize,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds (after one warm-up call).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn valency_row(n: usize, threads: usize, samples: usize, horizon: u32, reps: usize) -> Row {
    let build = |threads: usize| {
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n / 2)
                .seed(4)
                .max_rounds(10_000)
                .threads(threads),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        world.phase_a().expect("phase A");
        world
    };
    let serial = build(1);
    let par = build(threads);
    let probes = ProbeSet::synran(n / 2);
    let a = estimate_valency(&serial, &probes, samples, horizon, 5).expect("estimate");
    let b = estimate_valency(&par, &probes, samples, horizon, 5).expect("estimate");
    let identical = format!("{a:?}") == format!("{b:?}");
    assert!(identical, "parallel valency estimate diverged at n={n}");
    Row {
        group: "valency_estimate",
        n,
        serial_ms: time_ms(reps, || {
            estimate_valency(&serial, &probes, samples, horizon, 5).expect("estimate")
        }),
        parallel_ms: time_ms(reps, || {
            estimate_valency(&par, &probes, samples, horizon, 5).expect("estimate")
        }),
        identical,
    }
}

fn batch_row(n: usize, threads: usize, runs: usize, reps: usize) -> Row {
    let protocol = SynRan::new();
    let cfg = |threads: usize| {
        SimConfig::new(n)
            .faults(n - 1)
            .max_rounds(100_000)
            .threads(threads)
    };
    let go = |threads: usize| {
        run_batch(
            &protocol,
            InputAssignment::Split { ones: n / 2 },
            &cfg(threads),
            runs,
            9,
            |_| Balancer::unbounded(),
        )
        .expect("batch")
    };
    let a = go(1);
    let b = go(threads);
    let identical = format!("{a:?}") == format!("{b:?}");
    assert!(identical, "parallel batch outcome diverged at n={n}");
    Row {
        group: "seed_batch",
        n,
        serial_ms: time_ms(reps, || go(1)),
        parallel_ms: time_ms(reps, || go(threads)),
        identical,
    }
}

fn main() {
    let args = Args::from_env();
    let reps = args.get_usize("reps", 3);
    let samples = args.get_usize("samples", 4);
    let horizon = u32::try_from(args.get_usize("horizon", 40)).expect("horizon fits u32");
    let runs = args.get_usize("runs", 16);
    let cores = parallel::resolve_threads(parallel::AUTO_THREADS);
    let threads = {
        let requested = args.get_usize("threads", 0);
        if requested == 0 {
            cores.max(2)
        } else {
            requested
        }
    };
    let out = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map_or_else(|| "BENCH_parallel.json".to_string(), |w| w[1].clone());

    println!("bench_parallel: cores={cores} threads={threads} reps={reps}");
    let mut rows = Vec::new();
    for n in [64usize, 256] {
        let v = valency_row(n, threads, samples, horizon, reps);
        println!(
            "valency_estimate n={n}: serial {:.2} ms, {threads}-thread {:.2} ms ({:.2}x)",
            v.serial_ms,
            v.parallel_ms,
            v.speedup()
        );
        rows.push(v);
        let s = batch_row(n, threads, runs, reps);
        println!(
            "seed_batch       n={n}: serial {:.2} ms, {threads}-thread {:.2} ms ({:.2}x)",
            s.serial_ms,
            s.parallel_ms,
            s.speedup()
        );
        rows.push(s);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_parallel\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"threads_parallel\": {threads},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(
        "  \"note\": \"speedup target (>=2x at n=256) applies on machines with >=4 cores; \
         results at every thread count are byte-identical by construction\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"n\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            r.group,
            r.n,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write baseline");
    println!("wrote {out}");
}
