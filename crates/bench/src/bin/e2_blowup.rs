//! E2 — Lemma 2.1's engine: Schechtman's blow-up inequality, verified
//! exactly on small hypercubes.
//!
//! Claim: for `A ⊆ {0,1}^n` with `Pr(A) = α` and `l ≥ l₀ = 2√(n·ln(1/α))`,
//! `Pr(B(A, l)) ≥ 1 − e^{−(l−l₀)²/4n}`. The harness computes `B(A, l)`
//! exactly (Hamming-ball DP over the whole cube) for random sets and
//! reports exact vs bound, plus the Lemma 2.1 instantiation
//! (`α = 1/n`, `l = h = 4√(n·ln n)` ⇒ bound `1 − 1/n`).

use synran_analysis::{fmt_f64, Table};
use synran_bench::{banner, section, Args};
use synran_coin::{bias_radius, schechtman_bound, schechtman_l0, HypercubeSet};
use synran_sim::SimRng;

fn main() {
    let args = Args::from_env();
    let seed = args.get_u64("seed", 2);
    let max_dim = args.get_usize("max-dim", 16).min(20) as u32;

    banner(
        "E2 isoperimetric blow-up (Schechtman / Lemma 2.1)",
        "Pr(B(A,l)) ≥ 1 − e^{−(l−l₀)²/4n} for l ≥ l₀ = 2√(n·ln(1/α))",
    );

    section("exact blow-up vs closed-form bound (random sets)");
    let mut table = Table::new(["n", "α", "l₀", "l", "exact Pr(B(A,l))", "bound", "holds"]);
    let mut violations = 0usize;
    let mut rows = 0usize;
    for n in (8..=max_dim).step_by(4) {
        for density in [0.02f64, 0.1, 0.4] {
            let mut rng = SimRng::new(seed)
                .derive(u64::from(n))
                .derive((density * 100.0) as u64);
            let a = HypercubeSet::random(n, density, &mut rng);
            if a.is_empty() {
                continue;
            }
            let alpha = a.measure();
            let l0 = schechtman_l0(n as usize, alpha);
            for l in [0u32, n / 4, n / 2, 3 * n / 4, n] {
                let exact = a.blow_up(l).measure();
                let bound = schechtman_bound(n as usize, alpha, l);
                let holds = exact + 1e-12 >= bound;
                if !holds {
                    violations += 1;
                }
                rows += 1;
                table.row([
                    n.to_string(),
                    fmt_f64(alpha, 4),
                    fmt_f64(l0, 2),
                    l.to_string(),
                    fmt_f64(exact, 6),
                    fmt_f64(bound, 6),
                    if holds { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }
    print!("{table}");
    println!("\n{rows} rows checked, {violations} violations (expected: 0)");

    section("worst-case sets: Hamming balls (extremal for blow-up)");
    let mut ball_table = Table::new(["n", "ball radius", "α", "l", "exact", "bound"]);
    for n in [10u32, 14] {
        for r in [0u32, 1] {
            let a = HypercubeSet::ball(n, 0, r);
            let alpha = a.measure();
            for l in [n / 2, n] {
                ball_table.row([
                    n.to_string(),
                    r.to_string(),
                    fmt_f64(alpha, 4),
                    l.to_string(),
                    fmt_f64(a.blow_up(l).measure(), 6),
                    fmt_f64(schechtman_bound(n as usize, alpha, l), 6),
                ]);
            }
        }
    }
    print!("{ball_table}");

    section("the Lemma 2.1 instantiation: α = 1/n, l = h = 4√(n·ln n)");
    let mut lemma_table = Table::new(["n", "h = 4√(n·ln n)", "l₀ at α = 1/n", "bound (= 1 − 1/n)"]);
    for n in [64usize, 256, 1024, 4096, 65536] {
        let h = bias_radius(n);
        let l0 = schechtman_l0(n, 1.0 / n as f64);
        let bound = schechtman_bound(n, 1.0 / n as f64, h.ceil() as u32);
        lemma_table.row([
            n.to_string(),
            fmt_f64(h, 1),
            fmt_f64(l0, 1),
            fmt_f64(bound, 6),
        ]);
    }
    print!("{lemma_table}");
    println!("\nreading: h = 2·l₀ exactly, so the bound is 1 − e^{{−ln n}} = 1 − 1/n —");
    println!("the step that lets k blow-ups intersect and produce the contradiction in Lemma 2.1.");
}
