//! E6 — Lemma 4.4 / Corollary 4.5: the explicit binomial large-deviation
//! lower bound.
//!
//! Claim: for `x ~ Binomial(n, ½)` and `t < √n/8`,
//! `Pr(x − E(x) ≥ t√n) ≥ e^{−4(t+1)²}/√(2π)`, and with `t = √(log n)/8`
//! the deviation `√(n·log n)/8` has probability ≥ `√(log n/n)`.
//!
//! Thin wrapper over the `synran-lab` E6 campaign preset (see
//! `campaigns/e6.campaign` for the declarative form), which compares the
//! bound against the **exact** tail (log-space summation) and a
//! Monte-Carlo coin experiment on the simulator's RNG.
//!
//! Telemetry defaults to `counters` so the committed
//! `results/e6_large_deviation.telemetry.jsonl` carries the analysis
//! counters; `--telemetry spans` (or `off`) picks the other modes.

use synran_bench::Args;
use synran_lab::presets::e6::{self, E6Params};
use synran_lab::Engine;
use synran_sim::{Telemetry, TelemetryMode};

fn main() {
    let args = Args::from_env();
    let mode: TelemetryMode = args
        .get("telemetry")
        .unwrap_or("counters")
        .parse()
        .expect("--telemetry");
    let params = E6Params {
        trials: args.get_usize("trials", 20_000),
        seed: args.get_u64("seed", 6),
    };
    let mut engine = Engine::new(args.get_usize("threads", 0), Telemetry::new(mode));
    e6::run(&params, &mut engine, &mut std::io::stdout().lock()).expect("e6 failed");
}
