//! E6 — Lemma 4.4 / Corollary 4.5: the explicit binomial large-deviation
//! lower bound.
//!
//! Claim: for `x ~ Binomial(n, ½)` and `t < √n/8`,
//! `Pr(x − E(x) ≥ t√n) ≥ e^{−4(t+1)²}/√(2π)`, and with `t = √(log n)/8`
//! the deviation `√(n·log n)/8` has probability ≥ `√(log n/n)`.
//!
//! The harness compares the bound against the **exact** tail (log-space
//! summation) and against a Monte-Carlo coin experiment on the simulator's
//! RNG, across four decades of `n`.

use synran_analysis::{corollary_4_5, fmt_f64, lemma_4_4_bound, Binomial, Table};
use synran_bench::{banner, section, Args};
use synran_sim::SimRng;

fn monte_carlo_tail(n: usize, deviation: f64, trials: usize, rng: &mut SimRng) -> f64 {
    let threshold = n as f64 / 2.0 + deviation;
    let mut hits = 0usize;
    for _ in 0..trials {
        let mut ones = 0usize;
        // Sum 64 coins at a time from each random word.
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(64);
            let word = rng.next_u64();
            let masked = if take == 64 {
                word
            } else {
                word & ((1u64 << take) - 1)
            };
            ones += masked.count_ones() as usize;
            remaining -= take;
        }
        if ones as f64 >= threshold {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn main() {
    let args = Args::from_env();
    let trials = args.get_usize("trials", 20_000);
    let seed = args.get_u64("seed", 6);

    banner(
        "E6 large-deviation bound (Lemma 4.4 / Corollary 4.5)",
        "Pr(x − E ≥ t√n) ≥ e^{−4(t+1)²}/√(2π) for t < √n/8",
    );

    section("Lemma 4.4: exact tail vs bound");
    let mut table = Table::new([
        "n",
        "t",
        "deviation t√n",
        "exact tail",
        "bound",
        "exact ≥ bound",
    ]);
    let mut violations = 0usize;
    for n in [64usize, 256, 1024, 4096, 16384, 65536] {
        let b = Binomial::fair(n);
        let sqrt_n = (n as f64).sqrt();
        for t in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            if t >= sqrt_n / 8.0 {
                continue;
            }
            let exact = b.deviation_tail(t * sqrt_n);
            let bound = lemma_4_4_bound(t);
            let ok = exact >= bound;
            if !ok {
                violations += 1;
            }
            table.row([
                n.to_string(),
                fmt_f64(t, 2),
                fmt_f64(t * sqrt_n, 1),
                format!("{exact:.3e}"),
                format!("{bound:.3e}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    print!("{table}");
    println!("\nviolations: {violations} (expected 0)");

    section("Corollary 4.5: deviation √(n·log n)/8 has probability ≥ √(log n/n)");
    let mut cor_table = Table::new([
        "n",
        "deviation",
        "exact tail",
        "√(ln n/n)",
        "Monte-Carlo",
        "holds",
    ]);
    let mut rng = SimRng::new(seed);
    for n in [64usize, 256, 1024, 4096] {
        let (dev, bound) = corollary_4_5(n);
        let exact = Binomial::fair(n).deviation_tail(dev);
        let mc = monte_carlo_tail(n, dev, trials, &mut rng);
        cor_table.row([
            n.to_string(),
            fmt_f64(dev, 1),
            fmt_f64(exact, 4),
            fmt_f64(bound, 4),
            fmt_f64(mc, 4),
            if exact >= bound { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print!("{cor_table}");
    println!("\nreading: this tail is why the adversary must pay ~√(p·log p) kills per");
    println!("block to stall SynRan (Lemma 4.6) — the coin overshoots the 6p/10 line");
    println!("with probability ≥ √(log p/p) every round.");
}
