//! Records the cohort-vs-fork valency baseline in `BENCH_valency.json`.
//!
//! For each system size the binary times `estimate_valency` (the lockstep
//! cohort engine) against `estimate_valency_fork` (the per-fork reference
//! path), asserts the two produce byte-identical estimates at threads
//! ∈ {1, 2, 8}, and writes the wall times plus the measured speedup to a
//! hand-rolled JSON file at the repo root (or `--out <path>`). The
//! versioned `"cohort"` key records the engine's early-retirement
//! counters — worlds started, worlds retired before the horizon, and the
//! rounds that retirement banked — from one counters-mode pass.
//!
//! The acceptance criterion — at least 1.5x cohort speedup at n = 256 —
//! applies on machines with at least 4 cores, where the cohort's
//! lane-per-worker scheduling out-fans the chunked per-fork dispatch;
//! the JSON records the core count so single-core CI runs (where both
//! engines serialise and the rows document parity) are interpretable.
//! The load-bearing claim asserted on every runner is identity.
//!
//! ```text
//! cargo run --release -p synran-bench --bin bench_valency
//! ```
//!
//! `--smoke` shrinks every knob for CI: same rows, same identity
//! assertions (that is the point), a fraction of the wall time.

use std::time::Instant;

use synran_adversary::{estimate_valency, estimate_valency_fork, ProbeSet};
use synran_bench::Args;
use synran_core::{ConsensusProtocol, SynRan, SynRanProcess};
use synran_sim::{parallel, Bit, SimConfig, Telemetry, TelemetryMode, World};

/// Thread counts every row's results are verified byte-identical at
/// (serial golden first; the machine clamp may collapse 8 to fewer
/// workers, which the determinism contract makes unobservable).
const VERIFY_THREADS: [usize; 3] = [1, 2, 8];

/// One cohort-vs-fork comparison row.
struct Row {
    n: usize,
    fork_ms: f64,
    cohort_ms: f64,
    identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fork_ms / self.cohort_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds (after one warm-up call).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A mid-round split-input SynRan world — the state `LowerBoundAdversary`
/// scores candidates from, i.e. the shape of the real hot path.
fn build_world(n: usize, threads: usize) -> World<SynRanProcess> {
    let protocol = SynRan::new();
    let mut world = World::new(
        SimConfig::new(n)
            .faults(n / 2)
            .seed(4)
            .max_rounds(10_000)
            .threads(threads),
        |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .expect("valid config");
    world.phase_a().expect("phase A");
    world
}

fn valency_row(n: usize, threads: usize, samples: usize, horizon: u32, reps: usize) -> Row {
    let probes = ProbeSet::synran(n / 2);
    let golden = format!(
        "{:?}",
        estimate_valency_fork(&build_world(n, 1), &probes, samples, horizon, 5).expect("estimate")
    );
    let identical = VERIFY_THREADS.iter().all(|&t| {
        let world = build_world(n, t);
        let cohort = estimate_valency(&world, &probes, samples, horizon, 5).expect("estimate");
        let fork = estimate_valency_fork(&world, &probes, samples, horizon, 5).expect("estimate");
        format!("{cohort:?}") == golden && format!("{fork:?}") == golden
    });
    assert!(
        identical,
        "cohort estimate diverged from the fork path at n={n}"
    );
    let world = build_world(n, threads);
    Row {
        n,
        fork_ms: time_ms(reps, || {
            estimate_valency_fork(&world, &probes, samples, horizon, 5).expect("estimate")
        }),
        cohort_ms: time_ms(reps, || {
            estimate_valency(&world, &probes, samples, horizon, 5).expect("estimate")
        }),
        identical,
    }
}

/// Early-retirement counters from one counters-mode estimate: deterministic
/// for fixed seeds, so the committed values reproduce under `nightly.sh`.
struct CohortCounters {
    n: usize,
    worlds: u64,
    retired_early: u64,
    rounds_saved: u64,
}

fn cohort_counters(n: usize, threads: usize, samples: usize, horizon: u32) -> CohortCounters {
    let hub = Telemetry::new(TelemetryMode::Counters);
    let mut world = build_world(n, threads);
    world.set_telemetry(hub.clone());
    let probes = ProbeSet::synran(n / 2);
    estimate_valency(&world, &probes, samples, horizon, 5).expect("estimate");
    let snap = hub.snapshot();
    let counters = CohortCounters {
        n,
        worlds: snap.counter("valency.cohort.worlds").unwrap_or(0),
        retired_early: snap.counter("valency.cohort.retired_early").unwrap_or(0),
        rounds_saved: snap.counter("valency.cohort.rounds_saved").unwrap_or(0),
    };
    assert_eq!(
        counters.worlds,
        (probes.len() * samples) as u64,
        "every (probe, sample) unit starts one cohort world"
    );
    assert!(
        counters.retired_early > 0,
        "split-input SynRan decides well before the {horizon}-round horizon"
    );
    counters
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let reps = args.get_usize("reps", if smoke { 1 } else { 5 });
    let samples = args.get_usize("samples", if smoke { 2 } else { 4 });
    let horizon =
        u32::try_from(args.get_usize("horizon", if smoke { 20 } else { 40 })).expect("horizon");
    let sizes: Vec<usize> = if smoke {
        vec![16, 48]
    } else {
        vec![64, 256, 1024]
    };
    let cores = parallel::resolve_threads(parallel::AUTO_THREADS);
    // `Args::threads` applies the oversubscription clamp; the bench floors
    // at 2 so the cohort lanes exercise the pool even on one core.
    let threads = args.threads().max(2);
    let out = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map_or_else(|| "BENCH_valency.json".to_string(), |w| w[1].clone());

    println!("bench_valency: cores={cores} threads={threads} reps={reps} smoke={smoke}");
    let mut rows = Vec::new();
    for &n in &sizes {
        let row = valency_row(n, threads, samples, horizon, reps);
        println!(
            "valency_cohort n={n}: fork {:.2} ms, cohort {:.2} ms ({:.2}x, identical)",
            row.fork_ms,
            row.cohort_ms,
            row.speedup()
        );
        rows.push(row);
    }

    // One counters-mode pass at the acceptance size for the retirement
    // accounting (observe-only: the equivalence suite pins that attaching
    // this hub does not change the estimate).
    let counters_n = sizes[sizes.len().min(2) - 1];
    let retirement = cohort_counters(counters_n, threads, samples, horizon);
    println!(
        "cohort counters n={}: worlds={} retired_early={} rounds_saved={}",
        retirement.n, retirement.worlds, retirement.retired_early, retirement.rounds_saved
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_valency\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"horizon\": {horizon},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(
        "  \"note\": \"cohort speedup target (>=1.5x at n=256) applies on machines with >=4 \
         cores; on single-core runners both engines serialise and the rows document parity. \
         Byte-identity of cohort vs per-fork estimates at threads 1/2/8 is asserted on every \
         runner\",\n",
    );
    json.push_str(&format!(
        "  \"cohort\": {{\n    \"version\": 1,\n    \"n\": {},\n    \"worlds\": {},\n    \
         \"retired_early\": {},\n    \"rounds_saved\": {},\n    \"retirement_observed\": {}\n  }},\n",
        retirement.n,
        retirement.worlds,
        retirement.retired_early,
        retirement.rounds_saved,
        retirement.retired_early > 0
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"valency_cohort\", \"n\": {}, \"fork_ms\": {:.3}, \
             \"cohort_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            r.n,
            r.fork_ms,
            r.cohort_ms,
            r.speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write baseline");
    println!("wrote {out}");
}
