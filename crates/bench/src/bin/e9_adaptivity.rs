//! E9 — §1.2: the lower bound *needs* adaptivity.
//!
//! The paper (citing Chor–Merritt–Shmoys) notes that `O(1)` expected
//! rounds are achievable against **non-adaptive** fail-stop adversaries,
//! so Theorem 1's `Ω(t/√(n·log n))` is specifically about *adaptive*
//! ones. This harness measures the full landscape with both protocols and
//! both adversary kinds:
//!
//! * `LeaderConsensus` (CMS-style random leader, `t < n/2`): `O(1)`
//!   expected rounds against any pre-committed schedule, but `Θ(t)` rounds
//!   against the adaptive leader hunter — adaptivity costs it everything;
//! * `SynRan` (the paper's protocol, any `t < n`): `Θ(t/√(n·log n))`
//!   against its best adaptive attack — slower than CMS against statics,
//!   but *immune to adaptivity* in exactly the sense the paper's tight
//!   bound promises.

use synran_adversary::{Balancer, LeaderHunter, Oblivious};
use synran_analysis::{fmt_f64, Summary, Table};
use synran_bench::{banner, section, Args};
use synran_core::{check_consensus, ConsensusProtocol, LeaderConsensus, SynRan};
use synran_sim::{Adversary, Bit, Passive, Process, SimConfig, SimRng};

fn measure<P, A>(
    protocol: &P,
    n: usize,
    t: usize,
    runs: usize,
    seed: u64,
    mut make: impl FnMut(u64) -> A,
) -> (f64, f64, f64)
where
    P: ConsensusProtocol,
    A: Adversary<P::Proc>,
    P::Proc: Process,
{
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
    let mut rounds = Vec::new();
    let mut kills = Vec::new();
    for r in 0..runs {
        let run_seed = SimRng::new(seed).derive(r as u64).next_u64();
        let verdict = check_consensus(
            protocol,
            &inputs,
            SimConfig::new(n)
                .faults(t)
                .seed(run_seed)
                .max_rounds(200_000),
            &mut make(run_seed),
        )
        .expect("engine error");
        assert!(
            verdict.is_correct(),
            "violation at n={n} t={t}: {:?}",
            verdict.violations()
        );
        rounds.push(verdict.rounds());
        kills.push(verdict.report().metrics().total_kills() as u32);
    }
    let s = Summary::of_u32(&rounds);
    (s.mean(), s.ci95_halfwidth(), Summary::of_u32(&kills).mean())
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 25);
    let seed = args.get_u64("seed", 9);
    let sizes: Vec<usize> = if args.flag("fast") {
        vec![33]
    } else {
        vec![33, 65, 129]
    };

    banner(
        "E9 adaptivity is necessary (§1.2 / [CMS89])",
        "non-adaptive adversaries allow O(1) expected rounds; Theorem 1 needs adaptivity",
    );
    println!("even-split inputs, {runs} runs/cell; LeaderConsensus uses t = (n−1)/2 (its bound), SynRan t = n−1");

    section("LeaderConsensus (CMS-style): static vs adaptive");
    let mut table = Table::new([
        "n",
        "t",
        "adversary",
        "mean rounds",
        "±95%",
        "kills",
        "rounds/t",
    ]);
    for &n in &sizes {
        let t = (n - 1) / 2;
        let protocol = LeaderConsensus::for_faults(t);
        let (m, ci, k) = measure(&protocol, n, t, runs, seed, |_| Passive);
        table.row([
            n.to_string(),
            t.to_string(),
            "passive".into(),
            fmt_f64(m, 1),
            fmt_f64(ci, 1),
            fmt_f64(k, 1),
            fmt_f64(m / t as f64, 2),
        ]);
        let (m, ci, k) = measure(&protocol, n, t, runs, seed ^ 1, |s| {
            Oblivious::new(n, 1, 200, s)
        });
        table.row([
            n.to_string(),
            t.to_string(),
            "oblivious(1/rd)".into(),
            fmt_f64(m, 1),
            fmt_f64(ci, 1),
            fmt_f64(k, 1),
            fmt_f64(m / t as f64, 2),
        ]);
        let (m, ci, k) = measure(&protocol, n, t, runs, seed ^ 2, |_| LeaderHunter::new());
        table.row([
            n.to_string(),
            t.to_string(),
            "leader-hunter".into(),
            fmt_f64(m, 1),
            fmt_f64(ci, 1),
            fmt_f64(k, 1),
            fmt_f64(m / t as f64, 2),
        ]);
    }
    print!("{table}");
    println!("\nexpected: passive and oblivious rows are flat (O(1), the CMS effect);");
    println!("the hunter row grows ∝ t (rounds/t roughly constant) at ~2 kills/round.");

    section("SynRan for contrast: adaptivity changes little");
    let mut syn_table = Table::new(["n", "t", "adversary", "mean rounds", "±95%", "kills"]);
    for &n in &sizes {
        let t = n - 1;
        let protocol = SynRan::new();
        for (name, oblivious) in [("oblivious(√n/rd)", true), ("balancer (adaptive)", false)] {
            let rate = (n as f64).sqrt().ceil() as usize;
            let (m, ci, k) = if oblivious {
                measure(&protocol, n, t, runs, seed ^ 3, |s| {
                    Box::new(Oblivious::new(n, rate, 200, s))
                        as Box<dyn Adversary<synran_core::SynRanProcess> + Send>
                })
            } else {
                measure(&protocol, n, t, runs, seed ^ 4, |_| {
                    Box::new(Balancer::unbounded())
                        as Box<dyn Adversary<synran_core::SynRanProcess> + Send>
                })
            };
            syn_table.row([
                n.to_string(),
                t.to_string(),
                name.into(),
                fmt_f64(m, 1),
                fmt_f64(ci, 1),
                fmt_f64(k, 1),
            ]);
        }
    }
    print!("{syn_table}");
    println!("\nreading: SynRan pays a bounded factor either way — its Θ(t/√(n·log n))");
    println!("guarantee holds against adaptive adversaries, where leader protocols fall to Θ(t).");
    println!("Both facts together are the paper's §1.2 landscape.");
}
