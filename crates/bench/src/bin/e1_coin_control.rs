//! E1 — Corollary 2.2: control over one-round coin-flipping games.
//!
//! Claim: once the adversary can hide more than `k·4·√(n·log n)` inputs,
//! **some** outcome is forcible with probability `> 1 − 1/n`; and
//! one-sidedness is real — 0-default majority is never forcible to 1, the
//! one-sided game never forcible to 0 (from all-ones).
//!
//! The harness sweeps the hide budget as a multiple `c` of
//! `h = 4·√(n·ln n)` and reports, per game and per outcome, the fraction
//! of sampled input vectors from which the searcher forces that outcome.

use synran_analysis::{fmt_f64, Table};
use synran_bench::{banner, section, Args};
use synran_coin::HideSearch;
use synran_coin::{
    bias_radius, estimate_control, exact_influences, exact_uncontrollable, CoinGame, GreedyHider,
    MajorityGame, OneSidedGame, Outcome, ParityGame, RecursiveMajorityGame, TribesGame,
};
use synran_sim::SimRng;

fn run_game<G: CoinGame>(game: &G, n: usize, samples: usize, seed: u64, table: &mut Table) {
    let h = bias_radius(n);
    for c in [0.0f64, 0.25, 0.5, 1.0, 2.0] {
        let t = ((c * h).round() as usize).min(n);
        let mut rng = SimRng::new(seed).derive(t as u64);
        let est = estimate_control(game, &GreedyHider, t, samples, &mut rng);
        let verdict = est
            .controlled_outcome(1.0 - 1.0 / n as f64)
            .map_or_else(|| "-".to_string(), |v| format!("→{}", v.0));
        table.row([
            game.name().to_string(),
            n.to_string(),
            fmt_f64(c, 2),
            t.to_string(),
            fmt_f64(est.forcible_fraction(Outcome(0)), 3),
            fmt_f64(est.forcible_fraction(Outcome(1)), 3),
            verdict,
        ]);
    }
}

fn main() {
    let args = Args::from_env();
    let samples = args.get_usize("samples", 300);
    let seed = args.get_u64("seed", 1);
    let sizes: Vec<usize> = if args.flag("fast") {
        vec![64, 256]
    } else {
        vec![64, 256, 1024, 4096]
    };

    banner(
        "E1 coin-game control (Corollary 2.2)",
        "t > k·4·√(n·log n) hides ⇒ some outcome forcible w.p. > 1 − 1/n; \
         majority-0 is never forcible to 1",
    );
    println!("hide budget t = c · h where h = 4√(n·ln n); {samples} sampled input vectors per row");

    section("binary games");
    let mut table = Table::new(["game", "n", "c", "t", "force→0", "force→1", "controlled"]);
    for &n in &sizes {
        run_game(&MajorityGame::new(n), n, samples, seed, &mut table);
        run_game(&ParityGame::new(n), n, samples, seed ^ 1, &mut table);
        run_game(&OneSidedGame::new(n), n, samples, seed ^ 2, &mut table);
        let width = (n as f64).log2().round() as usize;
        let tribes = TribesGame::new(n / width.max(1), width.max(1));
        run_game(&tribes, tribes.players(), samples, seed ^ 3, &mut table);
        // Nearest power-of-three size for the recursive-majority tree.
        let depth = ((n as f64).ln() / 3f64.ln()).round().max(1.0) as u32;
        let recmaj = RecursiveMajorityGame::new(depth);
        run_game(&recmaj, recmaj.players(), samples, seed ^ 4, &mut table);
    }
    print!("{table}");

    section("exact Pr(U^v) at n = 16 (Lemma 2.1's quantity, no sampling)");
    // U^v = inputs from which no t-hide-set forces v; the lemma wants
    // min_v Pr(U^v) < 1/n. Enumerated over all 2^16 inputs.
    let mut exact_table = Table::new(["t", "Pr(U^0) majority", "Pr(U^1) majority", "min_v < 1/n?"]);
    let n16 = 16usize;
    let g16 = MajorityGame::new(n16);
    for t in [0usize, 1, 2, 4, 8, 16] {
        let u0 = exact_uncontrollable(&g16, t, Outcome(0));
        let u1 = exact_uncontrollable(&g16, t, Outcome(1));
        exact_table.row([
            t.to_string(),
            fmt_f64(u0, 4),
            fmt_f64(u1, 4),
            if u0.min(u1) < 1.0 / n16 as f64 {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    print!("{exact_table}");
    println!("\nreading: Pr(U^0) collapses with t (hide the 1s) and crosses 1/n by t ≈ √n = 4,");
    println!("while Pr(U^1) never moves (its 0.598 is Pr(no 1-majority drawn)) — Lemma 2.1's 'some v', exactly.");

    section("influence vs forcing cost (why [BOL89]'s measure does not apply)");
    // Low per-player influence is the classical defence against biasing —
    // but fail-stop hiding is not input corruption: recursive majority
    // has a fraction of flat majority's influence and the same ~√n
    // forcing cost toward 0.
    let mut inf_table = Table::new([
        "game (n ≈ 2k)",
        "max influence",
        "hides to force →0 (median)",
    ]);
    let mut rng = SimRng::new(seed ^ 9);
    for game in [
        Box::new(MajorityGame::new(2187)) as Box<dyn CoinGame>,
        Box::new(RecursiveMajorityGame::new(7)), // 3^7 = 2187 players
    ] {
        // Exact influences are exponential; use the closed forms verified
        // in the library tests for majority, and sampled estimates for a
        // small instance to display the scaling direction.
        let small: Box<dyn CoinGame> = if game.name() == "majority-0" {
            Box::new(MajorityGame::new(9))
        } else {
            Box::new(RecursiveMajorityGame::new(2))
        };
        let influence = exact_influences(small.as_ref()).max();
        // Median forcing cost toward 0 over sampled inputs.
        let mut costs: Vec<usize> = (0..50)
            .filter_map(|_| {
                let values = synran_coin::sample_inputs(game.as_ref(), &mut rng);
                match GreedyHider.force(game.as_ref(), &values, game.players(), Outcome(0)) {
                    synran_coin::SearchOutcome::Forced(set) => Some(set.len()),
                    _ => None,
                }
            })
            .collect();
        costs.sort_unstable();
        let median = costs.get(costs.len() / 2).copied().unwrap_or(0);
        inf_table.row([
            format!("{} (influence at n = 9)", game.name()),
            fmt_f64(influence, 3),
            median.to_string(),
        ]);
    }
    print!("{inf_table}");
    println!("\n(√n ≈ 47 at n = 2187. Whatever the per-player influence — [BOL89]'s");
    println!("defence against input *corruption* — the fail-stop hider pays a small");
    println!("multiple of √n either way: hiding is a different threat model.)");

    section("reading the table");
    println!("• majority-0: force→0 hits 1.000 once c ≥ ~0.25 (hiding ~√n ones suffices),");
    println!("  while force→1 stays at the no-hide base rate — the paper's one-sided example.");
    println!("• parity: both columns ≈ 1 − 2^-n at any c with t ≥ 1 (hide one 1 to flip).");
    println!("• one-sided: force→0 = Pr(some 0 drawn) already at c = 0; force→1 needs c ≳ 1");
    println!("  (must hide every 0-holder: ~n/2 of them, ≫ h only for small n).");
    println!("• Cor 2.2's guarantee: at c ≥ 1, the 'controlled' column is never '-'.");
}
