//! E5 — protocol comparison: one-side-biased coin vs symmetric coin vs the
//! deterministic `t+1`-round baseline.
//!
//! Claims under test (paper §1.1 and §4):
//!
//! * flooding always takes exactly `t + 1` rounds — linear in `t`;
//! * SynRan grows like `t/√(n·log n)` — sublinear, crossing flooding near
//!   `t ≈ √n`;
//! * the one-side-biased coin is what lets SynRan keep its guarantee
//!   against *adaptive* attacks: under them the symmetric variant's
//!   unanimity is not absorbing (kills can knock a converged population
//!   back into coin-flipping), while SynRan's `Z = 0 → 1` rule makes
//!   trimming a unanimous-1 population worthless.

use synran_adversary::{Balancer, RandomKiller};
use synran_analysis::{deterministic_rounds, fmt_f64, tight_bound_rounds, Table};
use synran_bench::{banner, results_telemetry_path, section, write_telemetry_jsonl, Args};
use synran_core::{run_batch_with, ConsensusProtocol, FloodingConsensus, InputAssignment, SynRan};
use synran_sim::{Passive, SimConfig, Telemetry, TelemetryMode, World};

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 30);
    let seed = args.get_u64("seed", 5);
    let n = args.get_usize("n", 64);
    // `--telemetry counters` (or `spans`) attaches one hub to every batch
    // below — observe-only, so the tables are unchanged — and writes the
    // aggregate to results/e5_protocol_comparison.telemetry.jsonl.
    let mode: TelemetryMode = args
        .get("telemetry")
        .unwrap_or("off")
        .parse()
        .expect("--telemetry");
    let hub = Telemetry::new(mode);

    banner(
        "E5 protocol comparison",
        "flooding = t+1 rounds; SynRan ∝ t/√(n·log n); one-sided coin beats symmetric under attack",
    );
    println!("n = {n}, even-split inputs, {runs} runs/cell");

    let sqrt_n = (n as f64).sqrt().round() as usize;
    let t_values = [2, sqrt_n, n / 4, n / 2, n - 1];

    section("rounds to agreement under a passive adversary");
    let mut table = Table::new([
        "t",
        "flooding",
        "synran",
        "synran-sym",
        "bound t/√(n·ln(2+t/√n))",
    ]);
    for &t in &t_values {
        let cfg = SimConfig::new(n).faults(t).max_rounds(200_000);
        let flooding = run_batch_with(
            &FloodingConsensus::for_faults(t),
            InputAssignment::even_split(n),
            &cfg,
            runs,
            seed,
            &hub,
            |_| Passive,
        )
        .expect("engine error");
        let synran = run_batch_with(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            runs,
            seed,
            &hub,
            |_| Passive,
        )
        .expect("engine error");
        let sym = run_batch_with(
            &SynRan::symmetric(),
            InputAssignment::even_split(n),
            &cfg,
            runs,
            seed,
            &hub,
            |_| Passive,
        )
        .expect("engine error");
        for o in [&flooding, &synran, &sym] {
            assert!(o.all_correct(), "violations: {:?}", o.incorrect());
        }
        table.row([
            t.to_string(),
            fmt_f64(flooding.mean_rounds(), 1),
            fmt_f64(synran.mean_rounds(), 1),
            fmt_f64(sym.mean_rounds(), 1),
            fmt_f64(tight_bound_rounds(n, t).max(2.0), 1),
        ]);
    }
    print!("{table}");
    println!(
        "\nexpected: flooding column = t + 1 exactly (e.g. t = {} ⇒ {} rounds); \
         randomized columns stay small.",
        n / 2,
        deterministic_rounds(n / 2)
    );

    section("rounds to agreement under adaptive attack (t = n − 1)");
    let t = n - 1;
    let cfg = SimConfig::new(n).faults(t).max_rounds(200_000);
    let mut attack_table = Table::new(["adversary", "flooding", "synran", "synran-sym"]);
    // Random killer.
    let rate = sqrt_n;
    let flooding_r = run_batch_with(
        &FloodingConsensus::for_faults(t),
        InputAssignment::even_split(n),
        &cfg,
        runs,
        seed ^ 2,
        &hub,
        |s| RandomKiller::new(rate, s),
    )
    .expect("engine error");
    let synran_r = run_batch_with(
        &SynRan::new(),
        InputAssignment::even_split(n),
        &cfg,
        runs,
        seed ^ 2,
        &hub,
        |s| RandomKiller::new(rate, s),
    )
    .expect("engine error");
    let sym_r = run_batch_with(
        &SynRan::symmetric(),
        InputAssignment::even_split(n),
        &cfg,
        runs,
        seed ^ 2,
        &hub,
        |s| RandomKiller::new(rate, s),
    )
    .expect("engine error");
    attack_table.row([
        format!("random(√n = {rate})"),
        fmt_f64(flooding_r.mean_rounds(), 1),
        fmt_f64(synran_r.mean_rounds(), 1),
        fmt_f64(sym_r.mean_rounds(), 1),
    ]);
    // Balancer (SynRan-family only; flooding is oblivious to it, so rerun
    // random there for a fair row).
    let synran_b = run_batch_with(
        &SynRan::new(),
        InputAssignment::even_split(n),
        &cfg,
        runs,
        seed ^ 3,
        &hub,
        |_| Balancer::unbounded(),
    )
    .expect("engine error");
    let sym_b = run_batch_with(
        &SynRan::symmetric(),
        InputAssignment::even_split(n),
        &cfg,
        runs,
        seed ^ 3,
        &hub,
        |_| Balancer::unbounded(),
    )
    .expect("engine error");
    for o in [&flooding_r, &synran_r, &sym_r, &synran_b, &sym_b] {
        assert!(o.all_correct(), "violations: {:?}", o.incorrect());
    }
    attack_table.row([
        "balancer".to_string(),
        format!("{} (t+1, oblivious)", t + 1),
        fmt_f64(synran_b.mean_rounds(), 1),
        fmt_f64(sym_b.mean_rounds(), 1),
    ]);
    print!("{attack_table}");

    section("why the one-sided coin matters: validity under unanimous-1 inputs");
    // With all inputs 1 and t ≥ ~n/3, the adversary can kill enough
    // 1-senders mid-round that survivors' counts fall into the coin band.
    // The symmetric variant then flips coins — and may decide 0, violating
    // Validity. SynRan's `Z = 0 → 1` rule is immune: no visible 0 means
    // propose 1, whatever the counts. (This is why plain Ben-Or needs
    // t < n/2 while SynRan tolerates any t < n.)
    let unanimous = InputAssignment::Unanimous(synran_sim::Bit::One);
    let syn_u = run_batch_with(
        &SynRan::new(),
        unanimous,
        &cfg,
        runs,
        seed ^ 4,
        &hub,
        |_| Balancer::unbounded(),
    )
    .expect("engine error");
    let sym_u = run_batch_with(
        &SynRan::symmetric(),
        unanimous,
        &cfg,
        runs,
        seed ^ 4,
        &hub,
        |_| Balancer::unbounded(),
    )
    .expect("engine error");
    let mut validity_table = Table::new(["protocol", "runs", "validity violations"]);
    validity_table.row([
        "synran".to_string(),
        runs.to_string(),
        syn_u.incorrect().len().to_string(),
    ]);
    validity_table.row([
        "synran-sym".to_string(),
        runs.to_string(),
        sym_u.incorrect().len().to_string(),
    ]);
    print!("{validity_table}");
    assert!(
        syn_u.all_correct(),
        "SynRan must never violate validity: {:?}",
        syn_u.incorrect()
    );
    println!(
        "\nexpected: synran 0 violations at any t; synran-sym violates in essentially every\n\
         run — the adversary *controls* its decision: trims block 1-convergence while\n\
         0-heavy coin rounds convert for free, so all-1 inputs end in a 0 decision."
    );

    section("crossover");
    println!(
        "flooding wins while t + 1 < SynRan's ~c·t/√(n·ln n) — i.e. only for t ≲ √n ≈ {sqrt_n};"
    );
    println!(
        "protocol names: {} / {} / {}",
        FloodingConsensus::for_faults(1).name(),
        SynRan::new().name(),
        SynRan::symmetric().name()
    );

    if mode != TelemetryMode::Off {
        // One representative adaptive run (the attack configuration) for
        // the per-round kill accounting, then the hub's aggregate of every
        // batch above.
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n - 1)
                .seed(seed ^ 3)
                .max_rounds(200_000),
            |pid| protocol.spawn(pid, n, synran_sim::Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        world.set_telemetry(hub.clone());
        let report = world.run(&mut Balancer::unbounded()).expect("engine error");
        let path = results_telemetry_path("e5_protocol_comparison");
        write_telemetry_jsonl(
            &path,
            &[
                ("experiment", "e5_protocol_comparison".to_string()),
                ("adversary", "balancer".to_string()),
                ("n", n.to_string()),
                ("t", (n - 1).to_string()),
                ("seed", seed.to_string()),
            ],
            &hub,
            report.metrics().kills_per_round(),
            n,
        )
        .expect("write telemetry jsonl");
        println!("\nwrote {}", path.display());
    }
}
