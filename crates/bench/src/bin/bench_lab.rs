//! Records the campaign-engine overhead baseline in `BENCH_lab.json`.
//!
//! The campaign engine wraps `run_batch` in hashing, dedup, wave
//! scheduling, and journalling; this bench times the same cell grid four
//! ways — a raw hand-rolled `run_batch` loop, the engine without a
//! journal, the engine with a journal, and a fully warm cache — asserts
//! all paths produce identical observations, and writes the wall times
//! plus relative overhead to a hand-rolled JSON file at the repo root (or
//! `--out <path>`).
//!
//! ```text
//! cargo run --release -p synran-bench --bin bench_lab
//! ```

use std::io::Write as _;
use std::time::Instant;

use synran_bench::Args;
use synran_core::{run_batch, InputAssignment, SynRan};
use synran_lab::{Cell, CellResult, CellRunner, Engine, Fleet, FleetConfig, Journal};
use synran_sim::{SimConfig, Telemetry};

/// Best-of-`reps` wall time in milliseconds (after one warm-up call).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The benchmarked grid: seeds × sizes of balancer cells, the shape every
/// shipped campaign sweeps.
fn grid(n_values: &[usize], seeds: u64, runs: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &n in n_values {
        for seed in 1..=seeds {
            let mut cell = Cell::new("synran", "balancer", n);
            cell.runs = runs;
            cell.seed = seed;
            cells.push(cell);
        }
    }
    cells
}

/// The bespoke-sweep-loop baseline the campaign engine replaced: a plain
/// `run_batch` call per cell, serial, in cell order.
fn raw_loop(cells: &[Cell]) -> Vec<CellResult> {
    cells
        .iter()
        .map(|cell| {
            let outcome = run_batch(
                &SynRan::new(),
                InputAssignment::Split { ones: cell.ones },
                &SimConfig::new(cell.n)
                    .faults(cell.t)
                    .max_rounds(cell.max_rounds)
                    .threads(1),
                cell.runs,
                cell.seed,
                |_| synran_adversary::Balancer::unbounded(),
            )
            .expect("engine error");
            CellResult {
                rounds: outcome.rounds().to_vec(),
                kills: outcome.kills().iter().map(|&k| k as u64).collect(),
                timeouts: 0,
                violations: 0,
            }
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let reps = args.get_usize("reps", 5);
    let runs = args.get_usize("runs", 10);
    let seeds = args.get_u64("seeds", 4);
    let out_path = args.get("out").unwrap_or("BENCH_lab.json").to_string();
    let n_values = [16usize, 24];
    let cells = grid(&n_values, seeds, runs);
    let journal_dir = std::env::temp_dir().join(format!("synran-bench-lab-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("temp dir");

    // Correctness first: every path observes the same rounds/kills.
    let baseline = raw_loop(&cells);
    let via_engine = Engine::new(1, Telemetry::off())
        .run_cells(&cells)
        .expect("engine run");
    assert_eq!(via_engine, baseline, "engine diverged from the raw loop");

    let raw_ms = time_ms(reps, || raw_loop(&cells));
    let engine_ms = time_ms(reps, || {
        Engine::new(1, Telemetry::off())
            .run_cells(&cells)
            .expect("engine run")
    });
    let mut journal_tick = 0u64;
    let journal_ms = time_ms(reps, || {
        journal_tick += 1;
        let path = journal_dir.join(format!("bench-{journal_tick}.journal.jsonl"));
        let journal = Journal::create_fresh(&path).expect("fresh journal");
        Engine::new(1, Telemetry::off())
            .with_journal(journal, synran_lab::CellCache::new())
            .run_cells(&cells)
            .expect("engine run")
    });
    let warm_ms = {
        let mut engine = Engine::new(1, Telemetry::off());
        engine.run_cells(&cells).expect("warm-up");
        time_ms(reps, || engine.run_cells(&cells).expect("warm run"))
    };

    // Fleet overhead: the same grid through `--procs {1,2,4}` worker
    // subprocesses. Needs the sibling `synran` binary from the same
    // target dir; skip (with a note) when it isn't built.
    let synran_bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("synran")))
        .filter(|p| p.exists());
    let fleet_rows: Vec<(usize, f64)> = match &synran_bin {
        Some(bin) => [1usize, 2, 4]
            .iter()
            .map(|&procs| {
                let worker = vec![
                    bin.display().to_string(),
                    "campaign".to_string(),
                    "worker".to_string(),
                ];
                let ms = time_ms(reps, || {
                    let mut cfg = FleetConfig::new(procs);
                    cfg.worker.clone_from(&worker);
                    let mut fleet = Fleet::new(Engine::new(1, Telemetry::off()), cfg);
                    let results = fleet.run_cells(&cells).expect("fleet run");
                    assert_eq!(results, baseline, "fleet diverged from the raw loop");
                    results
                });
                (procs, ms)
            })
            .collect(),
        None => {
            println!(
                "fleet rows skipped: no sibling synran binary (run `cargo build --release` first)"
            );
            Vec::new()
        }
    };
    let _ = std::fs::remove_dir_all(&journal_dir);

    let overhead_pct = (engine_ms / raw_ms - 1.0) * 100.0;
    let journal_pct = (journal_ms / raw_ms - 1.0) * 100.0;

    println!("=== bench_lab: campaign-engine overhead vs raw run_batch loop ===");
    println!(
        "grid: {} cells (n ∈ {n_values:?}, {seeds} seeds, {runs} runs/cell), best of {reps}",
        cells.len()
    );
    println!("raw loop        : {raw_ms:.3} ms");
    println!("engine          : {engine_ms:.3} ms  ({overhead_pct:+.1}% vs raw)");
    println!("engine + journal: {journal_ms:.3} ms  ({journal_pct:+.1}% vs raw)");
    println!("warm cache      : {warm_ms:.3} ms");
    for &(procs, ms) in &fleet_rows {
        let pct = (ms / raw_ms - 1.0) * 100.0;
        println!("fleet --procs {procs} : {ms:.3} ms  ({pct:+.1}% vs raw)");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_lab\",\n");
    json.push_str("  \"version\": 1,\n");
    json.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"grid\": {{\"cells\": {}, \"n_values\": {n_values:?}, \"seeds\": {seeds}, \"runs_per_cell\": {runs}}},\n",
        cells.len()
    ));
    json.push_str(
        "  \"note\": \"all paths assert byte-identical observations; overhead covers hashing, dedup, wave scheduling, and (for the journal row) JSONL append+flush per cell\",\n",
    );
    json.push_str("  \"rows\": [\n");
    json.push_str(&format!(
        "    {{\"path\": \"raw_loop\", \"ms\": {raw_ms:.3}, \"overhead_pct\": 0.0}},\n"
    ));
    json.push_str(&format!(
        "    {{\"path\": \"engine\", \"ms\": {engine_ms:.3}, \"overhead_pct\": {overhead_pct:.1}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"path\": \"engine_journal\", \"ms\": {journal_ms:.3}, \"overhead_pct\": {journal_pct:.1}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"path\": \"warm_cache\", \"ms\": {warm_ms:.3}}}{}\n",
        if fleet_rows.is_empty() { "" } else { "," }
    ));
    for (i, &(procs, ms)) in fleet_rows.iter().enumerate() {
        let pct = (ms / raw_ms - 1.0) * 100.0;
        json.push_str(&format!(
            "    {{\"path\": \"fleet_procs_{procs}\", \"ms\": {ms:.3}, \"overhead_pct\": {pct:.1}}}{}\n",
            if i + 1 == fleet_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out_path).expect("create BENCH_lab.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_lab.json");
    println!("\nwrote {out_path}");
}
