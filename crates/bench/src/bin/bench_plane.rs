//! Records the bit-plane-vs-scalar delivery baseline in `BENCH_plane.json`.
//!
//! The engine routes broadcast rounds whose messages bit-pack through
//! word-packed planes (one bit per sender) instead of materialising `n²`
//! `(sender, message)` pairs. This binary measures exactly that contrast
//! with a twin experiment: the same broadcast-flood protocol run once with
//! a packable payload (`Bit` — plane path) and once with the same payload
//! wrapped in [`Opaque`] (never packs — scalar path). Both runs do
//! identical protocol work and read only the inbox length, so the timing
//! difference is the delivery representation and nothing else.
//!
//! For each system size the binary:
//!
//! * times `rounds` iterations of `phase_a` + `deliver` on both paths
//!   (best-of-`reps` wall time);
//! * records the `round.deliver` span totals from one instrumented pass
//!   per path, isolating Phase B from the untouched Phase A;
//! * asserts the plane run's full report is byte-identical to the
//!   [`Scalarized`] oracle's at thread counts 1, 2, and 8.
//!
//! ```text
//! cargo run --release -p synran-bench --bin bench_plane [-- --smoke]
//! ```

use std::time::Instant;

use synran_bench::Args;
use synran_sim::testing::{CountDown, Opaque, Scalarized};
use synran_sim::{
    Bit, Context, Inbox, Intervention, Process, SendPattern, SimConfig, Telemetry, TelemetryMode,
    World,
};

/// `CountDown` with a payload the planes cannot pack: the scalar twin.
#[derive(Debug, Clone)]
struct OpaqueFlood {
    remaining: u32,
    last_inbox_len: usize,
}

impl Process for OpaqueFlood {
    type Msg = Opaque<Bit>;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Opaque<Bit>> {
        SendPattern::Broadcast(Opaque(Bit::One))
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<Opaque<Bit>>) {
        self.last_inbox_len = inbox.len();
        self.remaining = self.remaining.saturating_sub(1);
    }

    fn decision(&self) -> Option<Bit> {
        (self.remaining == 0).then_some(Bit::One)
    }

    fn halted(&self) -> bool {
        self.remaining == 0
    }
}

/// One plane-vs-scalar comparison row.
struct Row {
    n: usize,
    rounds: u32,
    scalar_ms: f64,
    plane_ms: f64,
    scalar_deliver_ns: u64,
    plane_deliver_ns: u64,
    identical: bool,
}

impl Row {
    fn wall_speedup(&self) -> f64 {
        self.scalar_ms / self.plane_ms.max(1e-9)
    }

    fn deliver_speedup(&self) -> f64 {
        self.scalar_deliver_ns as f64 / (self.plane_deliver_ns as f64).max(1.0)
    }
}

/// Best-of-`reps` wall time in milliseconds (after one warm-up call).
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Drives `rounds` broadcast rounds of a fresh world built by `build`.
fn drive<P: Process>(build: &dyn Fn() -> World<P>, rounds: u32, telemetry: Option<&Telemetry>) {
    let mut world = build();
    if let Some(hub) = telemetry {
        world.set_telemetry(hub.clone());
    }
    for _ in 0..rounds {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }
}

/// Total nanoseconds spent in `round.deliver` spans during one pass.
fn deliver_span_ns<P: Process>(build: &dyn Fn() -> World<P>, rounds: u32) -> u64 {
    let hub = Telemetry::new(TelemetryMode::Spans);
    drive(build, rounds, Some(&hub));
    hub.snapshot()
        .span_totals()
        .iter()
        .find(|(name, _, _)| name == "round.deliver")
        .map_or(0, |&(_, _, total_ns)| total_ns)
}

/// Full-report byte identity between the plane run and its scalarized
/// oracle, across thread counts (the plane path must not care).
fn identical_across_threads(n: usize, rounds: u32) -> bool {
    [1usize, 2, 8].iter().all(|&threads| {
        let cfg = SimConfig::new(n).seed(0xB17).threads(threads);
        let plain = {
            let mut w =
                World::new(cfg.clone(), |_| CountDown::new(rounds, Bit::One)).expect("config");
            w.run(&mut synran_sim::Passive).expect("run")
        };
        let oracle = {
            let mut w =
                World::new(cfg, |_| Scalarized(CountDown::new(rounds, Bit::One))).expect("config");
            w.run(&mut synran_sim::Passive).expect("run")
        };
        format!("{plain:?}") == format!("{oracle:?}")
    })
}

fn bench_row(n: usize, rounds: u32, reps: usize) -> Row {
    let plane_build = move || {
        World::new(SimConfig::new(n).seed(0xB17), |_| {
            CountDown::new(rounds + 1, Bit::One)
        })
        .expect("config")
    };
    let scalar_build = move || {
        World::new(SimConfig::new(n).seed(0xB17), |_| OpaqueFlood {
            remaining: rounds + 1,
            last_inbox_len: 0,
        })
        .expect("config")
    };
    Row {
        n,
        rounds,
        scalar_ms: time_ms(reps, || drive(&scalar_build, rounds, None)),
        plane_ms: time_ms(reps, || drive(&plane_build, rounds, None)),
        scalar_deliver_ns: deliver_span_ns(&scalar_build, rounds),
        plane_deliver_ns: deliver_span_ns(&plane_build, rounds),
        identical: identical_across_threads(n, rounds),
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let reps = args.get_usize("reps", if smoke { 2 } else { 5 });
    let rounds = u32::try_from(args.get_usize("rounds", if smoke { 20 } else { 200 }))
        .expect("rounds fits u32");
    let out = args.get("out").unwrap_or("BENCH_plane.json").to_string();
    let sizes: &[usize] = if smoke { &[64] } else { &[64, 256, 1024] };

    println!("bench_plane: sizes={sizes:?} rounds={rounds} reps={reps} smoke={smoke}");
    let mut rows = Vec::new();
    for &n in sizes {
        let row = bench_row(n, rounds, reps);
        println!(
            "n={n}: scalar {:.2} ms / plane {:.2} ms ({:.2}x wall), \
             round.deliver {:.2}x, identical={}",
            row.scalar_ms,
            row.plane_ms,
            row.wall_speedup(),
            row.deliver_speedup(),
            row.identical,
        );
        assert!(row.identical, "plane/scalar divergence at n={n}");
        if n == 1024 {
            assert!(
                row.deliver_speedup() >= 4.0,
                "acceptance: round.deliver must improve >=4x at n=1024, got {:.2}x",
                row.deliver_speedup()
            );
        }
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_plane\",\n");
    json.push_str("  \"version\": 1,\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(
        "  \"note\": \"scalar = same broadcast flood with a never-packing payload; \
         identical = the plane run's report matches the scalarized oracle \
         byte-for-byte at threads 1, 2, and 8\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"scalar_ms\": {:.3}, \"plane_ms\": {:.3}, \
             \"wall_speedup\": {:.3}, \"deliver_scalar_ns\": {}, \"deliver_plane_ns\": {}, \
             \"deliver_speedup\": {:.3}, \"identical\": {}}}{}\n",
            r.n,
            r.rounds,
            r.scalar_ms,
            r.plane_ms,
            r.wall_speedup(),
            r.scalar_deliver_ns,
            r.plane_deliver_ns,
            r.deliver_speedup(),
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write baseline");
    println!("wrote {out}");
}
