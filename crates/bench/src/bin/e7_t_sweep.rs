//! E7 — Theorem 3 across the whole fault range: expected rounds
//! `Θ(t/√(n·log(2+t/√n)))`, with an `O(1)` plateau for `t = O(√n)`.
//!
//! Fixed `n`, sweep `t` from 1 to `n − 1`, SynRan under its worst
//! implemented adversary (the coin-band balancer). The measured series
//! should scale with the tight curve and flatten below `t ≈ √n`.

use synran_adversary::Balancer;
use synran_analysis::{fmt_f64, tight_bound_rounds, AsciiPlot, ShapeFit, Summary, Table};
use synran_bench::{banner, section, Args};
use synran_core::{run_batch, InputAssignment, SynRan};
use synran_sim::SimConfig;

fn sweep(n: usize, runs: usize, seed: u64) -> Vec<(usize, f64, f64)> {
    let mut t_values = vec![1usize, 2, 4];
    let mut t = 8;
    while t < n {
        t_values.push(t);
        t *= 2;
    }
    t_values.push(n - 1);
    t_values.dedup();

    let mut out = Vec::new();
    for t in t_values {
        let outcome = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &SimConfig::new(n).faults(t).max_rounds(200_000),
            runs,
            seed ^ t as u64,
            |_| Balancer::unbounded(),
        )
        .expect("engine error");
        assert!(
            outcome.all_correct(),
            "violations at n={n} t={t}: {:?}",
            outcome.incorrect()
        );
        let s = Summary::of_u32(outcome.rounds());
        out.push((t, s.mean(), s.ci95_halfwidth()));
    }
    out
}

fn main() {
    let args = Args::from_env();
    let runs = args.get_usize("runs", 40);
    let seed = args.get_u64("seed", 7);
    let sizes: Vec<usize> = if args.flag("fast") {
        vec![256]
    } else {
        vec![256, 1024]
    };

    banner(
        "E7 full fault-range sweep (Theorem 3)",
        "expected rounds = Θ(t/√(n·log(2+t/√n))); O(1) plateau for t = O(√n)",
    );
    println!("SynRan vs the coin-band balancer, even-split inputs, {runs} runs/point");

    for &n in &sizes {
        let sqrt_n = (n as f64).sqrt().round() as usize;
        section(&format!("n = {n} (√n = {sqrt_n})"));
        let series = sweep(n, runs, seed);
        let mut table = Table::new(["t", "mean rounds", "±95%", "curve", "ratio"]);
        let mut plateau: Vec<f64> = Vec::new();
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for &(t, mean, ci) in &series {
            // The protocol has a 2-round floor (decide + stop), so compare
            // against curve + 2 to keep small-t ratios meaningful.
            let curve = tight_bound_rounds(n, t) + 2.0;
            table.row([
                t.to_string(),
                fmt_f64(mean, 1),
                fmt_f64(ci, 1),
                fmt_f64(curve, 1),
                fmt_f64(mean / curve, 2),
            ]);
            if t <= sqrt_n {
                plateau.push(mean);
            } else {
                measured.push(mean);
                predicted.push(curve);
            }
        }
        print!("{table}");
        let mut plot = AsciiPlot::new(56, 12).log_x();
        plot.series(
            'm',
            &series
                .iter()
                .map(|&(t, mean, _)| (t as f64, mean))
                .collect::<Vec<_>>(),
        );
        plot.series(
            'c',
            &series
                .iter()
                .map(|&(t, _, _)| (t as f64, tight_bound_rounds(n, t) + 2.0))
                .collect::<Vec<_>>(),
        );
        println!("\nmeasured (m) vs curve (c), rounds over t:");
        print!("{}", plot.render());
        let plateau_span = plateau.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - plateau.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        println!(
            "\nplateau (t ≤ √n): means span {} rounds — the O(1) regime",
            fmt_f64(plateau_span, 1)
        );
        if measured.len() >= 2 {
            let fit = ShapeFit::fit(&measured, &predicted);
            println!(
                "growth regime (t > √n): rounds ≈ {} · curve, max rel residual {}",
                fmt_f64(fit.scale(), 2),
                fmt_f64(fit.max_rel_residual(), 2)
            );
        }
    }
}
