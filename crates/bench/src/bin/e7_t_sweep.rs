//! E7 — Theorem 3 across the whole fault range: expected rounds
//! `Θ(t/√(n·log(2+t/√n)))`, with an `O(1)` plateau for `t = O(√n)`.
//!
//! Thin wrapper over the `synran-lab` E7 campaign preset (see
//! `campaigns/e7.campaign` for the declarative form).
//!
//! Telemetry defaults to `counters` so the committed
//! `results/e7_t_sweep.telemetry.jsonl` carries the representative run's
//! counters; `--telemetry spans` (or `off`) picks the other modes.

use synran_bench::Args;
use synran_lab::presets::e7::{self, E7Params};
use synran_lab::Engine;
use synran_sim::{Telemetry, TelemetryMode};

fn main() {
    let args = Args::from_env();
    let mode: TelemetryMode = args
        .get("telemetry")
        .unwrap_or("counters")
        .parse()
        .expect("--telemetry");
    let params = E7Params {
        sizes: if args.flag("fast") {
            vec![256]
        } else {
            e7::DEFAULT_SIZES.to_vec()
        },
        runs: args.get_usize("runs", 40),
        seed: args.get_u64("seed", 7),
    };
    let mut engine = Engine::new(args.get_usize("threads", 0), Telemetry::new(mode));
    e7::run(&params, &mut engine, &mut std::io::stdout().lock()).expect("e7 failed");
}
