//! `bench_gate` — the CLI of the perf-regression gate
//! ([`synran_bench::gate`]).
//!
//! ```text
//! bench_gate compare <baseline.json> <fresh.json> [--max-regress <pct>]
//! bench_gate scale   <in.json> <out.json> <factor>
//! ```
//!
//! `compare` exits nonzero when any time-like metric in the baseline
//! regressed beyond the limit (default 25%), is missing from the fresh
//! file, or a baseline `true` boolean flipped. `scale` writes a copy of a
//! bench JSON with every time-like value multiplied by `<factor>` — the
//! synthetic regression `scripts/bench_gate.sh --smoke` uses to prove the
//! gate actually fails.

use std::process::ExitCode;

use synran_bench::gate::{compare, parse_json, scale_times, to_string};

const USAGE: &str = "\
bench_gate — compare fresh bench JSON against a committed baseline

USAGE:
  bench_gate compare <baseline.json> <fresh.json> [--max-regress <pct>]
  bench_gate scale   <in.json> <out.json> <factor>";

fn read_json(path: &str) -> Result<synran_bench::gate::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compare") => {
            let [baseline_path, fresh_path] = args.get(1..3).map_or(
                Err("compare expects <baseline.json> <fresh.json>".to_string()),
                |paths| Ok([&paths[0], &paths[1]]),
            )?;
            let mut max_regress = 25.0;
            if let Some(i) = args.iter().position(|a| a == "--max-regress") {
                let value = args
                    .get(i + 1)
                    .ok_or("--max-regress expects a percentage")?;
                max_regress = value
                    .parse()
                    .map_err(|_| format!("--max-regress: not a number: {value}"))?;
            }
            let baseline = read_json(baseline_path)?;
            let fresh = read_json(fresh_path)?;
            let outcome = compare(&baseline, &fresh, max_regress);
            for line in &outcome.lines {
                println!("{line}");
            }
            if outcome.passed() {
                println!(
                    "gate: ok ({} time metrics within +{max_regress:.0}%)",
                    outcome.lines.len()
                );
                Ok(())
            } else {
                let mut msg = String::from("bench gate failed:\n");
                for failure in &outcome.failures {
                    msg.push_str("  ");
                    msg.push_str(failure);
                    msg.push('\n');
                }
                Err(msg)
            }
        }
        Some("scale") => {
            let (input, output, factor) = match args.get(1..4) {
                Some([input, output, factor]) => (input, output, factor),
                _ => return Err("scale expects <in.json> <out.json> <factor>".to_string()),
            };
            let factor: f64 = factor
                .parse()
                .map_err(|_| format!("factor: not a number: {factor}"))?;
            let mut json = read_json(input)?;
            scale_times(&mut json, factor);
            std::fs::write(output, to_string(&json) + "\n")
                .map_err(|e| format!("{output}: {e}"))?;
            println!("wrote {output} (time metrics x{factor})");
            Ok(())
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
