//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace keeps its performance benches in-tree (see
//! `benches/perf.rs`, built with `harness = false`) instead of depending on
//! an external benchmarking framework. This module provides the timing
//! loop those benches share: warm-up, automatic iteration calibration
//! against a wall-clock budget, and per-iteration min/mean/max statistics.
//!
//! Results are wall-clock measurements via [`std::time::Instant`];
//! [`std::hint::black_box`] guards the measured closure's result so the
//! optimiser cannot delete the work.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id, e.g. `"engine_rounds/broadcast/64"`.
    pub name: String,
    /// Timed iterations (after warm-up).
    pub iters: u32,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: f64,
}

impl Measurement {
    /// Mean iteration time in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// One table line: `name  mean  [min .. max]  (iters)`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<44} {:>12}  [{} .. {}]  ({} iters)",
            self.name,
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns),
            self.iters
        )
    }
}

/// Formats nanoseconds with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The timing loop's knobs; [`Bencher::default`] suits most benches.
#[derive(Debug, Clone)]
pub struct Bencher {
    /// Wall-clock budget for the measured phase of one benchmark.
    pub target: Duration,
    /// Wall-clock budget for the warm-up phase.
    pub warmup: Duration,
    /// Lower bound on timed iterations, whatever the budget says.
    pub min_iters: u32,
    /// Upper bound on timed iterations (cheap closures would otherwise
    /// spin for millions).
    pub max_iters: u32,
}

impl Default for Bencher {
    fn default() -> Bencher {
        Bencher {
            target: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
            min_iters: 5,
            max_iters: 10_000,
        }
    }
}

impl Bencher {
    /// A faster profile for smoke runs (`--quick`).
    #[must_use]
    pub fn quick() -> Bencher {
        Bencher {
            target: Duration::from_millis(60),
            warmup: Duration::from_millis(20),
            min_iters: 2,
            max_iters: 1_000,
        }
    }

    /// Times `f`: warms up for [`Bencher::warmup`], calibrates an
    /// iteration count from the observed speed, then measures every
    /// iteration individually.
    pub fn bench<T>(&self, name: impl Into<String>, mut f: impl FnMut() -> T) -> Measurement {
        // Warm-up, also serving as the calibration sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= self.max_iters {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / f64::from(warm_iters);
        let budget = self.target.as_secs_f64();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let iters = ((budget / per_iter.max(1e-9)) as u32).clamp(self.min_iters, self.max_iters);

        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..iters {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_secs_f64() * 1e9;
            total += ns;
            min = min.min(ns);
            max = max.max(ns);
        }
        Measurement {
            name: name.into(),
            iters,
            mean_ns: total / f64::from(iters),
            min_ns: min,
            max_ns: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let b = Bencher {
            target: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
            min_iters: 3,
            max_iters: 50,
        };
        let m = b.bench("spin", || (0..1000u64).sum::<u64>());
        assert!(m.iters >= 3);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        assert_eq!(m.name, "spin");
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(500.0).ends_with("ns"));
        assert!(fmt_ns(5_000.0).ends_with("µs"));
        assert!(fmt_ns(5_000_000.0).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with(" s"));
        let m = Measurement {
            name: "x".into(),
            iters: 1,
            mean_ns: 2e6,
            min_ns: 1e6,
            max_ns: 3e6,
        };
        assert!((m.mean_ms() - 2.0).abs() < 1e-9);
        assert!(m.render().contains("ms"));
    }
}
