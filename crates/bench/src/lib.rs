//! # synran-bench — experiment harnesses and performance benches
//!
//! One binary per experiment in DESIGN.md's index (E1–E10), each printing
//! the table EXPERIMENTS.md records, plus the in-tree performance benches
//! in `benches/perf.rs` guarding the simulator's speed. This library holds
//! the tiny bits they share: a no-dependency `--key value` argument parser,
//! output helpers, and the [`harness`] timing loop the benches run on.
//! The telemetry-artifact helpers live in [`synran_lab::artifact`] (the
//! campaign presets need them below this crate) and are re-exported here
//! so the binaries keep one import path.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p synran-bench --bin e4_synran_upper -- --runs 50
//! ```
//!
//! E3, E4, and E7 are thin wrappers over the campaign presets in
//! `synran-lab` — the same tables are reproducible from the specs in
//! `campaigns/` via `synran campaign run`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub use synran_lab::artifact::{results_telemetry_path, write_telemetry_jsonl};

pub mod gate;
pub mod harness;

/// A minimal `--key value` command-line parser (plus bare `--flag`s).
///
/// The experiment binaries take a handful of numeric knobs; this avoids a
/// CLI dependency. Values may be negative (`--bias -1`): anything that is
/// not itself a `--key` counts as the preceding key's value. A key given
/// twice keeps the last value.
///
/// # Examples
///
/// ```
/// use synran_bench::Args;
///
/// let args = Args::parse(["--runs", "50", "--fast"].map(String::from));
/// assert_eq!(args.get_usize("runs", 10), 50);
/// assert_eq!(args.get_usize("seeds", 7), 7);
/// assert!(args.flag("fast"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an explicit argument list (without the program name).
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Args { values, flags }
    }

    /// Parses the process's actual command line.
    #[must_use]
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// A `usize` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `i64` knob with a default (negative values welcome: `--bias -2`).
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_i64(&self, key: &str, default: i64) -> i64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// The raw string value of a knob, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `--threads` knob, resolved through the simulator's clamp:
    /// `0` (or absent) means "all available cores", and explicit requests
    /// are capped at the machine's available parallelism (floor 2), so
    /// `--threads 100000` oversubscription cannot start more workers than
    /// the machine can run.
    #[must_use]
    pub fn threads(&self) -> usize {
        synran_sim::parallel::resolve_threads(
            self.get_usize("threads", synran_sim::parallel::AUTO_THREADS),
        )
    }
}

/// Prints an experiment banner with its DESIGN.md id and the claim under
/// test.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

/// Prints a named section divider.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(["--n", "64", "--verbose", "--seed", "9"].map(String::from));
        assert_eq!(a.get_usize("n", 0), 64);
        assert_eq!(a.get_u64("seed", 0), 9);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(std::iter::empty());
        assert_eq!(a.get_usize("n", 42), 42);
        assert_eq!(a.get_f64("x", 1.5), 1.5);
        assert_eq!(a.get_i64("bias", -7), -7);
        assert_eq!(a.get("anything"), None);
    }

    #[test]
    fn trailing_flag() {
        let a = Args::parse(["--x", "1", "--fast"].map(String::from));
        assert!(a.flag("fast"));
        assert_eq!(a.get_usize("x", 0), 1);
    }

    #[test]
    fn negative_values_are_values_not_flags() {
        let a = Args::parse(["--bias", "-3", "--scale", "-0.5", "--fast"].map(String::from));
        assert_eq!(a.get_i64("bias", 0), -3);
        assert!((a.get_f64("scale", 0.0) - -0.5).abs() < f64::EPSILON);
        assert!(a.flag("fast"));
        assert!(!a.flag("bias"), "-3 consumed as a value, not a flag");
    }

    #[test]
    fn repeated_keys_last_wins() {
        let a = Args::parse(["--runs", "5", "--runs", "9"].map(String::from));
        assert_eq!(a.get_usize("runs", 0), 9);
    }

    #[test]
    fn trailing_bare_flag_with_no_value_is_a_flag() {
        let a = Args::parse(["--fast"].map(String::from));
        assert!(a.flag("fast"));
        assert_eq!(a.get("fast"), None, "no value attached");
    }

    #[test]
    fn flag_followed_by_key_stays_a_flag() {
        let a = Args::parse(["--fast", "--runs", "3"].map(String::from));
        assert!(a.flag("fast"));
        assert_eq!(a.get_usize("runs", 0), 3);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = Args::parse(["--n", "abc"].map(String::from));
        let _ = a.get_usize("n", 0);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_i64_panics() {
        let a = Args::parse(["--bias", "1.5"].map(String::from));
        let _ = a.get_i64("bias", 0);
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let a = Args::parse(["--threads", "0"].map(String::from));
        assert_eq!(a.threads(), available, "--threads 0 means auto");
        let absent = Args::parse(std::iter::empty());
        assert_eq!(absent.threads(), available, "absent knob means auto too");
    }

    #[test]
    fn threads_oversubscription_is_clamped_to_the_machine() {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let a = Args::parse(["--threads", "100000"].map(String::from));
        assert_eq!(
            a.threads(),
            available.max(2),
            "oversubscription clamps to available cores (floor 2)"
        );
        assert!(a.threads() <= available.max(2));
    }

    #[test]
    fn small_explicit_thread_requests_pass_through() {
        let one = Args::parse(["--threads", "1"].map(String::from));
        assert_eq!(one.threads(), 1, "serial stays serial");
        let two = Args::parse(["--threads", "2"].map(String::from));
        assert_eq!(two.threads(), 2, "within the clamp floor");
    }
}
