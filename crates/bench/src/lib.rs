//! # synran-bench — experiment harnesses and performance benches
//!
//! One binary per experiment in DESIGN.md's index (E1–E10), each printing
//! the table EXPERIMENTS.md records, plus the in-tree performance benches
//! in `benches/perf.rs` guarding the simulator's speed. This library holds
//! the tiny bits they share: a no-dependency `--key value` argument parser,
//! output helpers, and the [`harness`] timing loop the benches run on.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p synran-bench --bin e4_synran_upper -- --runs 50
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use synran_sim::telemetry::per_round_kill_cap;
use synran_sim::{JsonlSink, Round, Telemetry, TelemetryEvent, TelemetrySink};

pub mod harness;

/// A minimal `--key value` command-line parser (plus bare `--flag`s).
///
/// The experiment binaries take a handful of numeric knobs; this avoids a
/// CLI dependency.
///
/// # Examples
///
/// ```
/// use synran_bench::Args;
///
/// let args = Args::parse(["--runs", "50", "--fast"].map(String::from));
/// assert_eq!(args.get_usize("runs", 10), 50);
/// assert_eq!(args.get_usize("seeds", 7), 7);
/// assert!(args.flag("fast"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an explicit argument list (without the program name).
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Args { values, flags }
    }

    /// Parses the process's actual command line.
    #[must_use]
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// A `usize` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` knob with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Whether a bare `--flag` was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// The conventional telemetry JSONL path for an experiment binary:
/// `results/<bin>.telemetry.jsonl` (next to the experiment's `.txt`
/// results, per EXPERIMENTS.md).
#[must_use]
pub fn results_telemetry_path(bin: &str) -> PathBuf {
    Path::new("results").join(format!("{bin}.telemetry.jsonl"))
}

/// Writes an experiment's telemetry as JSONL: `meta` attribution lines,
/// the exported registry (counters → histograms → spans), then one
/// `round_kills` line per entry of `kills_per_round` scored against the
/// paper's `4√(n·ln n)+1` per-round cap for system size `n`.
///
/// `kills_per_round` is [`synran_sim::Metrics::kills_per_round`] output
/// from a representative run — sorted, one entry per round.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file (the parent
/// directory is created if missing).
pub fn write_telemetry_jsonl(
    path: &Path,
    meta: &[(&str, String)],
    telemetry: &Telemetry,
    kills_per_round: &[(Round, usize)],
    n: usize,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut sink = JsonlSink::new(BufWriter::new(std::fs::File::create(path)?));
    for (key, value) in meta {
        sink.emit(&TelemetryEvent::Meta {
            key: (*key).to_string(),
            value: value.clone(),
        });
    }
    telemetry.export(&mut sink);
    let cap = per_round_kill_cap(n);
    for &(round, kills) in kills_per_round {
        let kills = kills as u64;
        sink.emit(&TelemetryEvent::RoundKills {
            round: round.index(),
            kills,
            cap,
            over_cap: kills > cap,
        });
    }
    sink.finish()?.flush()
}

/// Prints an experiment banner with its DESIGN.md id and the claim under
/// test.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

/// Prints a named section divider.
pub fn section(title: &str) {
    println!();
    println!("--- {title} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(["--n", "64", "--verbose", "--seed", "9"].map(String::from));
        assert_eq!(a.get_usize("n", 0), 64);
        assert_eq!(a.get_u64("seed", 0), 9);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(std::iter::empty());
        assert_eq!(a.get_usize("n", 42), 42);
        assert_eq!(a.get_f64("x", 1.5), 1.5);
    }

    #[test]
    fn trailing_flag() {
        let a = Args::parse(["--x", "1", "--fast"].map(String::from));
        assert!(a.flag("fast"));
        assert_eq!(a.get_usize("x", 0), 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = Args::parse(["--n", "abc"].map(String::from));
        let _ = a.get_usize("n", 0);
    }
}
