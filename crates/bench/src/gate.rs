//! The perf-regression gate: compare a fresh `BENCH_*.json` against the
//! committed baseline and fail on phase-level regressions.
//!
//! `scripts/bench_gate.sh` drives this through the `bench_gate` binary:
//!
//! ```text
//! bench_gate compare BENCH_parallel.json /tmp/fresh.json --max-regress 25
//! bench_gate scale   BENCH_parallel.json /tmp/slow.json  1.5
//! ```
//!
//! The comparison is structural, not positional: every `BENCH_*.json` is
//! flattened into `path → metric` pairs where array elements are labeled
//! by their `group` / `path` / `name` field (so reordering rows cannot
//! produce false deltas), and only **time-like** metrics — keys ending in
//! `_ms`, `_ns`, or named `ms` — are gated. A fresh value more than
//! `max_regress` percent above baseline fails, as does a time-like
//! baseline metric missing from the fresh file, or a baseline `true`
//! boolean (e.g. `identical`, `reused_gt_spawned`) turning `false`.
//!
//! `scale` synthesizes a regressed file by multiplying every time-like
//! value by a factor — the negative control proving the gate has teeth
//! (exercised by `bench_gate.sh --smoke` in tier-1).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A minimal JSON value — just enough for the `BENCH_*.json` family.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid token at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => other as char,
                });
            }
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".to_string())
}

/// Serializes `json` compactly (used by [`scale_times`] output).
#[must_use]
pub fn to_string(json: &Json) -> String {
    let mut out = String::new();
    write_json(json, &mut out);
    out
}

fn write_json(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(x) => {
            // Integral values print without a fraction, mirroring the
            // generators' output.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{}", *x as i64);
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Json::Str(s) => {
            let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{key}\":");
                write_json(value, out);
            }
            out.push('}');
        }
    }
}

/// One flattened leaf metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// A numeric leaf.
    Num(f64),
    /// A boolean leaf.
    Bool(bool),
}

/// `true` for keys the gate treats as wall-clock measurements.
#[must_use]
pub fn is_time_key(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_ns") || key == "ms" || key.ends_with(".ms")
}

/// Flattens `json` into `path → metric` pairs. Object fields join with
/// `.`; array elements are labeled by their `group`, `path`, or `name`
/// string field when present (falling back to the index), so row order
/// never affects the comparison.
#[must_use]
pub fn flatten(json: &Json) -> BTreeMap<String, Metric> {
    let mut out = BTreeMap::new();
    walk(json, "", &mut out);
    out
}

fn walk(json: &Json, prefix: &str, out: &mut BTreeMap<String, Metric>) {
    match json {
        Json::Num(x) => {
            out.insert(prefix.to_string(), Metric::Num(*x));
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), Metric::Bool(*b));
        }
        Json::Str(_) | Json::Null => {}
        Json::Obj(fields) => {
            for (key, value) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                walk(value, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item).unwrap_or_else(|| i.to_string());
                let path = if prefix.is_empty() {
                    label
                } else {
                    format!("{prefix}.{label}")
                };
                walk(item, &path, out);
            }
        }
    }
}

/// The identity label of an array element: its `group` (+ `n` when
/// present), `path`, or `name` field.
fn element_label(item: &Json) -> Option<String> {
    let Json::Obj(fields) = item else {
        return None;
    };
    let get_str = |want: &str| {
        fields.iter().find_map(|(k, v)| match v {
            Json::Str(s) if k == want => Some(s.clone()),
            _ => None,
        })
    };
    let get_num = |want: &str| {
        fields.iter().find_map(|(k, v)| match v {
            Json::Num(x) if k == want => Some(*x),
            _ => None,
        })
    };
    if let Some(group) = get_str("group") {
        return Some(match get_num("n") {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n) => format!("{group}[n={}]", n as u64),
            None => group,
        });
    }
    get_str("path").or_else(|| get_str("name"))
}

/// The verdict of one [`compare`] run.
#[derive(Debug)]
pub struct GateOutcome {
    /// One line per compared metric (`path baseline fresh delta%`).
    pub lines: Vec<String>,
    /// Human-readable failures; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// `true` when no metric regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `fresh` against `baseline`: every time-like baseline metric
/// must exist in `fresh` and stay within `max_regress_pct` percent above
/// its baseline value, and every baseline `true` boolean must stay
/// `true`.
#[must_use]
pub fn compare(baseline: &Json, fresh: &Json, max_regress_pct: f64) -> GateOutcome {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (path, metric) in &base {
        match metric {
            Metric::Num(base_val) => {
                if !is_time_key(path) {
                    continue;
                }
                let Some(Metric::Num(new_val)) = new.get(path) else {
                    failures.push(format!("{path}: present in baseline, missing in fresh"));
                    continue;
                };
                let delta_pct = if *base_val > 0.0 {
                    (new_val - base_val) / base_val * 100.0
                } else {
                    0.0
                };
                let over = delta_pct > max_regress_pct;
                lines.push(format!(
                    "{path}: {base_val} -> {new_val} ({delta_pct:+.1}%){}",
                    if over { "  [REGRESSION]" } else { "" }
                ));
                if over {
                    failures.push(format!(
                        "{path}: regressed {delta_pct:+.1}% (limit +{max_regress_pct:.0}%)"
                    ));
                }
            }
            Metric::Bool(true) => match new.get(path) {
                Some(Metric::Bool(true)) => {}
                Some(Metric::Bool(false)) => {
                    failures.push(format!("{path}: was true in baseline, now false"));
                }
                _ => failures.push(format!("{path}: boolean missing in fresh")),
            },
            Metric::Bool(false) => {}
        }
    }
    GateOutcome { lines, failures }
}

/// Multiplies every time-like numeric leaf by `factor`, in place — the
/// synthetic-regression negative control.
pub fn scale_times(json: &mut Json, factor: f64) {
    fn walk(json: &mut Json, key: &str, factor: f64) {
        match json {
            Json::Num(x) if is_time_key(key) => *x *= factor,
            Json::Obj(fields) => {
                for (k, v) in fields {
                    walk(v, k, factor);
                }
            }
            Json::Arr(items) => {
                for item in items {
                    walk(item, key, factor);
                }
            }
            _ => {}
        }
    }
    walk(json, "", factor);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "bench": "demo", "cores": 1,
      "pool": {"reused_gt_spawned": true},
      "telemetry": {"serial_spans": [{"name": "world.drive", "count": 6, "total_ns": 1000}]},
      "rows": [
        {"group": "seed_batch", "n": 64, "serial_ms": 2.0, "parallel_ms": 1.0, "identical": true},
        {"group": "seed_batch", "n": 256, "serial_ms": 8.0, "parallel_ms": 4.0, "identical": true}
      ]
    }"#;

    #[test]
    fn parse_and_flatten_label_rows_by_group() {
        let json = parse_json(SAMPLE).unwrap();
        let flat = flatten(&json);
        assert_eq!(
            flat.get("rows.seed_batch[n=64].serial_ms"),
            Some(&Metric::Num(2.0))
        );
        assert_eq!(
            flat.get("telemetry.serial_spans.world.drive.total_ns"),
            Some(&Metric::Num(1000.0))
        );
        assert_eq!(
            flat.get("pool.reused_gt_spawned"),
            Some(&Metric::Bool(true))
        );
    }

    #[test]
    fn self_compare_passes() {
        let json = parse_json(SAMPLE).unwrap();
        let outcome = compare(&json, &json, 25.0);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(!outcome.lines.is_empty());
    }

    #[test]
    fn scaled_compare_fails() {
        let baseline = parse_json(SAMPLE).unwrap();
        let mut slow = baseline.clone();
        scale_times(&mut slow, 1.5);
        let outcome = compare(&baseline, &slow, 25.0);
        assert!(!outcome.passed());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("serial_ms") && f.contains("+50.0%")));
        // Non-time metrics (count) are untouched by scaling.
        let flat = flatten(&slow);
        assert_eq!(
            flat.get("telemetry.serial_spans.world.drive.count"),
            Some(&Metric::Num(6.0))
        );
        assert_eq!(
            flat.get("telemetry.serial_spans.world.drive.total_ns"),
            Some(&Metric::Num(1500.0))
        );
    }

    #[test]
    fn speedups_within_tolerance_pass() {
        let baseline = parse_json(SAMPLE).unwrap();
        let mut slightly = baseline.clone();
        scale_times(&mut slightly, 1.10);
        assert!(compare(&baseline, &slightly, 25.0).passed());
        // Getting *faster* is never a failure.
        let mut faster = baseline.clone();
        scale_times(&mut faster, 0.5);
        assert!(compare(&baseline, &faster, 25.0).passed());
    }

    #[test]
    fn missing_metric_and_flipped_boolean_fail() {
        let baseline = parse_json(SAMPLE).unwrap();
        let fresh = parse_json(
            r#"{"rows": [{"group": "seed_batch", "n": 64, "serial_ms": 2.0, "identical": false}]}"#,
        )
        .unwrap();
        let outcome = compare(&baseline, &fresh, 25.0);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("missing in fresh")));
        assert!(outcome.failures.iter().any(|f| f.contains("now false")));
    }

    #[test]
    fn round_trips_through_to_string() {
        let json = parse_json(SAMPLE).unwrap();
        let text = to_string(&json);
        assert_eq!(parse_json(&text).unwrap(), json);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_json("{\"a\": ").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("").is_err());
    }
}
