//! In-tree time benches guarding the simulator's performance.
//!
//! These are *performance* benches (the experiment harnesses live in
//! `src/bin/`): engine round throughput, SynRan round cost, coin-game
//! hide-set search, valency estimation, and the serial-vs-parallel
//! valency comparison. They run on the dependency-free timing loop in
//! [`synran_bench::harness`] (`harness = false` in Cargo.toml).
//!
//! Usage (via `cargo bench`, which passes `--bench` to the binary):
//!
//! ```text
//! cargo bench -p synran-bench --bench perf             # every group
//! cargo bench -p synran-bench --bench perf -- valency  # name filter
//! cargo bench -p synran-bench --bench perf -- --quick  # smoke profile
//! ```
//!
//! Without `--bench` (e.g. when `cargo test` executes the target) the
//! binary exits immediately so the test suite stays fast.

use synran_adversary::{estimate_valency, Balancer, ProbeSet};
use synran_bench::harness::{Bencher, Measurement};
use synran_coin::{CombinedHider, ExhaustiveHider, GreedyHider, HideSearch, MajorityGame, Outcome};
use synran_core::{ConsensusProtocol, SynRan};
use synran_sim::testing::CountDown;
use synran_sim::{parallel, Bit, Passive, SimConfig, SimRng, Telemetry, TelemetryMode, World};

/// Runs `f` and prints its measurement when `name` passes the filter.
fn run(b: &Bencher, filter: &[String], name: &str, f: impl FnMut()) {
    if !filter.is_empty() && !filter.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let m: Measurement = b.bench(name, f);
    println!("{}", m.render());
}

fn bench_engine_rounds(b: &Bencher, filter: &[String]) {
    for n in [64usize, 256, 1024] {
        run(b, filter, &format!("engine_rounds/broadcast/{n}"), || {
            let mut world = World::new(SimConfig::new(n).seed(1), |_| CountDown::new(10, Bit::One))
                .expect("valid config");
            world.run(&mut Passive).expect("run");
        });
    }
}

fn bench_synran(b: &Bencher, filter: &[String]) {
    for n in [64usize, 256] {
        let protocol = SynRan::new();
        run(b, filter, &format!("synran_run/passive_split/{n}"), || {
            let mut world = World::new(SimConfig::new(n).seed(2), |pid| {
                protocol.spawn(pid, n, Bit::from(pid.index() < n / 2))
            })
            .expect("valid config");
            world.run(&mut Passive).expect("run");
        });
        run(b, filter, &format!("synran_run/balancer_split/{n}"), || {
            let mut world = World::new(
                SimConfig::new(n).faults(n - 1).seed(2).max_rounds(100_000),
                |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
            )
            .expect("valid config");
            world.run(&mut Balancer::unbounded()).expect("run");
        });
    }
}

fn bench_coin_search(b: &Bencher, filter: &[String]) {
    let mut rng = SimRng::new(3);
    for n in [16usize, 64, 256] {
        let game = MajorityGame::new(n);
        let values: Vec<u32> = (0..n).map(|_| rng.bit().as_u8().into()).collect();
        let t = (n as f64).sqrt().ceil() as usize * 2;
        run(b, filter, &format!("coin_search/greedy/{n}"), || {
            std::hint::black_box(GreedyHider.force(&game, &values, t, Outcome(0)));
        });
        if n <= 16 {
            let searcher = ExhaustiveHider::default();
            run(b, filter, &format!("coin_search/exhaustive/{n}"), || {
                std::hint::black_box(searcher.force(&game, &values, 3, Outcome(0)));
            });
        }
        let searcher = CombinedHider::with_budget(1 << 12);
        run(b, filter, &format!("coin_search/combined/{n}"), || {
            std::hint::black_box(searcher.force(&game, &values, t, Outcome(1)));
        });
    }
}

/// Builds the phase-A'd world the valency benches probe.
fn valency_world(n: usize, threads: usize) -> World<synran_core::SynRanProcess> {
    let protocol = SynRan::new();
    let mut world = World::new(
        SimConfig::new(n)
            .faults(n / 2)
            .seed(4)
            .max_rounds(10_000)
            .threads(threads),
        |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .expect("valid config");
    world.phase_a().expect("phase A");
    world
}

fn bench_valency(b: &Bencher, filter: &[String]) {
    for n in [16usize, 32] {
        let world = valency_world(n, 1);
        let probes = ProbeSet::synran(n / 2);
        run(
            b,
            filter,
            &format!("valency_estimate/synran_probes/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
    }
}

/// Serial vs parallel `estimate_valency` on the same inputs. The results
/// are asserted byte-identical before timing, so the comparison is purely
/// about speed — determinism is a precondition, not a casualty.
fn bench_valency_parallel(b: &Bencher, filter: &[String]) {
    let cores = parallel::resolve_threads(parallel::AUTO_THREADS);
    let par_threads = cores.max(2);
    for n in [16usize, 32] {
        let serial_world = valency_world(n, 1);
        let parallel_world = valency_world(n, par_threads);
        let probes = ProbeSet::synran(n / 2);
        let a = estimate_valency(&serial_world, &probes, 4, 40, 5).expect("estimate");
        let c = estimate_valency(&parallel_world, &probes, 4, 40, 5).expect("estimate");
        assert_eq!(a, c, "parallel estimate diverged from serial at n={n}");
        run(
            b,
            filter,
            &format!("valency_estimate_parallel/threads_1/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&serial_world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
        run(
            b,
            filter,
            &format!("valency_estimate_parallel/threads_{par_threads}/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&parallel_world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
    }
}

/// Telemetry overhead guard: the same fixed workload (a SynRan run under
/// the unbounded balancer at n = 64, fresh hub per iteration) measured
/// with telemetry off, counters-only, and full spans. Telemetry is meant
/// to be observe-only in *time* as well as in results; the documented
/// bound is ~5% overhead on the fastest iteration, asserted here so a
/// regression fails `cargo bench` loudly. The ratio compares `min_ns`
/// (the least noisy statistic the harness reports).
fn bench_telemetry_overhead(b: &Bencher, filter: &[String]) {
    const OVERHEAD_BOUND: f64 = 1.05;
    let name = "telemetry_overhead/balancer_split/64";
    if !filter.is_empty() && !filter.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let n = 64usize;
    let protocol = SynRan::new();
    let workload = |mode: TelemetryMode| {
        let protocol = &protocol;
        move || {
            let mut world = World::new(
                SimConfig::new(n).faults(n - 1).seed(2).max_rounds(100_000),
                |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
            )
            .expect("valid config");
            world.set_telemetry(Telemetry::new(mode));
            std::hint::black_box(world.run(&mut Balancer::unbounded()).expect("run"));
        }
    };
    let off = b.bench(format!("{name}/off"), workload(TelemetryMode::Off));
    println!("{}", off.render());
    let counters = b.bench(
        format!("{name}/counters"),
        workload(TelemetryMode::Counters),
    );
    println!("{}", counters.render());
    let spans = b.bench(format!("{name}/spans"), workload(TelemetryMode::Spans));
    println!("{}", spans.render());
    let counters_ratio = counters.min_ns / off.min_ns;
    let spans_ratio = spans.min_ns / off.min_ns;
    println!(
        "telemetry overhead (min over {} iters): counters {counters_ratio:.3}x, \
         spans {spans_ratio:.3}x (bound {OVERHEAD_BOUND}x)",
        off.iters
    );
    assert!(
        counters_ratio < OVERHEAD_BOUND,
        "counters-mode telemetry overhead {counters_ratio:.3}x exceeds the {OVERHEAD_BOUND}x bound"
    );
    assert!(
        spans_ratio < OVERHEAD_BOUND,
        "spans-mode telemetry overhead {spans_ratio:.3}x exceeds the {OVERHEAD_BOUND}x bound"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Cargo passes `--bench` under `cargo bench`; under `cargo test` the
    // target runs without it, and we skip the (slow) measurements.
    if !args.iter().any(|a| a == "--bench") {
        println!("perf: pass --bench (i.e. run via `cargo bench`) to measure");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let b = if quick {
        Bencher::quick()
    } else {
        Bencher::default()
    };

    bench_engine_rounds(&b, &filter);
    bench_synran(&b, &filter);
    bench_coin_search(&b, &filter);
    bench_valency(&b, &filter);
    bench_valency_parallel(&b, &filter);
    bench_telemetry_overhead(&b, &filter);
}
