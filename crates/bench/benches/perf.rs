//! Criterion time benches guarding the simulator's performance.
//!
//! These are *performance* benches (the experiment harnesses live in
//! `src/bin/`): engine round throughput, SynRan round cost, coin-game
//! hide-set search, and valency estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use synran_adversary::{estimate_valency, Balancer, ProbeSet};
use synran_coin::{
    CombinedHider, ExhaustiveHider, GreedyHider, HideSearch, MajorityGame, Outcome,
};
use synran_core::{ConsensusProtocol, SynRan};
use synran_sim::{Bit, Passive, SimConfig, SimRng, World};
use synran_sim::testing::CountDown;

fn bench_engine_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("broadcast", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = World::new(SimConfig::new(n).seed(1), |_| {
                    CountDown::new(10, Bit::One)
                })
                .expect("valid config");
                world.run(&mut Passive).expect("run")
            });
        });
    }
    group.finish();
}

fn bench_synran(c: &mut Criterion) {
    let mut group = c.benchmark_group("synran_run");
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("passive_split", n), &n, |b, &n| {
            let protocol = SynRan::new();
            b.iter(|| {
                let mut world = World::new(SimConfig::new(n).seed(2), |pid| {
                    protocol.spawn(pid, n, Bit::from(pid.index() < n / 2))
                })
                .expect("valid config");
                world.run(&mut Passive).expect("run")
            });
        });
        group.bench_with_input(BenchmarkId::new("balancer_split", n), &n, |b, &n| {
            let protocol = SynRan::new();
            b.iter(|| {
                let mut world = World::new(
                    SimConfig::new(n).faults(n - 1).seed(2).max_rounds(100_000),
                    |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
                )
                .expect("valid config");
                world.run(&mut Balancer::unbounded()).expect("run")
            });
        });
    }
    group.finish();
}

fn bench_coin_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_search");
    let mut rng = SimRng::new(3);
    for n in [16usize, 64, 256] {
        let game = MajorityGame::new(n);
        let values: Vec<u32> = (0..n).map(|_| rng.bit().as_u8().into()).collect();
        let t = (n as f64).sqrt().ceil() as usize * 2;
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| GreedyHider.force(&game, &values, t, Outcome(0)));
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
                let searcher = ExhaustiveHider::default();
                b.iter(|| searcher.force(&game, &values, 3, Outcome(0)));
            });
        }
        group.bench_with_input(BenchmarkId::new("combined", n), &n, |b, _| {
            let searcher = CombinedHider::with_budget(1 << 12);
            b.iter(|| searcher.force(&game, &values, t, Outcome(1)));
        });
    }
    group.finish();
}

fn bench_valency(c: &mut Criterion) {
    let mut group = c.benchmark_group("valency_estimate");
    group.sample_size(10);
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::new("synran_probes", n), &n, |b, &n| {
            let protocol = SynRan::new();
            let mut world = World::new(
                SimConfig::new(n).faults(n / 2).seed(4).max_rounds(10_000),
                |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
            )
            .expect("valid config");
            world.phase_a().expect("phase A");
            let probes = ProbeSet::synran(n / 2);
            b.iter(|| estimate_valency(&world, &probes, 4, 40, 5).expect("estimate"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_rounds,
    bench_synran,
    bench_coin_search,
    bench_valency
);
criterion_main!(benches);
