//! In-tree time benches guarding the simulator's performance.
//!
//! These are *performance* benches (the experiment harnesses live in
//! `src/bin/`): engine round throughput, SynRan round cost, coin-game
//! hide-set search, valency estimation, and the serial-vs-parallel
//! valency comparison. They run on the dependency-free timing loop in
//! [`synran_bench::harness`] (`harness = false` in Cargo.toml).
//!
//! Usage (via `cargo bench`, which passes `--bench` to the binary):
//!
//! ```text
//! cargo bench -p synran-bench --bench perf             # every group
//! cargo bench -p synran-bench --bench perf -- valency  # name filter
//! cargo bench -p synran-bench --bench perf -- --quick  # smoke profile
//! ```
//!
//! Without `--bench` (e.g. when `cargo test` executes the target) the
//! binary exits immediately so the test suite stays fast.

use synran_adversary::{estimate_valency, Balancer, ProbeSet};
use synran_bench::harness::{Bencher, Measurement};
use synran_coin::{CombinedHider, ExhaustiveHider, GreedyHider, HideSearch, MajorityGame, Outcome};
use synran_core::{ConsensusProtocol, SynRan};
use synran_sim::testing::CountDown;
use synran_sim::{parallel, Bit, Passive, SimConfig, SimRng, World};

/// Runs `f` and prints its measurement when `name` passes the filter.
fn run(b: &Bencher, filter: &[String], name: &str, f: impl FnMut()) {
    if !filter.is_empty() && !filter.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let m: Measurement = b.bench(name, f);
    println!("{}", m.render());
}

fn bench_engine_rounds(b: &Bencher, filter: &[String]) {
    for n in [64usize, 256, 1024] {
        run(b, filter, &format!("engine_rounds/broadcast/{n}"), || {
            let mut world = World::new(SimConfig::new(n).seed(1), |_| CountDown::new(10, Bit::One))
                .expect("valid config");
            world.run(&mut Passive).expect("run");
        });
    }
}

fn bench_synran(b: &Bencher, filter: &[String]) {
    for n in [64usize, 256] {
        let protocol = SynRan::new();
        run(b, filter, &format!("synran_run/passive_split/{n}"), || {
            let mut world = World::new(SimConfig::new(n).seed(2), |pid| {
                protocol.spawn(pid, n, Bit::from(pid.index() < n / 2))
            })
            .expect("valid config");
            world.run(&mut Passive).expect("run");
        });
        run(b, filter, &format!("synran_run/balancer_split/{n}"), || {
            let mut world = World::new(
                SimConfig::new(n).faults(n - 1).seed(2).max_rounds(100_000),
                |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
            )
            .expect("valid config");
            world.run(&mut Balancer::unbounded()).expect("run");
        });
    }
}

fn bench_coin_search(b: &Bencher, filter: &[String]) {
    let mut rng = SimRng::new(3);
    for n in [16usize, 64, 256] {
        let game = MajorityGame::new(n);
        let values: Vec<u32> = (0..n).map(|_| rng.bit().as_u8().into()).collect();
        let t = (n as f64).sqrt().ceil() as usize * 2;
        run(b, filter, &format!("coin_search/greedy/{n}"), || {
            std::hint::black_box(GreedyHider.force(&game, &values, t, Outcome(0)));
        });
        if n <= 16 {
            let searcher = ExhaustiveHider::default();
            run(b, filter, &format!("coin_search/exhaustive/{n}"), || {
                std::hint::black_box(searcher.force(&game, &values, 3, Outcome(0)));
            });
        }
        let searcher = CombinedHider::with_budget(1 << 12);
        run(b, filter, &format!("coin_search/combined/{n}"), || {
            std::hint::black_box(searcher.force(&game, &values, t, Outcome(1)));
        });
    }
}

/// Builds the phase-A'd world the valency benches probe.
fn valency_world(n: usize, threads: usize) -> World<synran_core::SynRanProcess> {
    let protocol = SynRan::new();
    let mut world = World::new(
        SimConfig::new(n)
            .faults(n / 2)
            .seed(4)
            .max_rounds(10_000)
            .threads(threads),
        |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .expect("valid config");
    world.phase_a().expect("phase A");
    world
}

fn bench_valency(b: &Bencher, filter: &[String]) {
    for n in [16usize, 32] {
        let world = valency_world(n, 1);
        let probes = ProbeSet::synran(n / 2);
        run(
            b,
            filter,
            &format!("valency_estimate/synran_probes/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
    }
}

/// Serial vs parallel `estimate_valency` on the same inputs. The results
/// are asserted byte-identical before timing, so the comparison is purely
/// about speed — determinism is a precondition, not a casualty.
fn bench_valency_parallel(b: &Bencher, filter: &[String]) {
    let cores = parallel::resolve_threads(parallel::AUTO_THREADS);
    let par_threads = cores.max(2);
    for n in [16usize, 32] {
        let serial_world = valency_world(n, 1);
        let parallel_world = valency_world(n, par_threads);
        let probes = ProbeSet::synran(n / 2);
        let a = estimate_valency(&serial_world, &probes, 4, 40, 5).expect("estimate");
        let c = estimate_valency(&parallel_world, &probes, 4, 40, 5).expect("estimate");
        assert_eq!(a, c, "parallel estimate diverged from serial at n={n}");
        run(
            b,
            filter,
            &format!("valency_estimate_parallel/threads_1/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&serial_world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
        run(
            b,
            filter,
            &format!("valency_estimate_parallel/threads_{par_threads}/{n}"),
            || {
                std::hint::black_box(
                    estimate_valency(&parallel_world, &probes, 4, 40, 5).expect("estimate"),
                );
            },
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Cargo passes `--bench` under `cargo bench`; under `cargo test` the
    // target runs without it, and we skip the (slow) measurements.
    if !args.iter().any(|a| a == "--bench") {
        println!("perf: pass --bench (i.e. run via `cargo bench`) to measure");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let b = if quick {
        Bencher::quick()
    } else {
        Bencher::default()
    };

    bench_engine_rounds(&b, &filter);
    bench_synran(&b, &filter);
    bench_coin_search(&b, &filter);
    bench_valency(&b, &filter);
    bench_valency_parallel(&b, &filter);
}
