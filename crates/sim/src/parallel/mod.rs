//! Deterministic parallel fan-out for fork evaluation and seed batches.
//!
//! The valency estimator and the batch runner both evaluate many
//! *independent* continuations of a seeded computation: every unit of work
//! is a pure function of its index (the fork seed is derived from the index
//! through [`SimRng::derive`](crate::SimRng::derive), never from shared
//! state). That makes the fan-out embarrassingly parallel **and** lets us
//! promise something stronger than most thread pools do:
//!
//! > **Determinism contract.** For a pure `f`, `par_map(threads, total, f)`
//! > returns exactly `(0..total).map(f).collect()` — bit for bit — for
//! > *every* `threads` value. Worker count changes wall-clock time, never
//! > results.
//!
//! The contract holds because results are written into the output slot of
//! their *index*, not in completion order, and because nothing about the
//! work depends on which worker runs it. Reductions over the results must
//! preserve this: callers fold the returned `Vec` left-to-right (floating
//! point addition is not associative, so summing in completion order would
//! break replay determinism).
//!
//! # The persistent pool
//!
//! Fan-outs run on a process-wide [`WorkerPool`] of long-lived parked
//! threads ([`global_pool`]) instead of spawning fresh
//! [`std::thread::scope`] threads per call. The valency estimator calls
//! `par_map` hundreds of times per adversary decision; at ~100 µs per
//! thread spawn the old per-call scope threads cost more than the forks
//! they evaluated. Pool threads are spawned lazily on first use, parked on
//! a condvar between dispatches, and joined when the pool is dropped (the
//! global pool lives for the process).
//!
//! Work is handed to the pool as `workers` contiguous index chunks of
//! `ceil(total / workers)` — the split is a pure function of
//! `(total, threads)`, so chunk boundaries (and therefore results and
//! per-worker telemetry attribution) never depend on scheduling. Chunks
//! are *claimed*, not assigned: the dispatching thread and the pool
//! helpers race to claim chunk indices, each chunk writes only its own
//! output slots, and the dispatcher blocks until every claimed chunk has
//! finished. Which thread ran a chunk is unobservable; *that* chunk `w`
//! ran indices `[w·chunk, min((w+1)·chunk, total))` is guaranteed.

pub mod cohort;

use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::{Adversary, Process, RunReport, SimError, Telemetry, World};

/// Sentinel for "use all available parallelism" in thread-count knobs.
pub const AUTO_THREADS: usize = 0;

/// Minimum work units per spawned worker.
///
/// Waking a parked pool thread costs more than evaluating a handful of
/// small forks, so tiny fan-outs (the `n = 64` regime, estimator probes
/// with few samples) used to run *slower* parallel than serial. Capping
/// workers at `ceil(total / MIN_CHUNK)` makes small batches collapse
/// toward the inline path while leaving large batches' chunking unchanged
/// — and the worker count stays a pure function of `(total, threads)`,
/// preserving the determinism contract.
pub const MIN_CHUNK: usize = 4;

/// This machine's available parallelism, probed once per process.
fn machine_parallelism() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Resolves a requested thread count: [`AUTO_THREADS`] (`0`) becomes the
/// machine's available parallelism, and explicit requests are clamped to
/// it — oversubscribing a fan-out of CPU-bound chunks only adds context
/// switches, never throughput. The clamp floor is 2 so that explicitly
/// requesting parallelism keeps the parallel path (and its tests)
/// exercised even on single-core machines; the determinism contract makes
/// the floor observationally free.
///
/// # Examples
///
/// ```
/// use synran_sim::parallel::resolve_threads;
/// assert_eq!(resolve_threads(1), 1);
/// assert!(resolve_threads(0) >= 1);
/// // Oversubscription clamps to the machine, never below 2.
/// let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
/// assert_eq!(resolve_threads(1_000_000), cores.max(2));
/// ```
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    let available = machine_parallelism();
    if requested == AUTO_THREADS {
        available
    } else {
        requested.min(available.max(2))
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Cumulative scheduling counters for one [`WorkerPool`].
///
/// The same values are recorded as `pool.spawned` / `pool.reused` /
/// `pool.tasks` telemetry counters on every dispatch (observe-only, like
/// the engine's `round.deliver.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Helper threads created (lazily, by the first dispatch needing them).
    pub spawned: u64,
    /// Helper-thread engagements that re-used an already-running thread.
    pub reused: u64,
    /// Chunks dispatched through the pool (excludes inline fallbacks).
    pub tasks: u64,
    /// Dispatches that ran entirely inline because the pool was busy
    /// (nested fan-out) — results are identical, only scheduling differs.
    pub inline: u64,
}

/// Type-erased pointer to the task closure of the dispatch in flight.
///
/// The pointee's borrow lifetime is erased so parked helper threads (which
/// outlive any one dispatch) can hold it; see the `SAFETY` notes in
/// [`WorkerPool::run`] for why every dereference happens while the
/// dispatching call is still on the stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (callable through `&` from any thread),
// and `WorkerPool::run` keeps it alive — it does not return until every
// claimed chunk has finished running.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

/// Shared pool state: the published job and the chunk-claim cursor.
struct PoolState {
    /// The dispatch in flight, if any.
    job: Option<JobPtr>,
    /// Next unclaimed chunk index.
    next: usize,
    /// One past the last chunk index of the current job.
    end: usize,
    /// Chunks claimed but not yet finished.
    running: usize,
    /// Panic payloads carried out of chunks, tagged with the chunk index.
    panics: Vec<(usize, Box<dyn std::any::Any + Send>)>,
    /// Set by [`WorkerPool::drop`]; parked helpers exit when they see it.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Helpers park here between dispatches.
    work_cv: Condvar,
    /// The dispatcher parks here waiting for claimed chunks to finish.
    done_cv: Condvar,
}

/// Tasks never panic while holding the state lock (chunk bodies run under
/// `catch_unwind` *outside* it), so a poisoned mutex carries no broken
/// invariant — recover the guard.
fn lock_state(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A persistent pool of parked worker threads for deterministic fan-out.
///
/// Threads are spawned lazily (the pool starts empty and grows to the
/// largest `workers - 1` any dispatch has needed), parked between
/// dispatches, and joined on [`Drop`]. All `par_map` entry points share
/// one process-wide instance ([`global_pool`]); separate instances exist
/// for tests that need isolated [`PoolStats`].
///
/// One dispatch runs at a time. If a dispatch arrives while another is in
/// flight — a work item fanning out again, or two instrumented worlds
/// estimating concurrently — it falls back to running its chunks inline on
/// the caller, which is deterministically identical (chunk → output-slot
/// mapping is fixed) and cannot deadlock.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Dispatch token + helper-thread handles. Held (via `try_lock`) for
    /// the whole of [`WorkerPool::run`], serialising dispatches.
    crew: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicU64,
    reused: AtomicU64,
    tasks: AtomicU64,
    inline: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; threads are spawned on first use.
    #[must_use]
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    job: None,
                    next: 0,
                    end: 0,
                    running: 0,
                    panics: Vec::new(),
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            crew: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            inline: AtomicU64::new(0),
        }
    }

    /// Cumulative scheduling counters since the pool was created.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
        }
    }

    /// Helper threads currently alive.
    #[must_use]
    pub fn threads_alive(&self) -> usize {
        self.crew
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Runs `task(0), …, task(chunks - 1)`, each exactly once, spreading
    /// chunks across the caller and up to `chunks - 1` pool helpers.
    /// Returns only after every chunk has finished. Propagates the panic
    /// of the lowest panicking chunk index.
    fn run(&self, telemetry: &Telemetry, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(chunks >= 2, "single-chunk dispatches run inline");
        let Ok(mut crew) = self.crew.try_lock() else {
            // Pool busy (nested or concurrent fan-out): run inline. The
            // chunk → slot mapping is fixed, so results are identical.
            self.inline.fetch_add(1, Ordering::Relaxed);
            run_chunks_inline(chunks, task);
            return;
        };

        // Lazily grow the crew. A failed spawn degrades gracefully: the
        // claim loop below guarantees the caller picks up any chunk no
        // helper claims.
        let want = chunks - 1;
        let before = crew.len().min(want);
        while crew.len() < want {
            let shared = Arc::clone(&self.shared);
            let name = format!("synran-worker-{}", crew.len());
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => crew.push(handle),
                Err(_) => break,
            }
        }
        let newly = (crew.len().min(want) - before) as u64;
        self.spawned.fetch_add(newly, Ordering::Relaxed);
        self.reused.fetch_add(before as u64, Ordering::Relaxed);
        self.tasks.fetch_add(chunks as u64, Ordering::Relaxed);
        // Zero increments are skipped so the counters only materialise for
        // dispatches that actually spawned / re-used (mirrors how the
        // engine's `round.deliver.*` counters behave).
        if newly > 0 {
            telemetry.incr("pool.spawned", newly);
        }
        if before > 0 {
            telemetry.incr("pool.reused", before as u64);
        }
        telemetry.incr("pool.tasks", chunks as u64);

        // Publish the job and wake the helpers.
        {
            let mut st = lock_state(&self.shared);
            debug_assert!(st.job.is_none() && st.running == 0);
            st.job = Some(erase_task(task));
            st.next = 0;
            st.end = chunks;
            self.shared.work_cv.notify_all();
        }
        // The caller claims chunks alongside the helpers: progress never
        // depends on a helper actually existing or waking up.
        loop {
            let w = {
                let mut st = lock_state(&self.shared);
                if st.next >= st.end {
                    break;
                }
                let w = st.next;
                st.next += 1;
                st.running += 1;
                w
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| task(w)));
            let mut st = lock_state(&self.shared);
            if let Err(payload) = result {
                st.panics.push((w, payload));
            }
            st.running -= 1;
        }
        // Wait for the helpers' claimed chunks, then retire the job. From
        // here no thread holds the task pointer, so the borrow it erased
        // may end.
        let panics = {
            let mut st = lock_state(&self.shared);
            while st.running > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            std::mem::take(&mut st.panics)
        };
        drop(crew);
        if let Some((_, payload)) = panics.into_iter().min_by_key(|(w, _)| *w) {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        let crew = std::mem::take(self.crew.get_mut().unwrap_or_else(PoisonError::into_inner));
        for handle in crew {
            let _ = handle.join();
        }
    }
}

/// Inline fallback: the caller runs every chunk itself, in index order,
/// with the same lowest-chunk panic propagation as the pooled path.
fn run_chunks_inline(chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for w in 0..chunks {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(w))) {
            first_panic.get_or_insert(payload);
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
}

/// Erases the task borrow's lifetime so parked helpers can hold the
/// pointer across their `'static` thread bodies.
#[allow(unsafe_code)]
fn erase_task<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> JobPtr {
    // SAFETY: lifetime-only transmute between identical fat-pointer
    // layouts. `WorkerPool::run` publishes the pointer after this call and
    // blocks until `running == 0` with no chunk left to claim before
    // returning, so the pointee strictly outlives every dereference.
    let erased: &'static (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(task) };
    JobPtr(std::ptr::from_ref(erased))
}

/// Invokes the published job on chunk `w`.
#[allow(unsafe_code)]
fn invoke(job: JobPtr, w: usize) {
    // SAFETY: `job` was published by a `WorkerPool::run` still blocked in
    // its wait loop — this worker's claim is counted in `running`, which
    // the dispatcher waits on before letting the closure's borrow end.
    let task = unsafe { &*job.0 };
    task(w);
}

/// Body of a parked helper thread: claim chunks while a job is published,
/// park on `work_cv` otherwise, exit on shutdown.
fn worker_loop(shared: &PoolShared) {
    loop {
        let (job, w) = {
            let mut st = lock_state(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.job.is_some() && st.next < st.end {
                    break;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let w = st.next;
            st.next += 1;
            st.running += 1;
            (st.job.expect("checked above"), w)
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| invoke(job, w)));
        let mut st = lock_state(shared);
        if let Err(payload) = result {
            st.panics.push((w, payload));
        }
        st.running -= 1;
        if st.next >= st.end && st.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// The process-wide pool behind [`par_map`] and friends.
///
/// Created empty on first call; its threads live for the process (the
/// static is never dropped), parked between dispatches.
#[must_use]
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

/// Exports the global pool's cumulative [`WorkerPool::stats`] into
/// `telemetry` as **fill-if-absent** gauges, so a JSONL counter dump
/// carries `pool.spawned` / `pool.reused` / `pool.tasks` / `pool.inline`
/// even when no pooled batch ran against this handle (e.g. a serial run,
/// or a handle attached after the batches finished). Dispatch-time
/// increments already recorded on the handle always win — this never
/// overwrites them. Observe-only, like every other telemetry write.
pub fn export_pool_stats(telemetry: &Telemetry) {
    let stats = global_pool().stats();
    telemetry.set_if_absent("pool.spawned", stats.spawned);
    telemetry.set_if_absent("pool.reused", stats.reused);
    telemetry.set_if_absent("pool.tasks", stats.tasks);
    telemetry.set_if_absent("pool.inline", stats.inline);
}

// ---------------------------------------------------------------------------
// par_map entry points
// ---------------------------------------------------------------------------

/// Write handle into the output slots, shared by raw pointer so chunks on
/// different threads can fill their disjoint index ranges concurrently.
struct SlotWriter<T> {
    base: *mut Option<T>,
}

impl<T> Clone for SlotWriter<T> {
    fn clone(&self) -> SlotWriter<T> {
        *self
    }
}
impl<T> Copy for SlotWriter<T> {}

// SAFETY: `SlotWriter` is only used by `par_map_pooled`, whose chunks
// write *disjoint* index ranges of a buffer that outlives the dispatch;
// sending/sharing the pointer across the pool's threads is sound because
// no two threads ever touch the same slot.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SlotWriter<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the buffer `base` points into, the buffer
    /// must outlive the call, and no other thread may access slot `i`
    /// concurrently.
    #[allow(unsafe_code)]
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: guaranteed by the caller per the contract above.
        unsafe { *self.base.add(i) = Some(value) };
    }
}

/// Maps `f` over `0..total` on up to `threads` pool workers.
///
/// Results are identical to the serial `(0..total).map(f)` regardless of
/// `threads` (see the module docs for the contract). `threads <= 1` runs
/// inline without touching the pool.
///
/// # Panics
///
/// Propagates a panic from `f` (the dispatch joins all chunks first).
pub fn par_map<T, F>(threads: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_in(&Telemetry::off(), threads, total, f)
}

/// [`par_map`] with telemetry: the fan-out is wrapped in a
/// `parallel.par_map` span, each chunk records a `parallel.worker` span
/// attributed to its chunk index, the `parallel.tasks` counter accumulates
/// `total`, and pooled dispatches record the `pool.*` scheduling counters.
///
/// Telemetry is observe-only — results are identical to [`par_map`] (and
/// to the serial map) for every `telemetry` handle and thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the dispatch joins all chunks first).
pub fn par_map_in<T, F>(telemetry: &Telemetry, threads: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_pooled(global_pool(), telemetry, threads, total, f)
}

/// [`par_map_in`] on an explicit [`WorkerPool`] instead of the global one.
///
/// Exists so tests (and benchmarks isolating [`PoolStats`]) can run the
/// full pooled path against a private pool; production callers use the
/// [`global_pool`] via [`par_map_in`].
///
/// # Panics
///
/// Propagates a panic from `f` (the dispatch joins all chunks first).
pub fn par_map_pooled<T, F>(
    pool: &WorkerPool,
    telemetry: &Telemetry,
    threads: usize,
    total: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let _span = telemetry.span("parallel.par_map");
    telemetry.incr("parallel.tasks", total as u64);
    let workers = resolve_threads(threads).min(total.div_ceil(MIN_CHUNK));
    if workers <= 1 {
        let _worker = telemetry.worker_span("parallel.worker", 0);
        return (0..total).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let chunk = total.div_ceil(workers);
    let out = SlotWriter {
        base: slots.as_mut_ptr(),
    };
    // In spans mode, measure per-chunk busy time against the dispatch's
    // wall time for the `pool.utilization` histogram. Observe-only: the
    // clock reads never influence chunking or results.
    let track_util = telemetry.spans_enabled();
    let busy_ns: Vec<AtomicU64> = if track_util {
        (0..workers).map(|_| AtomicU64::new(0)).collect()
    } else {
        Vec::new()
    };
    let dispatch_start = Instant::now();
    pool.run(telemetry, workers, &|w| {
        #[allow(clippy::cast_possible_truncation)]
        let _worker = telemetry.worker_span("parallel.worker", w as u32);
        let chunk_start = track_util.then(Instant::now);
        let lo = w * chunk;
        let hi = total.min(lo + chunk);
        for i in lo..hi {
            let value = f(i);
            // SAFETY: `i` is in `[0, total)`; chunk ranges are disjoint,
            // and `slots` outlives `pool.run` (which joins every chunk
            // before returning).
            #[allow(unsafe_code)]
            unsafe {
                out.write(i, value);
            };
        }
        if let Some(start) = chunk_start {
            #[allow(clippy::cast_possible_truncation)]
            busy_ns[w].store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    });
    if track_util {
        #[allow(clippy::cast_possible_truncation)]
        let wall = (dispatch_start.elapsed().as_nanos() as u64).max(1);
        for busy in &busy_ns {
            let pct = busy.load(Ordering::Relaxed).saturating_mul(100) / wall;
            telemetry.observe("pool.utilization", pct.min(100));
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was assigned to exactly one chunk"))
        .collect()
}

/// Like [`par_map`] for fallible work: maps `f` over `0..total`, returning
/// the error of the **lowest failing index** (not the first to fail in wall
/// time) so error propagation is as deterministic as the results.
///
/// All indices are evaluated even when one fails — the work units are
/// independent, and aborting early would make the set of side effects (none
/// for pure `f`, but wall time and logs for instrumented ones) depend on
/// scheduling.
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
pub fn try_par_map<T, E, F>(threads: usize, total: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    try_par_map_in(&Telemetry::off(), threads, total, f)
}

/// [`try_par_map`] with telemetry, instrumented like [`par_map_in`].
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
pub fn try_par_map_in<T, E, F>(
    telemetry: &Telemetry,
    threads: usize,
    total: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(total);
    for result in par_map_in(telemetry, threads, total, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Forks `world` once per seed and evaluates each fork on the worker pool.
///
/// The canonical fork-evaluation primitive behind valency estimation. The
/// paused `world` is condensed once into a copy-on-write
/// [`WorldSnapshot`](crate::WorldSnapshot) (bounded at `horizon` rounds
/// past the pause point), every worker forks the snapshot with `seeds[i]`
/// — sharing the config and recycling round scratch through the
/// snapshot's pool instead of deep-cloning per fork — and `eval` consumes
/// the fork. Per the [module contract](self), results are identical for
/// every `threads` value.
///
/// # Errors
///
/// Returns the error of the lowest failing index.
pub fn fork_eval<P, T, E, F>(
    world: &World<P>,
    threads: usize,
    seeds: &[u64],
    horizon: u32,
    eval: F,
) -> Result<Vec<T>, E>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
    T: Send,
    E: Send,
    F: Fn(usize, World<P>) -> Result<T, E> + Sync,
{
    // Worker attribution comes from the parent world's handle; the forks
    // themselves are detached (see `World::fork`).
    let snapshot = world.snapshot_bounded(horizon);
    try_par_map_in(world.telemetry(), threads, seeds.len(), |i| {
        eval(i, snapshot.fork(seeds[i]))
    })
}

/// Convenience for the common "run each fork to completion under its own
/// adversary" shape: forks `world` per seed, builds an adversary with
/// `make_adversary(seed)`, drives the fork, and hands the outcome (the
/// consumed world's report, or the engine error) to `score`.
///
/// # Errors
///
/// Returns the error of the lowest failing index.
pub fn fork_run<P, A, T, E, FA, FS>(
    world: &World<P>,
    threads: usize,
    seeds: &[u64],
    horizon: u32,
    make_adversary: FA,
    score: FS,
) -> Result<Vec<T>, E>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
    A: Adversary<P>,
    T: Send,
    E: Send,
    FA: Fn(u64) -> A + Sync,
    FS: Fn(Result<RunReport, SimError>) -> Result<T, E> + Sync,
{
    fork_eval(world, threads, seeds, horizon, |i, mut fork| {
        let mut adversary = make_adversary(seeds[i]);
        let outcome = match fork.drive(&mut adversary) {
            Ok(()) => Ok(fork.into_report()),
            Err(e) => {
                fork.retire();
                Err(e)
            }
        };
        score(outcome)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Echo;
    use crate::{Bit, Passive, SimConfig};

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64, 97, 200] {
            let parallel = par_map(threads, 97, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(8, 1, |i| i), vec![0]);
        assert_eq!(par_map(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_par_map_reports_lowest_failing_index() {
        for threads in [1, 2, 8] {
            let r: Result<Vec<usize>, usize> =
                try_par_map(threads, 10, |i| if i % 3 == 2 { Err(i) } else { Ok(i) });
            assert_eq!(r, Err(2), "threads = {threads}");
        }
        let ok: Result<Vec<usize>, usize> = try_par_map(4, 5, Ok);
        assert_eq!(ok, Ok(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn par_map_in_is_observe_only_and_attributes_workers() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        let serial: Vec<u64> = (0..40).map(|i| (i as u64) * 3).collect();
        let telemetry = Telemetry::new(TelemetryMode::Spans);
        let instrumented = par_map_in(&telemetry, 4, 40, |i| (i as u64) * 3);
        assert_eq!(instrumented, serial);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("parallel.tasks"), Some(40));
        // Worker spans are attributed to chunk indices, one span per
        // chunk, whatever thread ran it. The chunk count follows the
        // resolve/clamp formula, so compute it rather than hard-coding.
        let expected = resolve_threads(4).min(40usize.div_ceil(MIN_CHUNK));
        let mut workers: Vec<u32> = snap
            .spans
            .iter()
            .filter(|s| s.name == "parallel.worker")
            .filter_map(|s| s.worker)
            .collect();
        workers.sort_unstable();
        let want: Vec<u32> = (0..expected as u32).collect();
        assert_eq!(workers, want, "one span per chunk, chunk-indexed");
        assert!(snap.spans.iter().any(|s| s.name == "parallel.par_map"));
    }

    #[test]
    fn pool_counters_are_recorded_on_pooled_dispatches() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        let pool = WorkerPool::new();
        let telemetry = Telemetry::new(TelemetryMode::Counters);
        let out = par_map_pooled(&pool, &telemetry, 2, 40, |i| i * 2);
        assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
        let snap = telemetry.snapshot();
        // First dispatch on a fresh pool: one helper spawned, none reused.
        assert_eq!(snap.counter("pool.spawned"), Some(1));
        assert_eq!(snap.counter("pool.reused"), None);
        assert_eq!(snap.counter("pool.tasks"), Some(2));
        assert_eq!(
            pool.stats(),
            PoolStats {
                spawned: 1,
                reused: 0,
                tasks: 2,
                inline: 0
            }
        );
    }

    #[test]
    fn pool_reuses_threads_across_dispatches() {
        let pool = WorkerPool::new();
        let telemetry = Telemetry::off();
        for round in 0..5 {
            let out = par_map_pooled(&pool, &telemetry, 2, 32, |i| i + round);
            assert_eq!(out, (0..32).map(|i| i + round).collect::<Vec<_>>());
        }
        let stats = pool.stats();
        assert_eq!(stats.spawned, 1, "helper spawned once, lazily");
        assert_eq!(stats.reused, 4, "then re-engaged on every dispatch");
        assert_eq!(stats.tasks, 10, "2 chunks x 5 dispatches");
        assert!(
            stats.reused > stats.spawned,
            "steady state re-uses more than it spawns"
        );
        assert_eq!(pool.threads_alive(), 1);
    }

    #[test]
    fn nested_dispatch_falls_back_inline_and_stays_deterministic() {
        let pool = WorkerPool::new();
        let telemetry = Telemetry::off();
        // Each outer work item fans out again on the same pool: the inner
        // dispatches must run inline (pool busy) with identical results.
        let out = par_map_pooled(&pool, &telemetry, 2, 8, |i| {
            par_map_pooled(&pool, &telemetry, 2, 8, move |j| i * 8 + j)
        });
        let want: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..8).map(|j| i * 8 + j).collect())
            .collect();
        assert_eq!(out, want);
        assert!(pool.stats().inline > 0, "inner dispatches ran inline");
    }

    #[test]
    fn pool_propagates_lowest_chunk_panic_and_survives() {
        let pool = WorkerPool::new();
        let telemetry = Telemetry::off();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_pooled(&pool, &telemetry, 2, 16, |i| {
                assert!(i != 3 && i != 12, "boom at {i}");
                i
            })
        }));
        assert!(result.is_err(), "panic must propagate to the dispatcher");
        // The pool is still usable afterwards: no wedged state, no dead
        // helpers, and results are correct.
        let out = par_map_pooled(&pool, &telemetry, 2, 16, |i| i);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_a_pool_joins_its_threads() {
        let pool = WorkerPool::new();
        let out = par_map_pooled(&pool, &Telemetry::off(), 2, 32, |i| i);
        assert_eq!(out.len(), 32);
        assert_eq!(pool.threads_alive(), 1);
        drop(pool); // must not hang or leak the parked helper
    }

    #[test]
    fn tiny_batches_collapse_to_one_worker() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        // total ≤ MIN_CHUNK: any thread count runs inline (one worker span,
        // worker 0) and results still match serial.
        for threads in [2, 8, 64] {
            let telemetry = Telemetry::new(TelemetryMode::Spans);
            let out = par_map_in(&telemetry, threads, MIN_CHUNK, |i| i * 7);
            assert_eq!(out, vec![0, 7, 14, 21], "threads = {threads}");
            let snap = telemetry.snapshot();
            let workers: Vec<u32> = snap
                .spans
                .iter()
                .filter(|s| s.name == "parallel.worker")
                .filter_map(|s| s.worker)
                .collect();
            assert_eq!(workers, vec![0], "threads = {threads}: expected inline run");
        }
        // Just past the threshold: exactly two workers, same results.
        let telemetry = Telemetry::new(TelemetryMode::Spans);
        let out = par_map_in(&telemetry, 64, MIN_CHUNK + 1, |i| i * 7);
        assert_eq!(out, (0..=MIN_CHUNK).map(|i| i * 7).collect::<Vec<_>>());
        let spans = telemetry.snapshot();
        let workers = spans
            .spans
            .iter()
            .filter(|s| s.name == "parallel.worker")
            .count();
        assert_eq!(workers, 2);
    }

    #[test]
    fn resolve_threads_contract() {
        let available = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(AUTO_THREADS) >= 1);
        assert_eq!(resolve_threads(AUTO_THREADS), available);
        // Explicit requests never exceed the machine (floor 2), and small
        // requests pass through untouched.
        assert_eq!(resolve_threads(usize::MAX), available.max(2));
        assert_eq!(resolve_threads(2), 2);
        assert!(resolve_threads(7) <= 7);
        assert!(resolve_threads(7) <= available.max(2));
    }

    #[test]
    fn fork_eval_is_thread_count_invariant() {
        let world = World::new(SimConfig::new(6).seed(11), |pid| {
            Echo::new(Bit::from(pid.index() % 2 == 0))
        })
        .unwrap();
        let seeds: Vec<u64> = (0..13).map(|i| 1000 + i).collect();
        let run = |threads: usize| -> Vec<Vec<Option<Bit>>> {
            fork_run(
                &world,
                threads,
                &seeds,
                50,
                |_| Passive,
                |outcome| Ok::<_, SimError>(outcome.unwrap().decisions().to_vec()),
            )
            .unwrap()
        };
        let baseline = run(1);
        for threads in [2, 5, 13] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }
}
