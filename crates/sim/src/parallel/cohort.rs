//! Lockstep cohort rollout: round-major fork evaluation for the
//! Monte-Carlo valency hot path.
//!
//! [`fork_eval`](super::fork_eval) drives each fork of a snapshot to
//! completion independently: fork, run to decision or horizon, retire,
//! next fork. The cohort engine drives **all forks of one snapshot in
//! lockstep, round-major**: one shared [`WorldSnapshot`], one pass per
//! round across the whole cohort, a word-packed [`BitPlane`] active set
//! retiring decided and horizon-hit worlds as soon as their outcome is
//! known, and one recycled scratch arena per lane instead of per-fork
//! scratch-pool checkout/return traffic.
//!
//! # Determinism
//!
//! The engine inherits the [module contract](super): outcomes are
//! **bit-for-bit identical to driving each fork independently, at every
//! thread count**. The argument:
//!
//! * every coin a fork flips derives from `(fork seed, pid, round, phase)`
//!   ([`SimRng::stream`](crate::SimRng::stream)) — never from execution
//!   order — so interleaving the *rounds* of many forks cannot change any
//!   fork's execution;
//! * forks are assigned to lanes by a pure function of `(index, lanes)`
//!   and outcomes are written into the slot of their index, so lane count
//!   changes wall-clock time, never results;
//! * the shared lane scratch is clean between `deliver` calls by the
//!   engine's scratch invariant, so serially re-using one arena across the
//!   lane's worlds is observationally identical to giving each world its
//!   own;
//! * per-world early retirement fires exactly where the independent drive
//!   loop would have stopped (all processes halted/failed, or the bounded
//!   round limit exceeded) — never earlier (e.g. at first decision, which
//!   would change the observable outcome of worlds whose remaining
//!   processes never halt).
//!
//! The `valency.cohort.*` telemetry counters (worlds started, worlds
//! retired early, rounds saved vs a full-horizon burn) are observe-only,
//! like every other telemetry write.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::world::RoundScratch;
use crate::{
    Adversary, Bit, BitPlane, Process, ProcessId, SimError, SimRng, Telemetry, World, WorldSnapshot,
};

use super::{global_pool, resolve_threads};

/// How one cohort member ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortOutcome {
    /// The fork ran to completion (every process halted or was failed).
    /// Carries the decision of the first non-faulty process in id order —
    /// exactly what
    /// [`RunReport::non_faulty`](crate::RunReport::non_faulty)`().find_map(decision_of)`
    /// reads off the equivalent independent run.
    Finished(Option<Bit>),
    /// The fork exceeded its bounded round limit undecided — the cohort
    /// analogue of [`SimError::MaxRoundsExceeded`] from an independent
    /// drive.
    HorizonHit,
}

/// Derives the fork-seed grid for `groups × per_group` work units.
///
/// Byte-identical to deriving
/// `SimRng::new(seed).derive(unit / per_group).derive(unit % per_group).next_u64()`
/// per unit (the valency estimator's historical chain), but each group's
/// substream is derived once and swept, instead of re-deriving the full
/// chain for every unit.
#[must_use]
pub fn derive_seed_grid(seed: u64, groups: usize, per_group: usize) -> Vec<u64> {
    let seeder = SimRng::new(seed);
    let mut out = Vec::with_capacity(groups * per_group);
    for g in 0..groups {
        let group_stream = seeder.derive(g as u64);
        for s in 0..per_group {
            out.push(group_stream.derive(s as u64).next_u64());
        }
    }
    out
}

/// Drives all forks of one paused world in lockstep, round-major.
///
/// Built by [`CohortDriver::new`] (which condenses the world into a
/// bounded [`WorldSnapshot`] once) and consumed by
/// [`CohortDriver::drive`]. The [`cohort_eval`] free function wraps both
/// for the common single-shot case.
#[derive(Debug)]
pub struct CohortDriver<P: Process> {
    snapshot: WorldSnapshot<P>,
    telemetry: Telemetry,
    threads: usize,
}

impl<P> CohortDriver<P>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
{
    /// Captures `world` into a copy-on-write snapshot bounded at `horizon`
    /// rounds past the pause point, ready to cut cohorts from.
    ///
    /// Telemetry attribution comes from the parent world's handle; the
    /// cohort members themselves are detached, like any fork.
    #[must_use]
    pub fn new(world: &World<P>, threads: usize, horizon: u32) -> CohortDriver<P> {
        CohortDriver {
            snapshot: world.snapshot_bounded(horizon),
            telemetry: world.telemetry().clone(),
            threads,
        }
    }

    /// Forks the snapshot once per seed, builds each fork's adversary with
    /// `make_adversary(index, seed)`, and drives the whole cohort in
    /// lockstep. Outcome `i` is what independently driving
    /// `snapshot.fork(seeds[i])` under the same adversary would produce.
    ///
    /// Worlds are assigned to lanes **strided** (`index % lanes`), not in
    /// contiguous chunks: a valency cohort is probe-major, and probes have
    /// wildly different costs (a balancer fork runs near the full horizon
    /// while a kill-ones fork decides in a few rounds), so striding
    /// balances each probe's forks across all lanes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors other than the round limit (which is the
    /// [`CohortOutcome::HorizonHit`] outcome, not an error); with several
    /// failing forks, the error of the lowest index is returned regardless
    /// of thread count. All members are driven even when one fails,
    /// matching [`try_par_map`](super::try_par_map).
    pub fn drive<A, F>(
        &self,
        seeds: &[u64],
        make_adversary: F,
    ) -> Result<Vec<CohortOutcome>, SimError>
    where
        A: Adversary<P>,
        F: Fn(usize, u64) -> A + Sync,
    {
        let total = seeds.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let telemetry = &self.telemetry;
        let _span = telemetry.span("parallel.cohort");
        let lanes = resolve_threads(self.threads).min(total);
        let results: Vec<OnceLock<Result<CohortOutcome, SimError>>> =
            (0..total).map(|_| OnceLock::new()).collect();
        let retired_early = AtomicU64::new(0);
        let rounds_saved = AtomicU64::new(0);
        let run_lane = |w: usize| {
            #[allow(clippy::cast_possible_truncation)]
            let _worker = telemetry.worker_span("parallel.worker", w as u32);
            let saved = drive_lane(
                &self.snapshot,
                seeds,
                &make_adversary,
                w,
                lanes,
                &results,
                &retired_early,
            );
            rounds_saved.fetch_add(saved, Ordering::Relaxed);
        };
        if lanes <= 1 {
            run_lane(0);
        } else {
            // Lanes go straight to the pool: `par_map`'s `MIN_CHUNK`
            // collapse is tuned for per-fork work items, while a lane
            // carries whole bounded rollouts. The pool's busy fallback
            // (nested dispatch) still runs the lanes inline, identically.
            global_pool().run(telemetry, lanes, &run_lane);
        }
        telemetry.incr("valency.cohort.worlds", total as u64);
        let early = retired_early.into_inner();
        if early > 0 {
            telemetry.incr("valency.cohort.retired_early", early);
        }
        let saved = rounds_saved.into_inner();
        if saved > 0 {
            telemetry.incr("valency.cohort.rounds_saved", saved);
        }
        results
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("every cohort member is driven to an outcome")
            })
            .collect()
    }
}

/// One lockstep pass structure: everything lane `w` owns while driving its
/// stride of the cohort.
fn drive_lane<P, A, F>(
    snapshot: &WorldSnapshot<P>,
    seeds: &[u64],
    make_adversary: &F,
    w: usize,
    lanes: usize,
    results: &[OnceLock<Result<CohortOutcome, SimError>>],
    retired_early: &AtomicU64,
) -> u64
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
    A: Adversary<P>,
    F: Fn(usize, u64) -> A + Sync,
{
    // Fork this lane's stride. Forks carry a zero-width scratch
    // placeholder; the lane's single caddy scratch is swapped in around
    // each round step instead (phase A and the adversary never touch
    // scratch, so only the delivery window needs it).
    let mut members: Vec<Option<(usize, World<P>, A)>> = (w..seeds.len())
        .step_by(lanes)
        .map(|i| {
            Some((
                i,
                snapshot.fork_detached(seeds[i]),
                make_adversary(i, seeds[i]),
            ))
        })
        .collect();
    let mut caddy: RoundScratch<P::Msg> = snapshot.take_scratch();
    let mut active = BitPlane::full(members.len());
    let mut remaining = members.len();
    let mut saved: u64 = 0;
    while remaining > 0 {
        for (li, member) in members.iter_mut().enumerate() {
            if !active.get(li) {
                continue;
            }
            let (_, world, adversary) = member.as_mut().expect("active members are present");
            world.swap_scratch(&mut caddy);
            let step = step_world(world, adversary);
            world.swap_scratch(&mut caddy);
            let Some(outcome) = step else { continue };
            let (index, world, _) = member.take().expect("active members are present");
            active.clear(li);
            remaining -= 1;
            if let Ok(CohortOutcome::Finished(_)) = outcome {
                // Rounds a full-horizon burn would still have run: the
                // world finished with `round ..= limit` left unplayed.
                let limit = world.config().max_rounds_value();
                let round = world.round().index();
                if round <= limit {
                    retired_early.fetch_add(1, Ordering::Relaxed);
                    saved += u64::from(limit - round) + 1;
                }
            }
            drop(world);
            let _ = results[index].set(outcome);
        }
    }
    snapshot.put_scratch(caddy);
    saved
}

/// One iteration of the independent [`World::drive`] loop, inlined for a
/// cohort member: finished/limit checks, Phase A if pending, the
/// adversary's intervention, delivery — then the *next* iteration's
/// finished/limit checks brought forward, so a world retires in the pass
/// that settles its outcome instead of burning one more lockstep pass to
/// notice.
///
/// Returns `None` while the world should keep stepping, or the settled
/// outcome (`Finished`/`HorizonHit`/error) exactly where `drive` would
/// have returned.
fn step_world<P, A>(
    world: &mut World<P>,
    adversary: &mut A,
) -> Option<Result<CohortOutcome, SimError>>
where
    P: Process,
    A: Adversary<P>,
{
    let limit = world.config().max_rounds_value();
    if world.finished() {
        return Some(Ok(CohortOutcome::Finished(first_decision(world))));
    }
    if world.round().index() > limit {
        return Some(Ok(CohortOutcome::HorizonHit));
    }
    if !world.awaiting_delivery() {
        if let Err(e) = world.phase_a() {
            return Some(Err(e));
        }
    }
    let intervention = adversary.intervene(world);
    if let Err(e) = world.deliver(intervention) {
        return Some(Err(e));
    }
    // Early retirement: these are exactly the checks the next `drive`
    // iteration would perform first, so folding them into this step
    // changes when the outcome is *read*, never what it is.
    if world.finished() {
        return Some(Ok(CohortOutcome::Finished(first_decision(world))));
    }
    if world.round().index() > limit {
        return Some(Ok(CohortOutcome::HorizonHit));
    }
    None
}

/// The decision of the first non-faulty process in id order, read straight
/// off the finished world — equivalent to building the
/// [`RunReport`](crate::RunReport) and walking
/// `non_faulty().find_map(decision_of)`, without allocating the report's
/// decision/status vectors per fork.
fn first_decision<P: Process>(world: &World<P>) -> Option<Bit> {
    (0..world.n())
        .map(ProcessId::new)
        .filter(|&pid| !world.status(pid).is_failed())
        .find_map(|pid| world.process(pid).decision())
}

/// Single-shot convenience over [`CohortDriver`]: snapshot `world` bounded
/// at `horizon`, fork once per seed, drive the cohort in lockstep, return
/// the outcomes in seed order.
///
/// The lockstep equivalent of [`fork_eval`](super::fork_eval) +
/// drive-to-completion per fork; see [`CohortDriver::drive`] for the
/// determinism and error contract.
///
/// # Errors
///
/// Returns the error of the lowest failing index.
pub fn cohort_eval<P, A, F>(
    world: &World<P>,
    threads: usize,
    seeds: &[u64],
    horizon: u32,
    make_adversary: F,
) -> Result<Vec<CohortOutcome>, SimError>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
    A: Adversary<P>,
    F: Fn(usize, u64) -> A + Sync,
{
    CohortDriver::new(world, threads, horizon).drive(seeds, make_adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::fork_eval;
    use crate::testing::{CountDown, Echo};
    use crate::{Context, Inbox, Intervention, Passive, SendPattern, SimConfig};

    /// A process that never halts — only the horizon stops its forks.
    #[derive(Debug, Clone)]
    struct Forever;
    impl Process for Forever {
        type Msg = Bit;
        fn send(&mut self, _: &mut Context<'_>) -> SendPattern<Bit> {
            SendPattern::Broadcast(Bit::One)
        }
        fn receive(&mut self, _: &mut Context<'_>, _: &Inbox<Bit>) {}
        fn decision(&self) -> Option<Bit> {
            None
        }
        fn halted(&self) -> bool {
            false
        }
    }

    /// Drives `seeds` through the independent per-fork path with the same
    /// outcome classification the cohort produces.
    fn fork_oracle<P>(
        world: &World<P>,
        threads: usize,
        seeds: &[u64],
        horizon: u32,
    ) -> Vec<CohortOutcome>
    where
        P: Process + Clone + Send + Sync,
        P::Msg: Send + Sync,
    {
        fork_eval(world, threads, seeds, horizon, |_, mut fork| {
            let mut adversary = Passive;
            match fork.drive(&mut adversary) {
                Ok(()) => {
                    let report = fork.into_report();
                    let decision = report.non_faulty().find_map(|pid| report.decision_of(pid));
                    Ok::<_, SimError>(CohortOutcome::Finished(decision))
                }
                Err(SimError::MaxRoundsExceeded { .. }) => {
                    fork.retire();
                    Ok(CohortOutcome::HorizonHit)
                }
                Err(other) => Err(other),
            }
        })
        .unwrap()
    }

    #[test]
    fn cohort_matches_per_fork_path_at_every_thread_count() {
        let world = World::new(SimConfig::new(6).seed(11), |pid| {
            Echo::new(Bit::from(pid.index() % 2 == 0))
        })
        .unwrap();
        let seeds: Vec<u64> = (0..13).map(|i| 2000 + i).collect();
        let oracle = fork_oracle(&world, 1, &seeds, 50);
        for threads in [1usize, 2, 8] {
            let outcomes = cohort_eval(&world, threads, &seeds, 50, |_, _| Passive).unwrap();
            assert_eq!(outcomes, oracle, "threads = {threads}");
        }
    }

    #[test]
    fn horizon_hit_worlds_report_like_max_rounds() {
        let world = World::new(SimConfig::new(4).seed(3).max_rounds(1_000), |_| Forever).unwrap();
        let seeds = [7u64, 8, 9, 10, 11];
        for threads in [1usize, 2, 8] {
            let outcomes = cohort_eval(&world, threads, &seeds, 5, |_, _| Passive).unwrap();
            assert_eq!(outcomes, vec![CohortOutcome::HorizonHit; seeds.len()]);
        }
    }

    #[test]
    fn cohort_counters_are_observe_only() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        let mut world =
            World::new(SimConfig::new(5).seed(9), |_| CountDown::new(3, Bit::One)).unwrap();
        world.phase_a().unwrap();
        world.deliver(Intervention::none()).unwrap();
        let seeds: Vec<u64> = (0..9).map(|i| 40 + i).collect();
        let baseline = cohort_eval(&world, 2, &seeds, 30, |_, _| Passive).unwrap();
        world.set_telemetry(Telemetry::new(TelemetryMode::Counters));
        let counted = cohort_eval(&world, 2, &seeds, 30, |_, _| Passive).unwrap();
        assert_eq!(counted, baseline, "counters must not change outcomes");
        let snap = world.telemetry().snapshot();
        assert_eq!(snap.counter("valency.cohort.worlds"), Some(9));
        assert_eq!(
            snap.counter("valency.cohort.retired_early"),
            Some(9),
            "every CountDown fork finishes before the horizon"
        );
        assert!(snap.counter("valency.cohort.rounds_saved").unwrap_or(0) > 0);
    }

    #[test]
    fn seed_grid_matches_per_unit_chain() {
        let seeder = SimRng::new(0xABCD);
        let per_unit: Vec<u64> = (0..4 * 7)
            .map(|unit| {
                seeder
                    .derive((unit / 7) as u64)
                    .derive((unit % 7) as u64)
                    .next_u64()
            })
            .collect();
        assert_eq!(derive_seed_grid(0xABCD, 4, 7), per_unit);
    }

    #[test]
    fn empty_cohort_is_empty() {
        let world = World::new(SimConfig::new(3).seed(1), |_| Forever).unwrap();
        let outcomes = cohort_eval(&world, 4, &[], 10, |_, _| Passive).unwrap();
        assert!(outcomes.is_empty());
    }
}
