//! The adversary interface: full-information, adaptive, fail-stop.
//!
//! The model is the *fail-stop, adaptive-strongly-dynamic, computationally
//! unbounded* adversary of the paper's §3.1 (after [CD89]):
//!
//! * **Full information** — between Phase A and Phase B of every round the
//!   adversary sees the complete world: every local state, every local coin
//!   already flipped, and every message queued for sending. This is why
//!   [`Adversary::intervene`] receives the whole [`World`] by reference.
//! * **Adaptive, strongly dynamic** — based on that view it may fail
//!   processes *mid-send*: a failed process's round-`r` messages are
//!   delivered only to the subset the adversary chooses, and the process is
//!   dead from round `r+1` on.
//! * **Budgeted** — at most `t` failures over the execution, enforced by
//!   the engine (see [`FaultBudget`](crate::FaultBudget)).
//!
//! Computational unboundedness is approximated operationally: an adversary
//! may clone the world ([`World::fork`]) and roll copies forward to evaluate
//! candidate interventions — the simulator equivalent of "knows the
//! probability of every outcome". See `synran-adversary` for the estimators.

use crate::{Process, ProcessId, World};

/// A strategy for failing processes, consulted once per round between
/// Phase A (sending) and Phase B (delivery).
///
/// Implementations receive the world *immutably*; the only way to affect
/// the execution is the returned [`Intervention`], which the engine
/// validates (budget, liveness, duplicates) before applying.
pub trait Adversary<P: Process> {
    /// Chooses this round's failures after inspecting the full
    /// post-Phase-A state of `world`.
    fn intervene(&mut self, world: &World<P>) -> Intervention;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str {
        "adversary"
    }
}

/// The set of failures an adversary inflicts in one round.
///
/// # Examples
///
/// ```
/// use synran_sim::{DeliveryFilter, Intervention, ProcessId};
///
/// // Fail P3 outright and fail P5 while letting only P0 hear it.
/// let iv = Intervention::new()
///     .kill(ProcessId::new(3), DeliveryFilter::None)
///     .kill(ProcessId::new(5), DeliveryFilter::To(vec![ProcessId::new(0)]));
/// assert_eq!(iv.kills().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Intervention {
    kills: Vec<Kill>,
}

impl Intervention {
    /// An intervention that fails nobody.
    #[must_use]
    pub fn none() -> Intervention {
        Intervention::default()
    }

    /// Creates an empty intervention to build on.
    #[must_use]
    pub fn new() -> Intervention {
        Intervention::default()
    }

    /// Adds a failure: `victim` dies this round and its queued messages are
    /// delivered only where `delivered` allows.
    #[must_use]
    pub fn kill(mut self, victim: ProcessId, delivered: DeliveryFilter) -> Intervention {
        self.kills.push(Kill { victim, delivered });
        self
    }

    /// Convenience: fail every listed victim with no deliveries at all.
    #[must_use]
    pub fn kill_all_silent<I: IntoIterator<Item = ProcessId>>(victims: I) -> Intervention {
        Intervention {
            kills: victims
                .into_iter()
                .map(|victim| Kill {
                    victim,
                    delivered: DeliveryFilter::None,
                })
                .collect(),
        }
    }

    /// The failures requested this round.
    #[must_use]
    pub fn kills(&self) -> &[Kill] {
        &self.kills
    }

    /// Returns `true` if this intervention fails nobody.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// One process failure: who dies, and which of its final messages survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kill {
    /// The process being failed.
    pub victim: ProcessId,
    /// Which of the victim's round-`r` messages are still delivered.
    pub delivered: DeliveryFilter,
}

/// Which of a failing process's queued messages get through.
///
/// The paper's §3.4 strategy needs all the granularities below: fail a
/// process but send *all* its messages (its case 2), send *none*, or walk
/// message by message (its case 3). [`DeliveryFilter::Prefix`] is the
/// paper's parenthetical ordered-send model — "messages are sent out
/// according to some order and if the adversary fails a message of some
/// process all later messages of that process will not be sent" — with
/// ascending recipient id as the send order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryFilter {
    /// Every queued message is still delivered; the process is simply dead
    /// from the next round on.
    All,
    /// No queued message is delivered.
    None,
    /// Only messages to the listed recipients are delivered.
    To(Vec<ProcessId>),
    /// Only messages to the `k` lowest-id recipients are delivered — the
    /// process died `k` sends into its ordered broadcast.
    Prefix(usize),
}

impl DeliveryFilter {
    /// Does a message to `recipient` survive this filter?
    #[must_use]
    pub fn allows(&self, recipient: ProcessId) -> bool {
        match self {
            DeliveryFilter::All => true,
            DeliveryFilter::None => false,
            DeliveryFilter::To(list) => list.contains(&recipient),
            DeliveryFilter::Prefix(k) => recipient.index() < *k,
        }
    }
}

impl<P: Process, A: Adversary<P> + ?Sized> Adversary<P> for Box<A> {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        (**self).intervene(world)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Process, A: Adversary<P> + ?Sized> Adversary<P> for &mut A {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        (**self).intervene(world)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The adversary that never interferes.
///
/// Useful as a baseline in experiments and as the reference adversary when
/// estimating what a protocol does "on its own".
///
/// # Examples
///
/// ```
/// use synran_sim::{Adversary, Passive};
/// let passive = Passive;
/// assert_eq!(Adversary::<synran_sim::testing::Echo>::name(&passive), "passive");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Passive;

impl<P: Process> Adversary<P> for Passive {
    fn intervene(&mut self, _world: &World<P>) -> Intervention {
        Intervention::none()
    }

    fn name(&self) -> &str {
        "passive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_accumulates_kills() {
        let iv = Intervention::new()
            .kill(pid(1), DeliveryFilter::All)
            .kill(pid(2), DeliveryFilter::None);
        assert_eq!(iv.kills().len(), 2);
        assert_eq!(iv.kills()[0].victim, pid(1));
        assert!(!iv.is_empty());
    }

    #[test]
    fn none_is_empty() {
        assert!(Intervention::none().is_empty());
        assert_eq!(Intervention::none(), Intervention::default());
    }

    #[test]
    fn kill_all_silent_builds_silent_kills() {
        let iv = Intervention::kill_all_silent([pid(0), pid(4)]);
        assert_eq!(iv.kills().len(), 2);
        assert!(iv
            .kills()
            .iter()
            .all(|k| k.delivered == DeliveryFilter::None));
    }

    #[test]
    fn filter_semantics() {
        assert!(DeliveryFilter::All.allows(pid(9)));
        assert!(!DeliveryFilter::None.allows(pid(9)));
        let partial = DeliveryFilter::To(vec![pid(1), pid(3)]);
        assert!(partial.allows(pid(1)));
        assert!(partial.allows(pid(3)));
        assert!(!partial.allows(pid(2)));
    }

    #[test]
    fn prefix_filter_models_ordered_sends() {
        let died_mid_send = DeliveryFilter::Prefix(3);
        assert!(died_mid_send.allows(pid(0)));
        assert!(died_mid_send.allows(pid(2)));
        assert!(!died_mid_send.allows(pid(3)));
        assert!(!died_mid_send.allows(pid(9)));
        // Degenerate ends coincide with None and (effectively) All.
        assert!(!DeliveryFilter::Prefix(0).allows(pid(0)));
        assert!(DeliveryFilter::Prefix(usize::MAX).allows(pid(1_000)));
    }
}
