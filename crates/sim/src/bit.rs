//! The binary values processes agree on.

use std::fmt;
use std::ops::Not;

/// A single binary value: the domain of consensus inputs and decisions.
///
/// `Bit` is used for protocol inputs, proposals, coin flips, and decisions
/// throughout the workspace. It is a deliberate newtype-style enum rather
/// than `bool` so that signatures convey meaning (`C-CUSTOM-TYPE`).
///
/// # Examples
///
/// ```
/// use synran_sim::Bit;
///
/// let b = Bit::One;
/// assert_eq!(!b, Bit::Zero);
/// assert_eq!(b.as_u8(), 1);
/// assert_eq!(Bit::from(true), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bit {
    /// The value 0.
    Zero,
    /// The value 1.
    One,
}

impl Bit {
    /// Both values, in ascending order. Handy for exhaustive sweeps.
    pub const BOTH: [Bit; 2] = [Bit::Zero, Bit::One];

    /// Returns the opposite value.
    ///
    /// ```
    /// # use synran_sim::Bit;
    /// assert_eq!(Bit::Zero.flip(), Bit::One);
    /// ```
    #[must_use]
    pub const fn flip(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Returns this bit as `0u8` or `1u8`.
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }

    /// Returns this bit as a `bool` (`One` is `true`).
    #[must_use]
    pub const fn as_bool(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Returns `true` if this is [`Bit::One`].
    #[must_use]
    pub const fn is_one(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Returns `true` if this is [`Bit::Zero`].
    #[must_use]
    pub const fn is_zero(self) -> bool {
        matches!(self, Bit::Zero)
    }
}

impl Default for Bit {
    /// Defaults to [`Bit::Zero`].
    fn default() -> Self {
        Bit::Zero
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        self.flip()
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> bool {
        b.as_bool()
    }
}

impl From<Bit> for u8 {
    fn from(b: Bit) -> u8 {
        b.as_u8()
    }
}

impl From<Bit> for usize {
    fn from(b: Bit) -> usize {
        b.as_u8() as usize
    }
}

impl TryFrom<u8> for Bit {
    type Error = crate::error::ParseBitError;

    /// Converts `0` or `1` into a [`Bit`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitError`](crate::error::ParseBitError) for any other
    /// value.
    fn try_from(v: u8) -> Result<Bit, Self::Error> {
        match v {
            0 => Ok(Bit::Zero),
            1 => Ok(Bit::One),
            other => Err(crate::error::ParseBitError { value: other }),
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for b in Bit::BOTH {
            assert_eq!(b.flip().flip(), b);
            assert_ne!(b.flip(), b);
        }
    }

    #[test]
    fn not_operator_matches_flip() {
        assert_eq!(!Bit::Zero, Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
    }

    #[test]
    fn conversions_roundtrip() {
        for b in Bit::BOTH {
            assert_eq!(Bit::from(b.as_bool()), b);
            assert_eq!(Bit::try_from(b.as_u8()).unwrap(), b);
            assert_eq!(usize::from(b), b.as_u8() as usize);
        }
    }

    #[test]
    fn try_from_rejects_non_binary() {
        for v in [2u8, 3, 200, u8::MAX] {
            let err = Bit::try_from(v).unwrap_err();
            assert!(err.to_string().contains(&v.to_string()));
        }
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }

    #[test]
    fn ordering_zero_below_one() {
        assert!(Bit::Zero < Bit::One);
    }
}
