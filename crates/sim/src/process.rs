//! The process abstraction: what runs inside the simulator.

use crate::{Bit, Inbox, ProcessId, Round, SendPattern, SimRng};

/// A deterministic-except-for-coins state machine participating in a
/// synchronous computation.
///
/// The engine drives each round in the paper's two phases (§3.1):
///
/// 1. **Phase A** — [`Process::send`] is called on every alive process:
///    flip local coins, do local computation, and emit this round's
///    messages. The adversary then inspects *everything* (full
///    information) and chooses interventions.
/// 2. **Phase B** — surviving messages are delivered and
///    [`Process::receive`] is called with the round's inbox; the process
///    updates its state and may decide or halt.
///
/// Implementations must be deterministic given the [`SimRng`] draws they
/// make — all nondeterminism flows through the provided generator so that
/// executions replay exactly.
///
/// # Examples
///
/// A process that broadcasts its input once and decides it immediately:
///
/// ```
/// use synran_sim::{Bit, Context, Inbox, Process, Round, SendPattern};
///
/// #[derive(Debug, Clone)]
/// struct OneShot { input: Bit, decided: bool }
///
/// impl Process for OneShot {
///     type Msg = Bit;
///
///     fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Bit> {
///         SendPattern::Broadcast(self.input)
///     }
///
///     fn receive(&mut self, _ctx: &mut Context<'_>, _inbox: &Inbox<Bit>) {
///         self.decided = true;
///     }
///
///     fn decision(&self) -> Option<Bit> {
///         self.decided.then_some(self.input)
///     }
///
///     fn halted(&self) -> bool {
///         self.decided
///     }
/// }
/// ```
pub trait Process: std::fmt::Debug {
    /// The message type this process exchanges.
    ///
    /// The [`PlaneMsg`](crate::PlaneMsg) bound is what lets the round
    /// engine route broadcast rounds through the bit-plane fast path:
    /// message types that pack to a bit ride the planes, the rest use the
    /// scalar pair-vector path. Types with no natural bit packing just
    /// take the trait's defaults (`impl PlaneMsg for MyMsg {}`).
    type Msg: Clone + std::fmt::Debug + crate::PlaneMsg;

    /// Phase A of a round: flip coins, compute, and emit messages.
    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<Self::Msg>;

    /// End of Phase B: consume the messages delivered this round.
    fn receive(&mut self, ctx: &mut Context<'_>, inbox: &Inbox<Self::Msg>);

    /// The value this process has irrevocably decided, if any.
    ///
    /// Once `Some`, the decision must never change — the engine's checkers
    /// treat a change as a protocol bug.
    fn decision(&self) -> Option<Bit>;

    /// Whether this process has stopped participating (sent its last
    /// message and will ignore all future rounds).
    ///
    /// Halting is voluntary termination, distinct from being failed by the
    /// adversary. A halted process must already have decided.
    fn halted(&self) -> bool;
}

/// Per-call context handed to [`Process::send`] and [`Process::receive`].
///
/// Carries the process's identity, the system size, the current round, and
/// the round's private coin-flip stream.
#[derive(Debug)]
pub struct Context<'a> {
    pid: ProcessId,
    n: usize,
    round: Round,
    rng: &'a mut SimRng,
}

impl<'a> Context<'a> {
    /// Creates a context. Used by the engine and by unit tests that drive a
    /// process by hand.
    #[must_use]
    pub fn new(pid: ProcessId, n: usize, round: Round, rng: &'a mut SimRng) -> Context<'a> {
        Context { pid, n, round, rng }
    }

    /// This process's identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Total number of processes in the system (the paper's `n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The round's private random stream for this process.
    ///
    /// Draws are reproducible across replays and independent across
    /// `(process, round, phase)` triples.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamPhase;

    #[test]
    fn context_exposes_coordinates() {
        let mut rng = SimRng::stream(1, ProcessId::new(2), Round::new(3), StreamPhase::Send);
        let mut ctx = Context::new(ProcessId::new(2), 10, Round::new(3), &mut rng);
        assert_eq!(ctx.pid(), ProcessId::new(2));
        assert_eq!(ctx.n(), 10);
        assert_eq!(ctx.round(), Round::new(3));
        // The rng is usable through the context.
        let _ = ctx.rng().bit();
    }

    /// The doc-example process, reused as a smoke test of the trait.
    #[derive(Debug, Clone)]
    struct OneShot {
        input: Bit,
        decided: bool,
    }

    impl Process for OneShot {
        type Msg = Bit;

        fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Bit> {
            SendPattern::Broadcast(self.input)
        }

        fn receive(&mut self, _ctx: &mut Context<'_>, _inbox: &Inbox<Bit>) {
            self.decided = true;
        }

        fn decision(&self) -> Option<Bit> {
            self.decided.then_some(self.input)
        }

        fn halted(&self) -> bool {
            self.decided
        }
    }

    #[test]
    fn one_shot_lifecycle() {
        let mut p = OneShot {
            input: Bit::One,
            decided: false,
        };
        assert_eq!(p.decision(), None);
        assert!(!p.halted());

        let mut rng = SimRng::new(0);
        let mut ctx = Context::new(ProcessId::new(0), 1, Round::FIRST, &mut rng);
        let out = p.send(&mut ctx);
        assert_eq!(out, SendPattern::Broadcast(Bit::One));
        p.receive(&mut ctx, &Inbox::empty());
        assert_eq!(p.decision(), Some(Bit::One));
        assert!(p.halted());
    }
}
