//! Tiny processes for tests, docs, and downstream crates' test suites.
//!
//! These are deliberately trivial protocols — they exist so that engine
//! behaviour (phases, kills, delivery filters, budgets) can be tested
//! without dragging in a real consensus protocol.

use crate::{Bit, Context, Inbox, PlaneMsg, Process, ProcessId, SendPattern};

/// Broadcasts its input once, then decides it and halts.
///
/// The simplest possible protocol: **not** a consensus protocol (no
/// agreement), but enough to exercise one full engine round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echo {
    input: Bit,
    decided: bool,
}

impl Echo {
    /// Creates an echo process with the given input.
    #[must_use]
    pub fn new(input: Bit) -> Echo {
        Echo {
            input,
            decided: false,
        }
    }
}

impl Process for Echo {
    type Msg = Bit;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Bit> {
        SendPattern::Broadcast(self.input)
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, _inbox: &Inbox<Bit>) {
        self.decided = true;
    }

    fn decision(&self) -> Option<Bit> {
        self.decided.then_some(self.input)
    }

    fn halted(&self) -> bool {
        self.decided
    }
}

/// Broadcasts a fixed bit for a fixed number of rounds, then decides it and
/// halts. Records how many messages it saw in the last round, which lets
/// engine tests observe delivery filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountDown {
    remaining: u32,
    value: Bit,
    last_inbox_len: usize,
}

impl CountDown {
    /// Creates a process that runs for `rounds` rounds broadcasting `value`.
    #[must_use]
    pub fn new(rounds: u32, value: Bit) -> CountDown {
        CountDown {
            remaining: rounds,
            value,
            last_inbox_len: 0,
        }
    }

    /// Messages received in the most recent round.
    #[must_use]
    pub fn last_inbox_len(&self) -> usize {
        self.last_inbox_len
    }
}

impl Process for CountDown {
    type Msg = Bit;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Bit> {
        SendPattern::Broadcast(self.value)
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<Bit>) {
        self.last_inbox_len = inbox.len();
        self.remaining = self.remaining.saturating_sub(1);
    }

    fn decision(&self) -> Option<Bit> {
        (self.remaining == 0).then_some(self.value)
    }

    fn halted(&self) -> bool {
        self.remaining == 0
    }
}

/// Flips a fair coin every round and broadcasts it; decides the first coin
/// it ever flips, halting after `rounds` rounds. Used to exercise the
/// deterministic per-(process, round) randomness streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoinCaller {
    rounds: u32,
    elapsed: u32,
    first: Option<Bit>,
    history: Vec<Bit>,
}

impl CoinCaller {
    /// Creates a coin caller that participates for `rounds` rounds.
    #[must_use]
    pub fn new(rounds: u32) -> CoinCaller {
        CoinCaller {
            rounds,
            elapsed: 0,
            first: None,
            history: Vec::new(),
        }
    }

    /// Every coin flipped so far, in round order.
    #[must_use]
    pub fn history(&self) -> &[Bit] {
        &self.history
    }
}

impl Process for CoinCaller {
    type Msg = Bit;

    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<Bit> {
        let coin = ctx.rng().bit();
        self.history.push(coin);
        if self.first.is_none() {
            self.first = Some(coin);
        }
        SendPattern::Broadcast(coin)
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, _inbox: &Inbox<Bit>) {
        self.elapsed += 1;
    }

    fn decision(&self) -> Option<Bit> {
        self.first
    }

    fn halted(&self) -> bool {
        self.elapsed >= self.rounds
    }
}

/// A message wrapper that hides its payload's bit packing.
///
/// `Opaque<M>` carries `M` but its [`PlaneMsg`] impl never packs, so every
/// round of `Opaque` messages takes the engine's scalar pair path even when
/// `M` itself would ride the planes. Differential tests wrap a protocol in
/// [`Scalarized`] to re-run it through the scalar path as the oracle for
/// the plane fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opaque<M>(pub M);

impl<M> PlaneMsg for Opaque<M> {}

/// Runs any process through the scalar delivery path by wrapping its
/// messages in [`Opaque`].
///
/// `Scalarized<P>` is observationally identical to `P` — same sends (modulo
/// the wrapper), same receives, same decisions, same coins — but its
/// message type never packs, so the engine never takes the plane fast
/// path. Running a protocol plain and scalarized from the same seed and
/// comparing traces, metrics, and reports is the plane/scalar differential
/// oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scalarized<P>(pub P);

impl<P: Process> Process for Scalarized<P> {
    type Msg = Opaque<P::Msg>;

    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<Opaque<P::Msg>> {
        match self.0.send(ctx) {
            SendPattern::Broadcast(m) => SendPattern::Broadcast(Opaque(m)),
            SendPattern::To(list) => {
                SendPattern::To(list.into_iter().map(|(to, m)| (to, Opaque(m))).collect())
            }
            SendPattern::Silent => SendPattern::Silent,
        }
    }

    fn receive(&mut self, ctx: &mut Context<'_>, inbox: &Inbox<Opaque<P::Msg>>) {
        let unwrapped: Inbox<P::Msg> = inbox
            .iter()
            .map(|(sender, Opaque(m))| (sender, m))
            .collect::<Vec<(ProcessId, P::Msg)>>()
            .into_iter()
            .collect();
        self.0.receive(ctx, &unwrapped);
    }

    fn decision(&self) -> Option<Bit> {
        self.0.decision()
    }

    fn halted(&self) -> bool {
        self.0.halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Passive, SimConfig, World};

    #[test]
    fn echo_decides_input() {
        let mut w = World::new(SimConfig::new(3).seed(0), |pid| {
            Echo::new(Bit::from(pid.index() == 0))
        })
        .unwrap();
        let report = w.run(&mut Passive).unwrap();
        assert_eq!(report.decision_of(crate::ProcessId::new(0)), Some(Bit::One));
        assert_eq!(
            report.decision_of(crate::ProcessId::new(1)),
            Some(Bit::Zero)
        );
    }

    #[test]
    fn countdown_runs_for_exactly_n_rounds() {
        let mut w = World::new(SimConfig::new(2).seed(0), |_| CountDown::new(7, Bit::One)).unwrap();
        let report = w.run(&mut Passive).unwrap();
        assert_eq!(report.rounds(), 7);
    }

    #[test]
    fn scalarized_echo_matches_plain_echo_but_takes_the_scalar_path() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        let factory = |pid: ProcessId| Echo::new(Bit::from(pid.index().is_multiple_of(2)));
        let plain = {
            let hub = Telemetry::new(TelemetryMode::Counters);
            let mut w = World::new(SimConfig::new(5).seed(9).trace(true), factory).unwrap();
            w.set_telemetry(hub.clone());
            let report = w.run(&mut Passive).unwrap();
            assert_eq!(hub.snapshot().counter("round.deliver.plane"), Some(1));
            assert_eq!(hub.snapshot().counter("round.deliver.scalar"), None);
            report
        };
        let hub = Telemetry::new(TelemetryMode::Counters);
        let scalar = {
            let mut w = World::new(SimConfig::new(5).seed(9).trace(true), |pid| {
                Scalarized(factory(pid))
            })
            .unwrap();
            w.set_telemetry(hub.clone());
            w.run(&mut Passive).unwrap()
        };
        assert_eq!(hub.snapshot().counter("round.deliver.scalar"), Some(1));
        assert_eq!(hub.snapshot().counter("round.deliver.plane"), None);
        // Same decisions, statuses, metrics, and trace — byte for byte.
        assert_eq!(format!("{plain:?}"), format!("{scalar:?}"));
    }

    #[test]
    fn coin_caller_coins_are_reproducible_per_seed() {
        let run = |seed| {
            let mut w = World::new(SimConfig::new(4).seed(seed), |_| CoinCaller::new(6)).unwrap();
            w.run(&mut Passive).unwrap();
            w.processes()
                .map(|(_, p, _)| p.history().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn coin_caller_processes_flip_independently() {
        let mut w = World::new(SimConfig::new(8).seed(123), |_| CoinCaller::new(16)).unwrap();
        w.run(&mut Passive).unwrap();
        let histories: Vec<_> = w
            .processes()
            .map(|(_, p, _)| p.history().to_vec())
            .collect();
        // With 8 processes × 16 fair coins, identical histories are
        // overwhelmingly unlikely; equality would indicate stream reuse.
        for i in 0..histories.len() {
            for j in (i + 1)..histories.len() {
                assert_ne!(
                    histories[i], histories[j],
                    "processes {i} and {j} share coins"
                );
            }
        }
    }
}
