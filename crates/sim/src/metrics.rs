//! Aggregate execution metrics.

use crate::{ProcessId, Round};

/// Counters accumulated over one execution.
///
/// Metrics are always on (they are a handful of integers per round); the
/// experiment harnesses in `synran-bench` read them to produce the
/// budget-accounting tables (experiment E8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    rounds_completed: u32,
    kills_per_round: Vec<(Round, usize)>,
    messages_delivered: u64,
    messages_suppressed: u64,
    decided_at: Vec<Option<(Round, crate::Bit)>>,
}

impl Metrics {
    /// Creates metrics for a system of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Metrics {
        Metrics {
            rounds_completed: 0,
            kills_per_round: Vec::new(),
            messages_delivered: 0,
            messages_suppressed: 0,
            decided_at: vec![None; n],
        }
    }

    /// Rounds fully executed so far.
    #[must_use]
    pub fn rounds_completed(&self) -> u32 {
        self.rounds_completed
    }

    /// Total messages delivered across all rounds.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Total messages the adversary suppressed.
    #[must_use]
    pub fn messages_suppressed(&self) -> u64 {
        self.messages_suppressed
    }

    /// `(round, kills)` pairs for every round in which the adversary failed
    /// at least one process.
    ///
    /// Invariant: sorted by round, with exactly one entry per round —
    /// repeated recordings for the same round merge into a single entry
    /// ([`on_kills`](Metrics::on_kills) guarantees this), so consumers can
    /// binary-search and reconstruct dense per-round arrays without
    /// de-duplicating.
    #[must_use]
    pub fn kills_per_round(&self) -> &[(Round, usize)] {
        &self.kills_per_round
    }

    /// Total processes failed.
    #[must_use]
    pub fn total_kills(&self) -> usize {
        self.kills_per_round.iter().map(|(_, k)| k).sum()
    }

    /// The round in which `pid` decided, and the value, if it decided.
    #[must_use]
    pub fn decided_at(&self, pid: ProcessId) -> Option<(Round, crate::Bit)> {
        self.decided_at.get(pid.index()).copied().flatten()
    }

    /// The latest round in which any process decided, if any process did.
    #[must_use]
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decided_at
            .iter()
            .filter_map(|d| d.map(|(r, _)| r))
            .max()
    }

    pub(crate) fn on_round_completed(&mut self) {
        self.rounds_completed += 1;
    }

    pub(crate) fn on_kills(&mut self, round: Round, count: usize) {
        if count == 0 {
            return;
        }
        // Keep the sorted/one-entry-per-round invariant whatever order
        // rounds are reported in: merge duplicates, insert out-of-order
        // rounds at their sorted position (the engine reports rounds in
        // order, making this an O(1) append in practice).
        match self
            .kills_per_round
            .binary_search_by_key(&round, |&(r, _)| r)
        {
            Ok(i) => self.kills_per_round[i].1 += count,
            Err(i) => self.kills_per_round.insert(i, (round, count)),
        }
    }

    pub(crate) fn on_delivered(&mut self, count: u64) {
        self.messages_delivered += count;
    }

    pub(crate) fn on_suppressed(&mut self, count: u64) {
        self.messages_suppressed += count;
    }

    pub(crate) fn on_decided(&mut self, pid: ProcessId, round: Round, value: crate::Bit) {
        let slot = &mut self.decided_at[pid.index()];
        if slot.is_none() {
            *slot = Some((round, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bit;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(3);
        m.on_round_completed();
        m.on_round_completed();
        m.on_kills(Round::new(1), 2);
        m.on_kills(Round::new(2), 0); // zero-kill rounds are not recorded
        m.on_kills(Round::new(2), 1);
        m.on_delivered(10);
        m.on_suppressed(4);
        assert_eq!(m.rounds_completed(), 2);
        assert_eq!(m.total_kills(), 3);
        assert_eq!(m.kills_per_round().len(), 2);
        assert_eq!(m.messages_delivered(), 10);
        assert_eq!(m.messages_suppressed(), 4);
    }

    #[test]
    fn kills_per_round_is_sorted_and_merged() {
        let mut m = Metrics::new(8);
        // Duplicate and out-of-order recordings must still produce a
        // sorted, one-entry-per-round list.
        m.on_kills(Round::new(3), 1);
        m.on_kills(Round::new(1), 2);
        m.on_kills(Round::new(3), 4);
        m.on_kills(Round::new(2), 0); // ignored
        m.on_kills(Round::new(2), 3);
        m.on_kills(Round::new(1), 1);
        assert_eq!(
            m.kills_per_round(),
            &[(Round::new(1), 3), (Round::new(2), 3), (Round::new(3), 5)]
        );
        assert!(
            m.kills_per_round().windows(2).all(|w| w[0].0 < w[1].0),
            "strictly increasing rounds"
        );
        assert_eq!(m.total_kills(), 11);
    }

    #[test]
    fn first_decision_wins() {
        let mut m = Metrics::new(2);
        let p = ProcessId::new(1);
        m.on_decided(p, Round::new(3), Bit::One);
        // A later (buggy) re-decision must not overwrite the first record.
        m.on_decided(p, Round::new(5), Bit::Zero);
        assert_eq!(m.decided_at(p), Some((Round::new(3), Bit::One)));
        assert_eq!(m.decided_at(ProcessId::new(0)), None);
        assert_eq!(m.last_decision_round(), Some(Round::new(3)));
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::new(4);
        assert_eq!(m.rounds_completed(), 0);
        assert_eq!(m.total_kills(), 0);
        assert_eq!(m.last_decision_round(), None);
    }
}
