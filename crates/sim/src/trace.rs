//! Structured execution traces.

use std::fmt;

use crate::{Bit, ProcessId, Round};

/// One observable event in an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A round began (Phase A is about to run).
    RoundStarted(Round),
    /// The adversary failed a process this round.
    Killed {
        /// Who died.
        victim: ProcessId,
        /// When.
        round: Round,
        /// How many of its queued messages were still delivered.
        delivered: usize,
        /// How many of its queued messages were suppressed.
        suppressed: usize,
    },
    /// A process fixed its decision value.
    Decided {
        /// Who decided.
        pid: ProcessId,
        /// When.
        round: Round,
        /// The decision.
        value: Bit,
    },
    /// A process voluntarily stopped participating.
    Halted {
        /// Who halted.
        pid: ProcessId,
        /// When.
        round: Round,
    },
    /// A round finished (Phase B delivered and receives ran).
    RoundCompleted {
        /// Which round.
        round: Round,
        /// Messages delivered during the round.
        messages_delivered: u64,
    },
}

impl Event {
    /// Encodes the event as one JSON object with a stable field order
    /// (`"type"` first, then the fields in declaration order), matching the
    /// telemetry JSONL sink conventions.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Event::RoundStarted(r) => {
                format!("{{\"type\":\"round_started\",\"round\":{}}}", r.index())
            }
            Event::Killed {
                victim,
                round,
                delivered,
                suppressed,
            } => format!(
                "{{\"type\":\"killed\",\"victim\":{},\"round\":{},\"delivered\":{delivered},\"suppressed\":{suppressed}}}",
                victim.index(),
                round.index()
            ),
            Event::Decided { pid, round, value } => format!(
                "{{\"type\":\"decided\",\"pid\":{},\"round\":{},\"value\":{}}}",
                pid.index(),
                round.index(),
                value.as_u8()
            ),
            Event::Halted { pid, round } => format!(
                "{{\"type\":\"halted\",\"pid\":{},\"round\":{}}}",
                pid.index(),
                round.index()
            ),
            Event::RoundCompleted {
                round,
                messages_delivered,
            } => format!(
                "{{\"type\":\"round_completed\",\"round\":{},\"messages_delivered\":{messages_delivered}}}",
                round.index()
            ),
        }
    }

    /// Decodes an event from the JSON produced by
    /// [`to_json`](Event::to_json).
    ///
    /// Returns `None` for malformed input *and* for well-formed objects
    /// with an unknown `"type"` — the forward-compatibility contract for
    /// this `#[non_exhaustive]` enum: readers built against an older schema
    /// skip event kinds they don't know rather than failing the stream.
    #[must_use]
    pub fn from_json(s: &str) -> Option<Event> {
        let s = s.trim();
        let kind = json_str_field(s, "type")?;
        let round = || {
            json_u64_field(s, "round")
                .and_then(|r| u32::try_from(r).ok())
                .map(Round::new)
        };
        match kind {
            "round_started" => Some(Event::RoundStarted(round()?)),
            "killed" => Some(Event::Killed {
                victim: ProcessId::new(usize::try_from(json_u64_field(s, "victim")?).ok()?),
                round: round()?,
                delivered: usize::try_from(json_u64_field(s, "delivered")?).ok()?,
                suppressed: usize::try_from(json_u64_field(s, "suppressed")?).ok()?,
            }),
            "decided" => Some(Event::Decided {
                pid: ProcessId::new(usize::try_from(json_u64_field(s, "pid")?).ok()?),
                round: round()?,
                value: match json_u64_field(s, "value")? {
                    0 => Bit::Zero,
                    1 => Bit::One,
                    _ => return None,
                },
            }),
            "halted" => Some(Event::Halted {
                pid: ProcessId::new(usize::try_from(json_u64_field(s, "pid")?).ok()?),
                round: round()?,
            }),
            "round_completed" => Some(Event::RoundCompleted {
                round: round()?,
                messages_delivered: json_u64_field(s, "messages_delivered")?,
            }),
            _ => None,
        }
    }
}

/// Extracts the string value of `"key":"..."` from a flat JSON object.
fn json_str_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = s.find(&needle)? + needle.len();
    let end = s[start..].find('"')?;
    Some(&s[start..start + end])
}

/// Extracts the numeric value of `"key":<digits>` from a flat JSON object.
fn json_u64_field(s: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = s.find(&needle)? + needle.len();
    let digits: &str = &s[start..start + s[start..].find(|c: char| !c.is_ascii_digit())?];
    digits.parse().ok()
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::RoundStarted(r) => write!(f, "{r}: started"),
            Event::Killed {
                victim,
                round,
                delivered,
                suppressed,
            } => write!(
                f,
                "{round}: {victim} killed ({delivered} messages delivered, {suppressed} suppressed)"
            ),
            Event::Decided { pid, round, value } => {
                write!(f, "{round}: {pid} decided {value}")
            }
            Event::Halted { pid, round } => write!(f, "{round}: {pid} halted"),
            Event::RoundCompleted {
                round,
                messages_delivered,
            } => write!(f, "{round}: completed ({messages_delivered} messages)"),
        }
    }
}

/// An append-only event log, recorded only when tracing is enabled.
///
/// # Examples
///
/// ```
/// use synran_sim::{Event, Round, Trace};
///
/// let mut trace = Trace::enabled();
/// trace.record(|| Event::RoundStarted(Round::FIRST));
/// assert_eq!(trace.events().len(), 1);
///
/// let mut off = Trace::disabled();
/// off.record(|| Event::RoundStarted(Round::FIRST));
/// assert!(off.events().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A trace that records events.
    #[must_use]
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A trace that drops events (zero-cost in the hot path: the closure is
    /// never evaluated).
    #[must_use]
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event produced by `make` if tracing is enabled.
    ///
    /// Taking a closure keeps event construction out of traced-off runs.
    pub fn record(&mut self, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.events.push(make());
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over events of one round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| match e {
            Event::RoundStarted(r) => *r == round,
            Event::Killed { round: r, .. }
            | Event::Decided { round: r, .. }
            | Event::Halted { round: r, .. }
            | Event::RoundCompleted { round: r, .. } => *r == round,
        })
    }

    /// All kill events, in order.
    pub fn kills(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Killed { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStarted(Round::new(1)),
            Event::Killed {
                victim: ProcessId::new(2),
                round: Round::new(1),
                delivered: 3,
                suppressed: 5,
            },
            Event::RoundCompleted {
                round: Round::new(1),
                messages_delivered: 40,
            },
            Event::RoundStarted(Round::new(2)),
            Event::Decided {
                pid: ProcessId::new(0),
                round: Round::new(2),
                value: Bit::One,
            },
            Event::Halted {
                pid: ProcessId::new(0),
                round: Round::new(2),
            },
        ]
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        for e in sample_events() {
            t.record(|| e.clone());
        }
        assert_eq!(t.events().len(), 6);
        assert_eq!(t.events()[0], Event::RoundStarted(Round::new(1)));
    }

    #[test]
    fn disabled_trace_never_evaluates_closure() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.record(|| {
            evaluated = true;
            Event::RoundStarted(Round::FIRST)
        });
        assert!(!evaluated);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn round_filter_selects_correctly() {
        let mut t = Trace::enabled();
        for e in sample_events() {
            t.record(|| e.clone());
        }
        assert_eq!(t.in_round(Round::new(1)).count(), 3);
        assert_eq!(t.in_round(Round::new(2)).count(), 3);
        assert_eq!(t.in_round(Round::new(3)).count(), 0);
        assert_eq!(t.kills().count(), 1);
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        // `sample_events` covers all five variants; keep them in sync with
        // the enum (the match in `to_json` is exhaustive, so a new variant
        // fails compilation before it can fail this test).
        for e in sample_events() {
            let json = e.to_json();
            assert_eq!(
                Event::from_json(&json),
                Some(e.clone()),
                "round-trip failed for {json}"
            );
        }
    }

    #[test]
    fn json_schema_is_pinned() {
        // Field order and names are a published schema; sinks and external
        // consumers depend on these exact bytes.
        assert_eq!(
            Event::RoundStarted(Round::new(7)).to_json(),
            r#"{"type":"round_started","round":7}"#
        );
        assert_eq!(
            Event::Killed {
                victim: ProcessId::new(2),
                round: Round::new(1),
                delivered: 3,
                suppressed: 5,
            }
            .to_json(),
            r#"{"type":"killed","victim":2,"round":1,"delivered":3,"suppressed":5}"#
        );
        assert_eq!(
            Event::Decided {
                pid: ProcessId::new(0),
                round: Round::new(2),
                value: Bit::One,
            }
            .to_json(),
            r#"{"type":"decided","pid":0,"round":2,"value":1}"#
        );
        assert_eq!(
            Event::Halted {
                pid: ProcessId::new(4),
                round: Round::new(9),
            }
            .to_json(),
            r#"{"type":"halted","pid":4,"round":9}"#
        );
        assert_eq!(
            Event::RoundCompleted {
                round: Round::new(1),
                messages_delivered: 40,
            }
            .to_json(),
            r#"{"type":"round_completed","round":1,"messages_delivered":40}"#
        );
    }

    #[test]
    fn unknown_event_types_are_skipped_not_errors() {
        // Forward compatibility for the #[non_exhaustive] enum: a newer
        // writer's event kind decodes to None, not a panic or a mangled
        // variant.
        assert_eq!(
            Event::from_json(r#"{"type":"leader_elected","round":3,"pid":1}"#),
            None
        );
        // Malformed input is also None.
        assert_eq!(Event::from_json(""), None);
        assert_eq!(Event::from_json(r#"{"round":3}"#), None);
        assert_eq!(Event::from_json(r#"{"type":"decided","pid":0}"#), None);
        assert_eq!(
            Event::from_json(r#"{"type":"decided","pid":0,"round":1,"value":7}"#),
            None,
            "a bit can only be 0 or 1"
        );
    }

    #[test]
    fn events_display_readably() {
        for e in sample_events() {
            let s = e.to_string();
            assert!(s.contains("round"), "{s}");
        }
        let killed = Event::Killed {
            victim: ProcessId::new(2),
            round: Round::new(1),
            delivered: 3,
            suppressed: 5,
        };
        assert_eq!(
            killed.to_string(),
            "round 1: P2 killed (3 messages delivered, 5 suppressed)"
        );
    }
}
