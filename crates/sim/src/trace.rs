//! Structured execution traces.

use std::fmt;

use crate::{Bit, ProcessId, Round};

/// One observable event in an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A round began (Phase A is about to run).
    RoundStarted(Round),
    /// The adversary failed a process this round.
    Killed {
        /// Who died.
        victim: ProcessId,
        /// When.
        round: Round,
        /// How many of its queued messages were still delivered.
        delivered: usize,
        /// How many of its queued messages were suppressed.
        suppressed: usize,
    },
    /// A process fixed its decision value.
    Decided {
        /// Who decided.
        pid: ProcessId,
        /// When.
        round: Round,
        /// The decision.
        value: Bit,
    },
    /// A process voluntarily stopped participating.
    Halted {
        /// Who halted.
        pid: ProcessId,
        /// When.
        round: Round,
    },
    /// A round finished (Phase B delivered and receives ran).
    RoundCompleted {
        /// Which round.
        round: Round,
        /// Messages delivered during the round.
        messages_delivered: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::RoundStarted(r) => write!(f, "{r}: started"),
            Event::Killed {
                victim,
                round,
                delivered,
                suppressed,
            } => write!(
                f,
                "{round}: {victim} killed ({delivered} messages delivered, {suppressed} suppressed)"
            ),
            Event::Decided { pid, round, value } => {
                write!(f, "{round}: {pid} decided {value}")
            }
            Event::Halted { pid, round } => write!(f, "{round}: {pid} halted"),
            Event::RoundCompleted {
                round,
                messages_delivered,
            } => write!(f, "{round}: completed ({messages_delivered} messages)"),
        }
    }
}

/// An append-only event log, recorded only when tracing is enabled.
///
/// # Examples
///
/// ```
/// use synran_sim::{Event, Round, Trace};
///
/// let mut trace = Trace::enabled();
/// trace.record(|| Event::RoundStarted(Round::FIRST));
/// assert_eq!(trace.events().len(), 1);
///
/// let mut off = Trace::disabled();
/// off.record(|| Event::RoundStarted(Round::FIRST));
/// assert!(off.events().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A trace that records events.
    #[must_use]
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A trace that drops events (zero-cost in the hot path: the closure is
    /// never evaluated).
    #[must_use]
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event produced by `make` if tracing is enabled.
    ///
    /// Taking a closure keeps event construction out of traced-off runs.
    pub fn record(&mut self, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.events.push(make());
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over events of one round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| match e {
            Event::RoundStarted(r) => *r == round,
            Event::Killed { round: r, .. }
            | Event::Decided { round: r, .. }
            | Event::Halted { round: r, .. }
            | Event::RoundCompleted { round: r, .. } => *r == round,
        })
    }

    /// All kill events, in order.
    pub fn kills(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Killed { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStarted(Round::new(1)),
            Event::Killed {
                victim: ProcessId::new(2),
                round: Round::new(1),
                delivered: 3,
                suppressed: 5,
            },
            Event::RoundCompleted {
                round: Round::new(1),
                messages_delivered: 40,
            },
            Event::RoundStarted(Round::new(2)),
            Event::Decided {
                pid: ProcessId::new(0),
                round: Round::new(2),
                value: Bit::One,
            },
            Event::Halted {
                pid: ProcessId::new(0),
                round: Round::new(2),
            },
        ]
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        for e in sample_events() {
            t.record(|| e.clone());
        }
        assert_eq!(t.events().len(), 6);
        assert_eq!(t.events()[0], Event::RoundStarted(Round::new(1)));
    }

    #[test]
    fn disabled_trace_never_evaluates_closure() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.record(|| {
            evaluated = true;
            Event::RoundStarted(Round::FIRST)
        });
        assert!(!evaluated);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn round_filter_selects_correctly() {
        let mut t = Trace::enabled();
        for e in sample_events() {
            t.record(|| e.clone());
        }
        assert_eq!(t.in_round(Round::new(1)).count(), 3);
        assert_eq!(t.in_round(Round::new(2)).count(), 3);
        assert_eq!(t.in_round(Round::new(3)).count(), 0);
        assert_eq!(t.kills().count(), 1);
    }

    #[test]
    fn events_display_readably() {
        for e in sample_events() {
            let s = e.to_string();
            assert!(s.contains("round"), "{s}");
        }
        let killed = Event::Killed {
            victim: ProcessId::new(2),
            round: Round::new(1),
            delivered: 3,
            suppressed: 5,
        };
        assert_eq!(
            killed.to_string(),
            "round 1: P2 killed (3 messages delivered, 5 suppressed)"
        );
    }
}
