//! The synchronous world: round engine, fault enforcement, and forking.

use std::sync::{Arc, Mutex, PoisonError};

use crate::{
    telemetry::per_round_kill_cap, trace::Event, Adversary, Bit, BitPlane, Context, DeliveryFilter,
    FaultBudget, Inbox, Intervention, Kill, Metrics, PlaneMsg, Process, ProcessId, Round,
    RunReport, SendPattern, SimConfig, SimError, SimRng, StreamPhase, Telemetry, Trace,
};

/// Lifecycle of a process within an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessStatus {
    /// Participating normally.
    Alive,
    /// Voluntarily stopped in the given round (decided and terminated).
    Halted(Round),
    /// Failed by the adversary in the given round.
    Failed(Round),
}

impl ProcessStatus {
    /// `true` for processes still stepping each round.
    #[must_use]
    pub fn is_alive(self) -> bool {
        matches!(self, ProcessStatus::Alive)
    }

    /// `true` for processes the adversary failed.
    #[must_use]
    pub fn is_failed(self) -> bool {
        matches!(self, ProcessStatus::Failed(_))
    }

    /// `true` for processes that terminated voluntarily.
    #[must_use]
    pub fn is_halted(self) -> bool {
        matches!(self, ProcessStatus::Halted(_))
    }
}

/// Which half of the round the world is paused at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Phase A (computing and sending) has not run yet this round.
    BeforeSend,
    /// Phase A ran; outboxes are queued; awaiting the adversary and
    /// delivery (Phase B).
    BeforeDeliver,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::BeforeSend => "BeforeSend",
            Phase::BeforeDeliver => "BeforeDeliver",
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<P> {
    proc: P,
    status: ProcessStatus,
}

/// Sentinel in [`RoundScratch::filter_of`]: the sender was not killed this
/// round.
const NO_KILL: u32 = u32::MAX;

/// Bookkeeping for one kill while a round's delivery is in flight.
#[derive(Debug)]
struct KillStat {
    victim: ProcessId,
    delivered: usize,
    suppressed: usize,
    /// Whether the victim had an outbox to filter (it always does after a
    /// normal Phase A; kept for robustness and trace parity).
    had_outbox: bool,
}

/// A kill whose [`DeliveryFilter`] lets only *some* recipients hear the
/// victim's broadcast, recorded for the plane fast path as the victim's
/// sender bit, packed value, and allowed-recipient mask.
#[derive(Debug)]
struct PartialKill {
    sender: usize,
    one: bool,
    allowed: BitPlane,
}

/// Reusable per-round buffers, pooled across rounds so [`World::deliver`]
/// performs no per-round allocations once the inbox buffers have warmed up.
///
/// Invariant: between [`World::deliver`] calls every inbox buffer is empty,
/// `kill_stats` and `partials` are empty, the round planes (`sent_base`,
/// `ones_base`, `adj_mark`) are all-zeros, and every `filter_of` entry is
/// [`NO_KILL`] — so a freshly constructed scratch is interchangeable with a
/// used one, which is what lets [`Clone`] hand forks an empty pool.
#[derive(Debug)]
pub(crate) struct RoundScratch<M> {
    /// Per-recipient message buffers (scalar path), recycled through
    /// [`Inbox::into_messages`] each round.
    inboxes: Vec<Vec<(ProcessId, M)>>,
    /// Per-sender index into this round's kill list, or [`NO_KILL`].
    filter_of: Vec<u32>,
    /// Delivery stats per kill, in intervention order.
    kill_stats: Vec<KillStat>,
    /// Plane path: bit `s` set iff sender `s` broadcast to everyone.
    sent_base: BitPlane,
    /// Plane path: bit `s` set iff that broadcast packed to [`Bit::One`].
    ones_base: BitPlane,
    /// Plane path: partially-filtered kills this round (rare).
    partials: Vec<PartialKill>,
    /// Union of the `partials` allowed masks: recipients needing an
    /// adjusted inbox instead of the shared base planes.
    adj_mark: BitPlane,
    /// Pooled planes the adjusted inboxes are rebuilt in.
    adj_sent: BitPlane,
    /// Pooled value plane paired with `adj_sent`.
    adj_ones: BitPlane,
    /// Recycled allowed-mask planes for future `partials`.
    mask_pool: Vec<BitPlane>,
}

impl<M> RoundScratch<M> {
    pub(crate) fn new(n: usize) -> RoundScratch<M> {
        RoundScratch {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            filter_of: vec![NO_KILL; n],
            kill_stats: Vec::new(),
            sent_base: BitPlane::new(n),
            ones_base: BitPlane::new(n),
            partials: Vec::new(),
            adj_mark: BitPlane::new(n),
            adj_sent: BitPlane::new(n),
            adj_ones: BitPlane::new(n),
            mask_pool: Vec::new(),
        }
    }
}

/// Retired [`RoundScratch`] buffers queued for re-use by future forks of
/// one [`WorldSnapshot`].
///
/// The scratch invariant (clean between `deliver` calls) is what makes
/// recycling sound: a warmed-up scratch and a fresh one are observationally
/// interchangeable, differing only in the capacity of their pooled buffers.
/// So a fork that inherits another fork's scratch computes bit-identical
/// results — it just skips re-growing the buffers.
#[derive(Debug)]
struct ScratchPool<M> {
    pool: Mutex<Vec<RoundScratch<M>>>,
}

/// Retired scratches kept per snapshot. Bounds memory when far more forks
/// retire than run concurrently; beyond the cap, scratches just drop.
const SCRATCH_POOL_CAP: usize = 64;

impl<M> ScratchPool<M> {
    fn empty() -> ScratchPool<M> {
        ScratchPool {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pops a recycled scratch, or builds a fresh width-`n` one.
    fn take(&self, n: usize) -> RoundScratch<M> {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| RoundScratch::new(n))
    }

    fn put(&self, scratch: RoundScratch<M>) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }
}

/// A complete synchronous execution in progress.
///
/// The world is an explicit state machine so that adversaries can pause it
/// mid-round: each round is [`World::phase_a`] (every alive process flips
/// coins and queues messages) followed by [`World::deliver`] (the adversary's
/// intervention is validated and applied, surviving messages delivered, and
/// every alive process consumes its inbox). [`World::run`] drives both
/// phases to completion under a given adversary.
///
/// Worlds are `Clone` when the process type is, and [`World::fork`] produces
/// an identical copy with fresh future randomness — the primitive the
/// valency-estimating adversaries of `synran-adversary` are built on.
///
/// # Examples
///
/// ```
/// use synran_sim::{Passive, SimConfig, World};
/// use synran_sim::testing::Echo;
///
/// let cfg = SimConfig::new(8).seed(7);
/// let mut world = World::new(cfg, |pid| Echo::new(synran_sim::Bit::from(pid.index() % 2 == 0)))?;
/// let report = world.run(&mut Passive)?;
/// assert_eq!(report.rounds(), 1);
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct World<P: Process> {
    /// Shared, not owned: forks and snapshots of this world bump the `Arc`
    /// instead of cloning the config (copy-on-write — the only mutation,
    /// [`World::fork_bounded`] tightening `max_rounds`, makes a new `Arc`).
    cfg: Arc<SimConfig>,
    round: Round,
    phase: Phase,
    slots: Vec<Slot<P>>,
    outboxes: Vec<Option<SendPattern<P::Msg>>>,
    budget: FaultBudget,
    metrics: Metrics,
    trace: Trace,
    telemetry: Telemetry,
    seed: u64,
    /// Bit `i` set iff process `i` is [`ProcessStatus::Alive`] — kept in
    /// lockstep with `slots` so liveness queries (and the adversaries'
    /// candidate-mask algebra) are popcounts instead of status scans.
    alive: BitPlane,
    scratch: RoundScratch<P::Msg>,
    /// Where `scratch` returns when this world retires (snapshot forks
    /// only): [`World::into_report`] and [`World::retire`] push it back so
    /// the next fork inherits warmed-up buffers.
    scratch_home: Option<Arc<ScratchPool<P::Msg>>>,
}

impl<P> Clone for World<P>
where
    P: Process + Clone,
{
    /// Clones the observable execution state. The clone gets a fresh (empty)
    /// scratch pool rather than a copy of the parent's warmed-up buffers:
    /// scratch is empty between rounds by invariant, so this changes nothing
    /// observable, and it keeps mid-estimation forks cheap.
    fn clone(&self) -> World<P> {
        World {
            cfg: Arc::clone(&self.cfg),
            round: self.round,
            phase: self.phase,
            slots: self.slots.clone(),
            outboxes: self.outboxes.clone(),
            budget: self.budget,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            telemetry: self.telemetry.clone(),
            seed: self.seed,
            alive: self.alive.clone(),
            scratch: RoundScratch::new(self.cfg.n()),
            scratch_home: None,
        }
    }
}

impl<P: Process> World<P> {
    /// Builds a world of `cfg.n()` processes, constructing each with
    /// `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// [`SimConfig::validate`].
    pub fn new(
        cfg: SimConfig,
        mut factory: impl FnMut(ProcessId) -> P,
    ) -> Result<World<P>, SimError> {
        cfg.validate()?;
        let n = cfg.n();
        let slots = ProcessId::all(n)
            .map(|pid| Slot {
                proc: factory(pid),
                status: ProcessStatus::Alive,
            })
            .collect();
        let trace = if cfg.trace_enabled() {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        Ok(World {
            seed: cfg.seed_value(),
            budget: FaultBudget::new(cfg.t()),
            metrics: Metrics::new(n),
            trace,
            telemetry: Telemetry::off(),
            round: Round::FIRST,
            phase: Phase::BeforeSend,
            outboxes: (0..n).map(|_| None).collect(),
            slots,
            alive: BitPlane::full(n),
            scratch: RoundScratch::new(n),
            scratch_home: None,
            cfg: Arc::new(cfg),
        })
    }

    // ----- accessors -------------------------------------------------------

    /// System size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cfg.n()
    }

    /// The configuration this world was built from.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The round currently executing (or about to execute).
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// `true` while the world is paused between Phase A and Phase B.
    #[must_use]
    pub fn awaiting_delivery(&self) -> bool {
        self.phase == Phase::BeforeDeliver
    }

    /// The fault budget (total, used, remaining).
    #[must_use]
    pub fn budget(&self) -> &FaultBudget {
        &self.budget
    }

    /// Execution metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The telemetry handle this world records into (off by default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a telemetry handle; subsequent rounds record engine
    /// counters (and, in span mode, phase timings) into it.
    ///
    /// Telemetry is **observe-only**: the execution — decisions, statuses,
    /// metrics, trace, every coin — is byte-identical whatever handle (or
    /// none) is attached. Forks made with [`World::fork`] detach it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Lifecycle status of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn status(&self, pid: ProcessId) -> ProcessStatus {
        self.slots[pid.index()].status
    }

    /// Full-information access to the local state of `pid`.
    ///
    /// This is what makes the adversary *full information*: it may read
    /// every local variable and coin of every process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn process(&self, pid: ProcessId) -> &P {
        &self.slots[pid.index()].proc
    }

    /// Iterates over `(pid, process, status)` for all processes.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &P, ProcessStatus)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (ProcessId::new(i), &s.proc, s.status))
    }

    /// Ids of all processes still participating, in ascending order.
    pub fn alive_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.alive.ids()
    }

    /// The alive set as a [`BitPlane`]: bit `i` set iff process `i` is
    /// [`ProcessStatus::Alive`].
    ///
    /// Adversaries build their candidate sets from this mask with
    /// `and`/`andnot` algebra instead of scanning statuses.
    #[must_use]
    pub fn alive_mask(&self) -> &BitPlane {
        &self.alive
    }

    /// Number of processes still participating.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive.count_ones()
    }

    /// The message pattern `pid` queued this round, if the world is paused
    /// between phases and `pid` sent something.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn outbox(&self, pid: ProcessId) -> Option<&SendPattern<P::Msg>> {
        self.outboxes[pid.index()].as_ref()
    }

    /// The master seed of this world.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` once no process is actively participating (every process has
    /// halted or been failed).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.alive.is_empty()
    }

    /// Current decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<Bit>> {
        self.slots.iter().map(|s| s.proc.decision()).collect()
    }

    // ----- stepping --------------------------------------------------------

    /// Runs Phase A of the current round: every alive process flips its
    /// coins and queues its messages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PhaseViolation`] if Phase A already ran this
    /// round, or [`SimError::InvalidRecipient`] if a process addressed a
    /// nonexistent or duplicated recipient.
    pub fn phase_a(&mut self) -> Result<(), SimError> {
        if self.phase != Phase::BeforeSend {
            return Err(SimError::PhaseViolation {
                operation: "run phase A",
                phase: self.phase.name(),
            });
        }
        let _span = self.telemetry.span("round.phase_a");
        let round = self.round;
        self.trace.record(|| Event::RoundStarted(round));
        let n = self.n();
        for i in 0..n {
            if !self.slots[i].status.is_alive() {
                self.outboxes[i] = None;
                continue;
            }
            let pid = ProcessId::new(i);
            let mut rng = SimRng::stream(self.seed, pid, round, StreamPhase::Send);
            let mut ctx = Context::new(pid, n, round, &mut rng);
            let pattern = self.slots[i].proc.send(&mut ctx);
            validate_pattern(&pattern, pid, n)?;
            self.note_decision(pid);
            self.outboxes[i] = Some(pattern);
        }
        self.phase = Phase::BeforeDeliver;
        Ok(())
    }

    /// Runs Phase B of the current round: validates and applies the
    /// adversary's `intervention`, delivers surviving messages, and lets
    /// every alive process consume its inbox.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PhaseViolation`] if Phase A has not run,
    /// [`SimError::BudgetExceeded`] / [`SimError::NotAlive`] /
    /// [`SimError::UnknownProcess`] / [`SimError::DuplicateVictim`] if the
    /// intervention is illegal. On any error the world is unchanged.
    pub fn deliver(&mut self, intervention: Intervention) -> Result<(), SimError> {
        if self.phase != Phase::BeforeDeliver {
            return Err(SimError::PhaseViolation {
                operation: "deliver",
                phase: self.phase.name(),
            });
        }
        let _span = self.telemetry.span("round.deliver");
        let round = self.round;
        let n = self.n();

        // Validate the intervention fully before mutating anything.
        let kills = intervention.kills();
        for (idx, kill) in kills.iter().enumerate() {
            if kill.victim.index() >= n {
                return Err(SimError::UnknownProcess {
                    pid: kill.victim,
                    n,
                });
            }
            if !self.slots[kill.victim.index()].status.is_alive() {
                return Err(SimError::NotAlive {
                    pid: kill.victim,
                    round,
                });
            }
            if kills[..idx].iter().any(|k| k.victim == kill.victim) {
                return Err(SimError::DuplicateVictim { pid: kill.victim });
            }
        }
        self.budget.try_spend(kills.len(), round)?;

        // Apply the kills, marking each victim's slot in the pooled
        // per-sender kill-index table (tracked during dispatch so the trace
        // needs no rescan afterwards).
        debug_assert!(self.scratch.kill_stats.is_empty());
        for (idx, kill) in kills.iter().enumerate() {
            self.slots[kill.victim.index()].status = ProcessStatus::Failed(round);
            self.alive.clear(kill.victim.index());
            self.scratch.filter_of[kill.victim.index()] = idx as u32;
            self.scratch.kill_stats.push(KillStat {
                victim: kill.victim,
                delivered: 0,
                suppressed: 0,
                had_outbox: false,
            });
        }
        self.metrics.on_kills(round, kills.len());

        // Pick the round's delivery representation. When every queued
        // pattern is a broadcast whose payload packs to a bit (or silence),
        // the round collapses into shared bit planes — one sent bit and one
        // value bit per sender — instead of n² pairs. Any `To` pattern or
        // structured payload falls back to the scalar pair path. The two
        // paths are observationally identical (same inboxes, metrics,
        // traces, and RNG streams), pinned by the plane/scalar differential
        // tests; the counters below are the one intentional difference.
        let plane_round = self.outboxes.iter().flatten().all(|pattern| match pattern {
            SendPattern::Broadcast(m) => m.pack().is_some(),
            SendPattern::To(_) => false,
            SendPattern::Silent => true,
        });
        let (delivered, suppressed) = if plane_round {
            self.telemetry.incr("round.deliver.plane", 1);
            self.dispatch_plane(kills)
        } else {
            self.telemetry.incr("round.deliver.scalar", 1);
            self.dispatch_scalar(kills)
        };
        self.metrics.on_delivered(delivered);
        self.metrics.on_suppressed(suppressed);
        // Trace the kills: victims that had an outbox first, in sender-id
        // order (matching dispatch order), then outbox-less victims in
        // intervention order — the stats were tracked during dispatch, so no
        // trace rescan is needed.
        if self.trace.is_enabled() {
            for s in 0..n {
                let kill_idx = self.scratch.filter_of[s];
                if kill_idx == NO_KILL {
                    continue;
                }
                let stat = &self.scratch.kill_stats[kill_idx as usize];
                if stat.had_outbox {
                    let (victim, d, cut) = (stat.victim, stat.delivered, stat.suppressed);
                    self.trace.record(|| Event::Killed {
                        victim,
                        round,
                        delivered: d,
                        suppressed: cut,
                    });
                }
            }
            for stat in &self.scratch.kill_stats {
                if !stat.had_outbox {
                    let victim = stat.victim;
                    self.trace.record(|| Event::Killed {
                        victim,
                        round,
                        delivered: 0,
                        suppressed: 0,
                    });
                }
            }
        }
        // Restore the scratch invariant in O(kills), not O(n).
        for stat in &self.scratch.kill_stats {
            self.scratch.filter_of[stat.victim.index()] = NO_KILL;
        }
        self.scratch.kill_stats.clear();

        // Receives: every still-alive process consumes its inbox.
        if plane_round {
            self.receive_plane(round);
        } else {
            self.receive_scalar(round);
        }

        self.metrics.on_round_completed();
        let kill_count = kills.len() as u64;
        self.telemetry.record_round(
            kill_count,
            delivered,
            suppressed,
            kill_count > per_round_kill_cap(n),
        );
        self.trace.record(|| Event::RoundCompleted {
            round,
            messages_delivered: delivered,
        });
        self.round = round.next();
        self.phase = Phase::BeforeSend;
        Ok(())
    }

    /// Scalar-path dispatch: walks senders in id order, pushing surviving
    /// `(sender, message)` pairs into the pooled per-recipient buffers so
    /// each inbox stays sorted. Returns `(delivered, suppressed)` totals.
    fn dispatch_scalar(&mut self, kills: &[Kill]) -> (u64, u64) {
        let n = self.n();
        let mut delivered: u64 = 0;
        let mut suppressed: u64 = 0;
        let slots = &self.slots;
        let outboxes = &mut self.outboxes;
        let scratch = &mut self.scratch;
        // Indexing several parallel arrays; an enumerate chain would
        // obscure it.
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            let Some(pattern) = outboxes[s].take() else {
                continue;
            };
            let sender = ProcessId::new(s);
            let kill_idx = scratch.filter_of[s];
            let filter: Option<&DeliveryFilter> = if kill_idx == NO_KILL {
                None
            } else {
                Some(&kills[kill_idx as usize].delivered)
            };
            let mut sent_here = 0usize;
            let mut cut_here = 0usize;
            let inboxes = &mut scratch.inboxes;
            let mut dispatch = |to: ProcessId, msg: P::Msg| {
                let allowed = filter.is_none_or(|f| f.allows(to));
                if allowed {
                    // Dead or halted recipients silently drop mail; the
                    // message still "arrived" per the reliable-links model.
                    if slots[to.index()].status.is_alive() {
                        inboxes[to.index()].push((sender, msg));
                    }
                    sent_here += 1;
                } else {
                    cut_here += 1;
                }
            };
            match pattern {
                SendPattern::Broadcast(m) => {
                    for r in 0..n {
                        dispatch(ProcessId::new(r), m.clone());
                    }
                }
                SendPattern::To(list) => {
                    for (to, m) in list {
                        dispatch(to, m);
                    }
                }
                SendPattern::Silent => {}
            }
            delivered += sent_here as u64;
            suppressed += cut_here as u64;
            if kill_idx != NO_KILL {
                let stat = &mut scratch.kill_stats[kill_idx as usize];
                stat.had_outbox = true;
                stat.delivered = sent_here;
                stat.suppressed = cut_here;
            }
        }
        (delivered, suppressed)
    }

    /// Plane-path dispatch: every surviving broadcast becomes one bit in
    /// the shared round planes; partially-filtered kills are recorded as
    /// exception masks instead of per-pair work. Per-sender accounting
    /// (delivered/suppressed, kill stats) matches
    /// [`dispatch_scalar`](Self::dispatch_scalar) exactly — including the
    /// reliable-links rule that a message to a dead recipient still counts
    /// as delivered.
    fn dispatch_plane(&mut self, kills: &[Kill]) -> (u64, u64) {
        let n = self.n();
        let mut delivered: u64 = 0;
        let mut suppressed: u64 = 0;
        let scratch = &mut self.scratch;
        debug_assert!(scratch.partials.is_empty());
        for s in 0..n {
            let Some(pattern) = self.outboxes[s].take() else {
                continue;
            };
            let kill_idx = scratch.filter_of[s];
            let bit = match pattern {
                SendPattern::Broadcast(m) => m.pack(),
                SendPattern::Silent => None,
                SendPattern::To(_) => {
                    unreachable!("plane rounds hold only packable broadcasts and silence")
                }
            };
            let (sent_here, cut_here) = match bit {
                // A silent sender reaches (and is cut from) no one.
                None => (0, 0),
                Some(bit) => {
                    let filter = if kill_idx == NO_KILL {
                        None
                    } else {
                        Some(&kills[kill_idx as usize].delivered)
                    };
                    match filter {
                        None | Some(DeliveryFilter::All) => {
                            scratch.sent_base.set(s);
                            if bit.is_one() {
                                scratch.ones_base.set(s);
                            }
                            (n, 0)
                        }
                        Some(DeliveryFilter::None) => (0, n),
                        Some(DeliveryFilter::To(list)) => {
                            let mut allowed = take_mask(&mut scratch.mask_pool, n);
                            for to in list {
                                if to.index() < n {
                                    allowed.set(to.index());
                                }
                            }
                            let reach = allowed.count_ones();
                            scratch.adj_mark.union_with(&allowed);
                            scratch.partials.push(PartialKill {
                                sender: s,
                                one: bit.is_one(),
                                allowed,
                            });
                            (reach, n - reach)
                        }
                        Some(DeliveryFilter::Prefix(k)) => {
                            let reach = (*k).min(n);
                            let mut allowed = take_mask(&mut scratch.mask_pool, n);
                            for r in 0..reach {
                                allowed.set(r);
                            }
                            scratch.adj_mark.union_with(&allowed);
                            scratch.partials.push(PartialKill {
                                sender: s,
                                one: bit.is_one(),
                                allowed,
                            });
                            (reach, n - reach)
                        }
                    }
                }
            };
            delivered += sent_here as u64;
            suppressed += cut_here as u64;
            if kill_idx != NO_KILL {
                let stat = &mut scratch.kill_stats[kill_idx as usize];
                stat.had_outbox = true;
                stat.delivered = sent_here;
                stat.suppressed = cut_here;
            }
        }
        (delivered, suppressed)
    }

    /// Scalar-path receives: each alive process consumes its pair buffer,
    /// which round-trips through the [`Inbox`] and returns to the pool.
    fn receive_scalar(&mut self, round: Round) {
        let n = self.n();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !self.slots[i].status.is_alive() {
                continue;
            }
            let pid = ProcessId::new(i);
            let inbox = Inbox::from_messages(std::mem::take(&mut self.scratch.inboxes[i]));
            let mut rng = SimRng::stream(self.seed, pid, round, StreamPhase::Receive);
            let mut ctx = Context::new(pid, n, round, &mut rng);
            self.slots[i].proc.receive(&mut ctx, &inbox);
            let mut buffer = inbox.into_messages();
            buffer.clear();
            self.scratch.inboxes[i] = buffer;
            self.note_decision(pid);
            if self.slots[i].proc.halted() {
                self.slots[i].status = ProcessStatus::Halted(round);
                self.alive.clear(i);
                self.trace.record(|| Event::Halted { pid, round });
            }
        }
    }

    /// Plane-path receives: all alive processes share one plane-backed
    /// inbox built from the round planes; recipients named by a partial
    /// kill get a pooled adjusted copy with the extra sender bits set.
    /// Visit order, RNG streams, and halt/decision bookkeeping match
    /// [`receive_scalar`](Self::receive_scalar) exactly.
    fn receive_plane(&mut self, round: Round) {
        let n = self.n();
        let sent = std::mem::take(&mut self.scratch.sent_base);
        let ones = std::mem::take(&mut self.scratch.ones_base);
        let base: Inbox<P::Msg> = Inbox::from_plane(sent, ones);
        for i in 0..n {
            if !self.slots[i].status.is_alive() {
                continue;
            }
            let pid = ProcessId::new(i);
            let mut rng = SimRng::stream(self.seed, pid, round, StreamPhase::Receive);
            let mut ctx = Context::new(pid, n, round, &mut rng);
            if self.scratch.adj_mark.get(i) {
                let mut adj_sent = std::mem::take(&mut self.scratch.adj_sent);
                let mut adj_ones = std::mem::take(&mut self.scratch.adj_ones);
                let (base_sent, base_ones) = base.planes().expect("base inbox is plane-backed");
                adj_sent.copy_from(base_sent);
                adj_ones.copy_from(base_ones);
                for partial in &self.scratch.partials {
                    if partial.allowed.get(i) {
                        adj_sent.set(partial.sender);
                        if partial.one {
                            adj_ones.set(partial.sender);
                        }
                    }
                }
                let adjusted: Inbox<P::Msg> = Inbox::from_plane(adj_sent, adj_ones);
                self.slots[i].proc.receive(&mut ctx, &adjusted);
                let (s, o) = adjusted
                    .into_planes()
                    .expect("adjusted inbox is plane-backed");
                self.scratch.adj_sent = s;
                self.scratch.adj_ones = o;
            } else {
                self.slots[i].proc.receive(&mut ctx, &base);
            }
            self.note_decision(pid);
            if self.slots[i].proc.halted() {
                self.slots[i].status = ProcessStatus::Halted(round);
                self.alive.clear(i);
                self.trace.record(|| Event::Halted { pid, round });
            }
        }
        // Restore the scratch invariant: planes cleared and returned to the
        // pool, exception masks recycled.
        let (mut sent, mut ones) = base.into_planes().expect("base inbox is plane-backed");
        sent.clear_all();
        ones.clear_all();
        self.scratch.sent_base = sent;
        self.scratch.ones_base = ones;
        self.scratch.adj_mark.clear_all();
        while let Some(partial) = self.scratch.partials.pop() {
            let mut mask = partial.allowed;
            mask.clear_all();
            self.scratch.mask_pool.push(mask);
        }
    }

    /// Drives the world to completion under `adversary`.
    ///
    /// Works from any phase, so a mid-round [`fork`](World::fork) can be
    /// resumed directly: if Phase A already ran, the adversary is consulted
    /// for the pending round first.
    ///
    /// # Errors
    ///
    /// Propagates any stepping error, and returns
    /// [`SimError::MaxRoundsExceeded`] if the execution outlives the
    /// configured limit.
    pub fn run<A: Adversary<P>>(&mut self, adversary: &mut A) -> Result<RunReport, SimError> {
        self.drive(adversary)?;
        Ok(self.report())
    }

    /// Drives the world to completion under `adversary` without building a
    /// report.
    ///
    /// The loop behind [`run`](World::run), split out for callers that
    /// finish with [`into_report`](World::into_report) (no metrics/trace
    /// clone) or that only inspect the final world state.
    ///
    /// # Errors
    ///
    /// Propagates any stepping error, and returns
    /// [`SimError::MaxRoundsExceeded`] if the execution outlives the
    /// configured limit.
    pub fn drive<A: Adversary<P>>(&mut self, adversary: &mut A) -> Result<(), SimError> {
        // Guards own their hub handle, so holding one across `&mut self`
        // calls is fine.
        let _span = self.telemetry.span("world.drive");
        while !self.finished() {
            if self.round.index() > self.cfg.max_rounds_value() {
                return Err(SimError::MaxRoundsExceeded {
                    limit: self.cfg.max_rounds_value(),
                });
            }
            if self.phase == Phase::BeforeSend {
                self.phase_a()?;
            }
            let intervention = {
                let _adv = self.telemetry.span("round.adversary");
                adversary.intervene(self)
            };
            self.deliver(intervention)?;
        }
        Ok(())
    }

    /// Summarises the execution so far.
    #[must_use]
    pub fn report(&self) -> RunReport {
        RunReport::new(
            self.slots.iter().map(|s| s.proc.decision()).collect(),
            self.slots.iter().map(|s| s.status).collect(),
            self.metrics.clone(),
            self.trace.clone(),
        )
    }

    /// Consumes the world into a report, moving the metrics and trace
    /// instead of cloning them.
    ///
    /// Prefer `drive` + `into_report` over [`run`](World::run) when the
    /// world is not needed afterwards — on traced runs this skips copying
    /// the entire event log.
    #[must_use]
    pub fn into_report(mut self) -> RunReport {
        self.recycle_scratch();
        RunReport::new(
            self.slots.iter().map(|s| s.proc.decision()).collect(),
            self.slots.iter().map(|s| s.status).collect(),
            self.metrics,
            self.trace,
        )
    }

    /// Discards this world, returning its scratch buffers to the snapshot
    /// pool they came from (if any).
    ///
    /// Call this instead of plain `drop` on error paths that abandon a
    /// snapshot fork without [`into_report`](World::into_report) — e.g. a
    /// valency probe that hit its horizon — so the next fork from the same
    /// snapshot inherits the warmed-up buffers.
    pub fn retire(mut self) {
        self.recycle_scratch();
    }

    /// Pushes the (clean, by invariant) scratch back to its home pool,
    /// leaving a zero-width placeholder behind.
    fn recycle_scratch(&mut self) {
        if let Some(home) = self.scratch_home.take() {
            home.put(std::mem::replace(&mut self.scratch, RoundScratch::new(0)));
        }
    }

    /// Exchanges this world's round scratch with `scratch` (the cohort
    /// engine's per-lane caddy).
    ///
    /// Sound by the scratch invariant: between [`World::deliver`] calls a
    /// scratch is clean, so any clean width-`n` scratch is observationally
    /// interchangeable with the world's own. The caller must swap a
    /// width-`n` scratch in before stepping the world and may swap it back
    /// out once the step completes ([`World::phase_a`] and adversary
    /// `intervene` never touch scratch, so only `deliver` needs it).
    pub(crate) fn swap_scratch(&mut self, scratch: &mut RoundScratch<P::Msg>) {
        std::mem::swap(&mut self.scratch, scratch);
    }

    fn note_decision(&mut self, pid: ProcessId) {
        if let Some(value) = self.slots[pid.index()].proc.decision() {
            if self.metrics.decided_at(pid).is_none() {
                let round = self.round;
                self.metrics.on_decided(pid, round, value);
                self.telemetry.record_decision(round.index());
                self.trace.record(|| Event::Decided { pid, round, value });
            }
        }
    }
}

impl<P> World<P>
where
    P: Process + Clone,
    P::Msg: Clone,
{
    /// Clones this world, rebasing all *future* randomness on `seed`.
    ///
    /// The copy has identical process states, statuses, queued outboxes,
    /// budget, and round position — but coins not yet flipped will differ
    /// between forks with different seeds. This is the primitive behind
    /// Monte-Carlo valency estimation: fork the paused world many times,
    /// resume each under a reference adversary, and observe the empirical
    /// distribution of decisions.
    #[must_use]
    pub fn fork(&self, seed: u64) -> World<P> {
        World {
            cfg: Arc::clone(&self.cfg),
            round: self.round,
            phase: self.phase,
            slots: self.slots.clone(),
            outboxes: self.outboxes.clone(),
            budget: self.budget,
            metrics: self.metrics.clone(),
            // Forked futures are throwaway explorations; tracing them would
            // dominate memory in valency estimation, and telemetry from
            // thousands of probe forks would drown the parent's signal — the
            // estimators count probe outcomes themselves instead.
            trace: Trace::disabled(),
            telemetry: Telemetry::off(),
            seed,
            alive: self.alive.clone(),
            scratch: RoundScratch::new(self.cfg.n()),
            scratch_home: None,
        }
    }

    /// Like [`fork`](World::fork), but the copy's round limit is capped at
    /// `horizon` rounds past the current round.
    ///
    /// Valency probes use this to bound exploration cost: a fork that has
    /// not decided within the horizon reports
    /// [`SimError::MaxRoundsExceeded`], which estimators treat as
    /// "undecided".
    #[must_use]
    pub fn fork_bounded(&self, seed: u64, horizon: u32) -> World<P> {
        let mut copy = self.fork(seed);
        copy.cfg = bounded_cfg(&self.cfg, self.round, horizon);
        copy
    }

    /// Condenses the paused world into a copy-on-write [`WorldSnapshot`]
    /// that many forks can be cut from cheaply.
    ///
    /// Equivalent to calling [`fork`](World::fork) per seed — forks from
    /// the snapshot and forks from the world are byte-identical — but the
    /// immutable bulk (config, process baseline, queued outboxes, metrics,
    /// liveness plane) is captured once behind an `Arc` and shared by
    /// every fork, and retired forks recycle their warmed-up round-scratch
    /// buffers through the snapshot instead of each fork growing its own.
    #[must_use]
    pub fn snapshot(&self) -> WorldSnapshot<P> {
        self.snapshot_with(Arc::clone(&self.cfg))
    }

    /// [`snapshot`](World::snapshot) with the fork round limit capped at
    /// `horizon` rounds past the current round, mirroring
    /// [`fork_bounded`](World::fork_bounded).
    #[must_use]
    pub fn snapshot_bounded(&self, horizon: u32) -> WorldSnapshot<P> {
        self.snapshot_with(bounded_cfg(&self.cfg, self.round, horizon))
    }

    fn snapshot_with(&self, cfg: Arc<SimConfig>) -> WorldSnapshot<P> {
        WorldSnapshot {
            inner: Arc::new(SnapshotInner {
                cfg,
                round: self.round,
                phase: self.phase,
                slots: self.slots.clone(),
                outboxes: self.outboxes.clone(),
                budget: self.budget,
                metrics: self.metrics.clone(),
                alive: self.alive.clone(),
                scratch: Arc::new(ScratchPool::empty()),
            }),
        }
    }
}

/// The fork config for a `horizon`-bounded exploration from `round`:
/// shares `cfg`'s `Arc` when the horizon does not actually tighten the
/// round limit, and copies-on-write otherwise.
fn bounded_cfg(cfg: &Arc<SimConfig>, round: Round, horizon: u32) -> Arc<SimConfig> {
    let limit = round
        .index()
        .saturating_add(horizon)
        .min(cfg.max_rounds_value())
        .max(round.index());
    if limit == cfg.max_rounds_value() {
        Arc::clone(cfg)
    } else {
        Arc::new(cfg.as_ref().clone().max_rounds(limit))
    }
}

/// The shared, immutable bulk of a paused [`World`], captured once per
/// [`World::snapshot`] call and referenced by every fork cut from it.
#[derive(Debug)]
struct SnapshotInner<P: Process> {
    cfg: Arc<SimConfig>,
    round: Round,
    phase: Phase,
    slots: Vec<Slot<P>>,
    outboxes: Vec<Option<SendPattern<P::Msg>>>,
    budget: FaultBudget,
    metrics: Metrics,
    alive: BitPlane,
    /// Scratch buffers retired forks leave behind for future forks.
    scratch: Arc<ScratchPool<P::Msg>>,
}

/// A copy-on-write capture of a paused [`World`], built by
/// [`World::snapshot`] / [`World::snapshot_bounded`].
///
/// The snapshot owns one immutable copy of the world's bulk state behind
/// an `Arc`; [`WorldSnapshot::fork`] cuts a mutable [`World`] from it by
/// cloning only the per-fork delta (process slots and queued outboxes —
/// the state a resumed execution mutates) and borrowing a pooled round
/// scratch. Cloning the snapshot itself is an `Arc` bump, so one snapshot
/// can be shared across the worker pool for a whole `probes × samples`
/// estimation pass.
///
/// # Equivalence invariant
///
/// `snapshot().fork(s)` is observationally identical to `fork(s)` on the
/// world the snapshot was taken from: same processes, statuses, outboxes,
/// budget, metrics, round position, and — because future coins depend only
/// on `(seed, round, phase)` — the same execution under any adversary.
/// Recycled scratch preserves this because scratch is clean between
/// rounds by invariant; a warmed buffer differs from a fresh one only in
/// capacity.
pub struct WorldSnapshot<P: Process> {
    inner: Arc<SnapshotInner<P>>,
}

impl<P: Process> std::fmt::Debug for WorldSnapshot<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("n", &self.inner.cfg.n())
            .field("round", &self.inner.round)
            .field("phase", &self.inner.phase.name())
            .finish_non_exhaustive()
    }
}

impl<P: Process> Clone for WorldSnapshot<P> {
    fn clone(&self) -> WorldSnapshot<P> {
        WorldSnapshot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<P> WorldSnapshot<P>
where
    P: Process + Clone,
    P::Msg: Clone,
{
    /// Cuts a runnable fork from the snapshot, rebasing all *future*
    /// randomness on `seed` — the copy-on-write equivalent of
    /// [`World::fork`] on the snapshotted world.
    ///
    /// The fork is detached (no trace, no telemetry) like any fork. When
    /// it retires through [`World::into_report`] or [`World::retire`], its
    /// round-scratch buffers return to this snapshot's pool for the next
    /// fork to re-use.
    #[must_use]
    pub fn fork(&self, seed: u64) -> World<P> {
        let inner = &*self.inner;
        World {
            cfg: Arc::clone(&inner.cfg),
            round: inner.round,
            phase: inner.phase,
            slots: inner.slots.clone(),
            outboxes: inner.outboxes.clone(),
            budget: inner.budget,
            metrics: inner.metrics.clone(),
            trace: Trace::disabled(),
            telemetry: Telemetry::off(),
            seed,
            alive: inner.alive.clone(),
            scratch: inner.scratch.take(inner.cfg.n()),
            scratch_home: Some(Arc::clone(&inner.scratch)),
        }
    }

    /// [`fork`](WorldSnapshot::fork) without a pooled scratch: the copy
    /// carries a zero-width placeholder and no scratch home.
    ///
    /// The cohort engine drives many such forks in lockstep sharing one
    /// caddy scratch per lane (swapped in around each round step via
    /// [`World::swap_scratch`]), so checking a scratch out of the pool per
    /// fork would be wasted mutex traffic. Callers **must** swap a real
    /// width-`n` scratch in before delivering a round.
    pub(crate) fn fork_detached(&self, seed: u64) -> World<P> {
        let inner = &*self.inner;
        World {
            cfg: Arc::clone(&inner.cfg),
            round: inner.round,
            phase: inner.phase,
            slots: inner.slots.clone(),
            outboxes: inner.outboxes.clone(),
            budget: inner.budget,
            metrics: inner.metrics.clone(),
            trace: Trace::disabled(),
            telemetry: Telemetry::off(),
            seed,
            alive: inner.alive.clone(),
            scratch: RoundScratch::new(0),
            scratch_home: None,
        }
    }

    /// Checks a width-`n` scratch out of the snapshot's recycling pool
    /// (building a fresh one when the pool is empty).
    pub(crate) fn take_scratch(&self) -> RoundScratch<P::Msg> {
        self.inner.scratch.take(self.inner.cfg.n())
    }

    /// Returns a (clean, by invariant) scratch to the snapshot's pool.
    pub(crate) fn put_scratch(&self, scratch: RoundScratch<P::Msg>) {
        self.inner.scratch.put(scratch);
    }

    /// System size `n` of the snapshotted world.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.cfg.n()
    }

    /// The round the snapshotted world was paused at.
    #[must_use]
    pub fn round(&self) -> Round {
        self.inner.round
    }

    /// Scratch buffers currently parked in the snapshot's recycling pool.
    #[must_use]
    pub fn pooled_scratches(&self) -> usize {
        self.inner
            .scratch
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// Pops a cleared, width-`n` allowed-mask plane from the pool, or makes one.
fn take_mask(pool: &mut Vec<BitPlane>, n: usize) -> BitPlane {
    pool.pop().unwrap_or_else(|| BitPlane::new(n))
}

fn validate_pattern<M>(
    pattern: &SendPattern<M>,
    from: ProcessId,
    n: usize,
) -> Result<(), SimError> {
    if let SendPattern::To(list) = pattern {
        for (idx, (to, _)) in list.iter().enumerate() {
            if to.index() >= n {
                return Err(SimError::InvalidRecipient { from, to: *to, n });
            }
            if list[..idx].iter().any(|(t, _)| t == to) {
                // At most one message per ordered pair per round.
                return Err(SimError::InvalidRecipient { from, to: *to, n });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{CountDown, Echo};
    use crate::Passive;

    fn echo_world(n: usize, seed: u64) -> World<Echo> {
        World::new(SimConfig::new(n).seed(seed), |pid| {
            Echo::new(Bit::from(pid.index() % 2 == 0))
        })
        .unwrap()
    }

    #[test]
    fn passive_run_completes_in_one_round() {
        let mut w = echo_world(5, 1);
        let report = w.run(&mut Passive).unwrap();
        assert_eq!(report.rounds(), 1);
        assert!(w.finished());
        for pid in ProcessId::all(5) {
            assert!(report.decision_of(pid).is_some());
        }
    }

    #[test]
    fn phase_order_enforced() {
        let mut w = echo_world(3, 2);
        // deliver before phase_a is a phase violation
        let err = w.deliver(Intervention::none()).unwrap_err();
        assert!(matches!(err, SimError::PhaseViolation { .. }));
        w.phase_a().unwrap();
        // phase_a twice is a phase violation
        let err = w.phase_a().unwrap_err();
        assert!(matches!(err, SimError::PhaseViolation { .. }));
        w.deliver(Intervention::none()).unwrap();
    }

    #[test]
    fn kills_respect_budget() {
        let mut w = World::new(SimConfig::new(4).faults(1).seed(3), |_| {
            CountDown::new(3, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        let iv = Intervention::kill_all_silent([ProcessId::new(0), ProcessId::new(1)]);
        let err = w.deliver(iv).unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
        // The failed attempt left the world consistent: a legal kill works.
        let iv = Intervention::kill_all_silent([ProcessId::new(0)]);
        w.deliver(iv).unwrap();
        assert_eq!(w.alive_count(), 3);
        assert!(w.status(ProcessId::new(0)).is_failed());
    }

    #[test]
    fn cannot_kill_dead_or_unknown_or_twice() {
        let mut w = World::new(SimConfig::new(3).faults(3).seed(4), |_| {
            CountDown::new(5, Bit::Zero)
        })
        .unwrap();
        w.phase_a().unwrap();
        let unknown = Intervention::kill_all_silent([ProcessId::new(9)]);
        assert!(matches!(
            w.deliver(unknown).unwrap_err(),
            SimError::UnknownProcess { .. }
        ));
        let dup = Intervention::kill_all_silent([ProcessId::new(1), ProcessId::new(1)]);
        assert!(matches!(
            w.deliver(dup).unwrap_err(),
            SimError::DuplicateVictim { .. }
        ));
        w.deliver(Intervention::kill_all_silent([ProcessId::new(1)]))
            .unwrap();
        w.phase_a().unwrap();
        let dead = Intervention::kill_all_silent([ProcessId::new(1)]);
        assert!(matches!(
            w.deliver(dead).unwrap_err(),
            SimError::NotAlive { .. }
        ));
    }

    #[test]
    fn partial_delivery_filters_messages() {
        // Three countdown processes broadcasting their bit; kill P0 but let
        // only P2 hear its last message.
        let mut w = World::new(SimConfig::new(3).faults(1).seed(5), |_| {
            CountDown::new(5, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        let iv = Intervention::new().kill(
            ProcessId::new(0),
            DeliveryFilter::To(vec![ProcessId::new(2)]),
        );
        w.deliver(iv).unwrap();
        let p1 = w.process(ProcessId::new(1));
        let p2 = w.process(ProcessId::new(2));
        // P1 heard everyone but P0; P2 heard everyone.
        assert_eq!(p1.last_inbox_len(), 2);
        assert_eq!(p2.last_inbox_len(), 3);
    }

    #[test]
    fn dead_processes_send_nothing_later() {
        let mut w = World::new(SimConfig::new(3).faults(1).seed(6), |_| {
            CountDown::new(5, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        w.deliver(Intervention::kill_all_silent([ProcessId::new(0)]))
            .unwrap();
        w.phase_a().unwrap();
        assert!(w.outbox(ProcessId::new(0)).is_none());
        assert!(w.outbox(ProcessId::new(1)).is_some());
        w.deliver(Intervention::none()).unwrap();
        // Survivors now hear only each other.
        assert_eq!(w.process(ProcessId::new(1)).last_inbox_len(), 2);
    }

    #[test]
    fn same_seed_reproduces_execution() {
        let run = |seed: u64| {
            let mut w = World::new(SimConfig::new(6).seed(seed).trace(true), |pid| {
                Echo::new(Bit::from(pid.index() % 2 == 0))
            })
            .unwrap();
            let report = w.run(&mut Passive).unwrap();
            (report.decisions().to_vec(), w.trace().events().to_vec())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn fork_preserves_state_and_changes_future() {
        let mut w = World::new(SimConfig::new(4).faults(0).seed(7), |_| {
            CountDown::new(4, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        w.deliver(Intervention::none()).unwrap();
        let mut f1 = w.fork(100);
        let mut f2 = w.fork(100);
        let mut f3 = w.fork(101);
        assert_eq!(f1.round(), w.round());
        assert_eq!(f1.alive_count(), w.alive_count());
        let r1 = f1.run(&mut Passive).unwrap();
        let r2 = f2.run(&mut Passive).unwrap();
        let r3 = f3.run(&mut Passive).unwrap();
        // Same fork seed ⇒ identical future; CountDown is deterministic so
        // all futures agree on rounds, but the decision streams must match
        // exactly for equal seeds.
        assert_eq!(r1.decisions(), r2.decisions());
        assert_eq!(r1.rounds(), r3.rounds());
    }

    #[test]
    fn max_rounds_guard_fires() {
        /// A process that never halts.
        #[derive(Debug, Clone)]
        struct Forever;
        impl Process for Forever {
            type Msg = Bit;
            fn send(&mut self, _: &mut Context<'_>) -> SendPattern<Bit> {
                SendPattern::Silent
            }
            fn receive(&mut self, _: &mut Context<'_>, _: &Inbox<Bit>) {}
            fn decision(&self) -> Option<Bit> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let mut w = World::new(SimConfig::new(2).max_rounds(10).seed(1), |_| Forever).unwrap();
        let err = w.run(&mut Passive).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    #[test]
    fn invalid_recipient_rejected() {
        #[derive(Debug, Clone)]
        struct BadSender;
        impl Process for BadSender {
            type Msg = Bit;
            fn send(&mut self, _: &mut Context<'_>) -> SendPattern<Bit> {
                SendPattern::To(vec![(ProcessId::new(99), Bit::One)])
            }
            fn receive(&mut self, _: &mut Context<'_>, _: &Inbox<Bit>) {}
            fn decision(&self) -> Option<Bit> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let mut w = World::new(SimConfig::new(2).seed(1), |_| BadSender).unwrap();
        let err = w.phase_a().unwrap_err();
        assert!(matches!(err, SimError::InvalidRecipient { .. }));
    }

    #[test]
    fn killing_everyone_finishes_run() {
        struct Reaper;
        impl Adversary<CountDown> for Reaper {
            fn intervene(&mut self, world: &World<CountDown>) -> Intervention {
                Intervention::kill_all_silent(world.alive_ids().collect::<Vec<_>>())
            }
        }
        let mut w = World::new(SimConfig::new(3).faults(3).seed(8), |_| {
            CountDown::new(10, Bit::Zero)
        })
        .unwrap();
        let report = w.run(&mut Reaper).unwrap();
        assert_eq!(report.rounds(), 1);
        assert!(report.statuses().iter().all(|s| s.is_failed()));
    }

    #[test]
    fn fork_bounded_caps_the_horizon() {
        /// Never halts — only the horizon can stop a fork of it.
        #[derive(Debug, Clone)]
        struct Forever;
        impl Process for Forever {
            type Msg = Bit;
            fn send(&mut self, _: &mut Context<'_>) -> SendPattern<Bit> {
                SendPattern::Broadcast(Bit::One)
            }
            fn receive(&mut self, _: &mut Context<'_>, _: &Inbox<Bit>) {}
            fn decision(&self) -> Option<Bit> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let mut w = World::new(SimConfig::new(3).seed(1).max_rounds(1_000), |_| Forever).unwrap();
        // Advance two full rounds, then fork with a 5-round horizon.
        for _ in 0..2 {
            w.phase_a().unwrap();
            w.deliver(Intervention::none()).unwrap();
        }
        let mut fork = w.fork_bounded(99, 5);
        let err = fork.run(&mut Passive).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 8 });
        // The horizon never exceeds the parent's own limit.
        let fork2 = w.fork_bounded(99, 10_000);
        assert_eq!(fork2.config().max_rounds_value(), 1_000);
        // The parent is untouched.
        assert_eq!(w.round().index(), 3);
    }

    #[test]
    fn prefix_filter_delivers_in_id_order_through_the_engine() {
        // The paper's ordered-send model: a victim that died 2 sends into
        // its broadcast reaches only the two lowest-id receivers.
        let mut w = World::new(SimConfig::new(4).faults(1).seed(5), |_| {
            CountDown::new(5, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        let iv = Intervention::new().kill(ProcessId::new(3), DeliveryFilter::Prefix(2));
        w.deliver(iv).unwrap();
        // Receivers 0 and 1 heard all 4 senders; receiver 2 missed P3.
        assert_eq!(w.process(ProcessId::new(0)).last_inbox_len(), 4);
        assert_eq!(w.process(ProcessId::new(1)).last_inbox_len(), 4);
        assert_eq!(w.process(ProcessId::new(2)).last_inbox_len(), 3);
        assert_eq!(w.metrics().messages_suppressed(), 2, "cut to P2 and P3");
    }

    #[test]
    fn halted_processes_stop_sending_and_receiving() {
        // A 1-round countdown halts after round 1; a 3-round countdown
        // keeps going and must stop hearing the halted one.
        let mut w = World::new(SimConfig::new(2).seed(6), |pid| {
            CountDown::new(if pid.index() == 0 { 1 } else { 3 }, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        w.deliver(Intervention::none()).unwrap();
        assert!(w.status(ProcessId::new(0)).is_halted());
        w.phase_a().unwrap();
        assert!(
            w.outbox(ProcessId::new(0)).is_none(),
            "halted senders are silent"
        );
        w.deliver(Intervention::none()).unwrap();
        assert_eq!(
            w.process(ProcessId::new(1)).last_inbox_len(),
            1,
            "only its own message remains"
        );
    }

    #[test]
    fn metrics_track_kills_and_messages() {
        let mut w = World::new(SimConfig::new(4).faults(2).seed(9).trace(true), |_| {
            CountDown::new(3, Bit::One)
        })
        .unwrap();
        w.phase_a().unwrap();
        w.deliver(Intervention::kill_all_silent([ProcessId::new(3)]))
            .unwrap();
        assert_eq!(w.metrics().total_kills(), 1);
        // 3 alive broadcast to 4, P3's broadcast fully suppressed.
        assert_eq!(w.metrics().messages_delivered(), 12);
        assert_eq!(w.metrics().messages_suppressed(), 4);
        assert_eq!(w.trace().kills().count(), 1);
    }
}
