//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::{ProcessId, Round};

/// Errors surfaced by the simulation engine.
///
/// Every violation of the model's rules — an adversary over-spending its
/// fault budget, killing a dead process, a run exceeding its round limit —
/// is reported as a `SimError` rather than a panic, so experiment harnesses
/// can record and continue.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The adversary tried to fail more processes than its remaining budget.
    BudgetExceeded {
        /// Round in which the violation happened.
        round: Round,
        /// Kills requested this round.
        requested: usize,
        /// Kills remaining in the budget before the request.
        remaining: usize,
    },
    /// The adversary named a process that does not exist.
    UnknownProcess {
        /// The offending id.
        pid: ProcessId,
        /// System size.
        n: usize,
    },
    /// The adversary tried to kill a process that is not alive
    /// (already failed, or halted).
    NotAlive {
        /// The offending id.
        pid: ProcessId,
        /// Round of the attempt.
        round: Round,
    },
    /// The adversary listed the same victim twice in one intervention.
    DuplicateVictim {
        /// The repeated id.
        pid: ProcessId,
    },
    /// A process addressed a message to a nonexistent recipient.
    InvalidRecipient {
        /// The sender.
        from: ProcessId,
        /// The nonexistent destination.
        to: ProcessId,
        /// System size.
        n: usize,
    },
    /// The run did not terminate within the configured round limit.
    MaxRoundsExceeded {
        /// The configured limit.
        limit: u32,
    },
    /// A world-stepping method was called in the wrong phase.
    PhaseViolation {
        /// What was attempted.
        operation: &'static str,
        /// The phase the world was actually in.
        phase: &'static str,
    },
    /// The configuration is inconsistent (e.g. `t > n`, or `n == 0`).
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded {
                round,
                requested,
                remaining,
            } => write!(
                f,
                "fault budget exceeded in {round}: requested {requested} kills with {remaining} remaining"
            ),
            SimError::UnknownProcess { pid, n } => {
                write!(f, "unknown process {pid} in a system of {n} processes")
            }
            SimError::NotAlive { pid, round } => {
                write!(f, "process {pid} is not alive in {round}")
            }
            SimError::DuplicateVictim { pid } => {
                write!(f, "process {pid} named twice in one intervention")
            }
            SimError::InvalidRecipient { from, to, n } => write!(
                f,
                "process {from} addressed nonexistent recipient {to} (n = {n})"
            ),
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "execution exceeded the round limit of {limit}")
            }
            SimError::PhaseViolation { operation, phase } => {
                write!(f, "cannot {operation} while the world is in phase {phase}")
            }
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for SimError {}

/// Error returned when converting a non-binary byte into a [`Bit`](crate::Bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBitError {
    /// The rejected value.
    pub(crate) value: u8,
}

impl ParseBitError {
    /// The value that failed to convert.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }
}

impl fmt::Display for ParseBitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a bit (expected 0 or 1)", self.value)
    }
}

impl Error for ParseBitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_key_facts() {
        let e = SimError::BudgetExceeded {
            round: Round::new(4),
            requested: 9,
            remaining: 2,
        };
        let s = e.to_string();
        assert!(
            s.contains("round 4") && s.contains('9') && s.contains('2'),
            "{s}"
        );

        let e = SimError::MaxRoundsExceeded { limit: 100 };
        assert!(e.to_string().contains("100"));

        let e = SimError::PhaseViolation {
            operation: "deliver",
            phase: "BeforeSend",
        };
        assert!(e.to_string().contains("deliver") && e.to_string().contains("BeforeSend"));
    }

    #[test]
    fn errors_are_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
        assert_traits::<ParseBitError>();
    }

    #[test]
    fn parse_bit_error_reports_value() {
        let err = ParseBitError { value: 7 };
        assert_eq!(err.value(), 7);
        assert!(err.to_string().contains('7'));
    }
}
