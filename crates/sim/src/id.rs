//! Identifiers for processes and rounds.

use std::fmt;

/// The identity of a process in a simulated system of `n` processes.
///
/// Process ids are dense indices `0..n`; the simulator assigns them at
/// construction and they never change. The newtype keeps them from being
/// confused with counts or round numbers (`C-NEWTYPE`).
///
/// # Examples
///
/// ```
/// use synran_sim::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its dense index.
    #[must_use]
    pub const fn new(index: usize) -> ProcessId {
        ProcessId(index)
    }

    /// Returns the dense index of this process, in `0..n`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all ids of a system of `n` processes.
    ///
    /// ```
    /// # use synran_sim::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> ProcessId {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A synchronous round number.
///
/// Rounds are numbered from **1**: round 1 is the first round in which
/// messages are exchanged, matching the paper's indexing (the initial state
/// is "the beginning of round 1", written α₁ in Section 3.6).
///
/// # Examples
///
/// ```
/// use synran_sim::Round;
///
/// let r = Round::FIRST;
/// assert_eq!(r.index(), 1);
/// assert_eq!(r.next().index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u32);

impl Round {
    /// The first round of an execution.
    pub const FIRST: Round = Round(1);

    /// Creates a round from its 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero; rounds are 1-based.
    #[must_use]
    pub fn new(index: u32) -> Round {
        assert!(index >= 1, "rounds are numbered from 1");
        Round(index)
    }

    /// Returns the 1-based index of this round.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the round after this one.
    #[must_use]
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns the round before this one, or `None` for the first round.
    #[must_use]
    pub const fn prev(self) -> Option<Round> {
        if self.0 > 1 {
            Some(Round(self.0 - 1))
        } else {
            None
        }
    }
}

impl Default for Round {
    /// Defaults to [`Round::FIRST`].
    fn default() -> Round {
        Round::FIRST
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrips_through_usize() {
        let p = ProcessId::new(42);
        assert_eq!(usize::from(p), 42);
        assert_eq!(ProcessId::from(42usize), p);
    }

    #[test]
    fn all_yields_dense_range() {
        assert_eq!(ProcessId::all(0).count(), 0);
        let ids: Vec<_> = ProcessId::all(4).map(ProcessId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rounds_are_one_based() {
        assert_eq!(Round::FIRST.index(), 1);
        assert_eq!(Round::FIRST.prev(), None);
        assert_eq!(Round::new(5).prev(), Some(Round::new(4)));
        assert_eq!(Round::new(5).next(), Round::new(6));
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn round_zero_rejected() {
        let _ = Round::new(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId::new(7).to_string(), "P7");
        assert_eq!(Round::new(3).to_string(), "round 3");
    }

    #[test]
    fn round_ordering() {
        assert!(Round::new(2) < Round::new(10));
    }
}
