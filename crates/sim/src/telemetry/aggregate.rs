//! Folding raw telemetry streams back into answers.
//!
//! The sinks in the parent module write telemetry *out* — one JSONL event
//! per line, stable field order. This module is the read side: it parses
//! those streams ([`TelemetryStream`]), folds flat [`SpanRecord`]s into a
//! hierarchical **span tree** ([`SpanTree`]) with per-phase self/child
//! time, and exports the tree in the folded-stack text format standard
//! flamegraph tooling consumes. `synran report` is a thin renderer over
//! these types.
//!
//! # Parent inference
//!
//! Span records are flat: `(name, worker, start_ns, elapsed_ns)` in drop
//! order, no parent ids. The tree is reconstructed from **time
//! containment**: spans are sorted by `(start, -end, name, worker)` and a
//! span's parent is the innermost earlier span whose interval contains it.
//! For a serial artifact (worker threads ≤ 1) intervals nest perfectly and
//! this recovers the true call tree. For a parallel artifact, spans from
//! concurrent workers overlap; the same rule still produces a
//! *deterministic* tree (ties broken by the sort), but a span may attach
//! under a concurrent sibling's interval — aggregate per-phase totals
//! remain exact, only the nesting is approximate. Profile with
//! `--threads 1` when exact nesting matters.
//!
//! # Determinism
//!
//! Everything here is a pure function of the input records: building a
//! tree from the same multiset of spans — in any record order — yields
//! byte-identical [`folded`](SpanTree::folded) and
//! [`render_text`](SpanTree::render_text) output. Nothing in this module
//! reads clocks, thread ids, or global state, and nothing feeds back into
//! simulation results (the observe-only contract of the parent module).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

use super::{Histogram, SpanRecord, TelemetryEvent};

/// A span with an owned name — what a parsed stream yields (in-process
/// [`SpanRecord`]s carry `&'static str` names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSpan {
    /// Span name, e.g. `"round.phase_a"`.
    pub name: String,
    /// Worker-thread attribution, if recorded inside the parallel engine.
    pub worker: Option<u32>,
    /// Start, nanoseconds since the hub epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub elapsed_ns: u64,
}

impl OwnedSpan {
    /// One past the span's last nanosecond.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.elapsed_ns)
    }
}

impl From<&SpanRecord> for OwnedSpan {
    fn from(s: &SpanRecord) -> OwnedSpan {
        OwnedSpan {
            name: s.name.to_string(),
            worker: s.worker,
            start_ns: s.start_ns,
            elapsed_ns: s.elapsed_ns,
        }
    }
}

/// Aggregated statistics of one phase (one tree node, or one name).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Spans folded into this entry.
    pub count: u64,
    /// Total wall-clock nanoseconds (sum of span durations).
    pub total_ns: u64,
    /// Nanoseconds not covered by child spans.
    pub self_ns: u64,
    /// Shortest contributing span.
    pub min_ns: u64,
    /// Longest contributing span.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Nanoseconds attributed to children (`total − self`).
    #[must_use]
    pub fn child_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.self_ns)
    }

    fn absorb(&mut self, elapsed_ns: u64) {
        if self.count == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.count += 1;
        self.total_ns += elapsed_ns;
    }

    fn merge(&mut self, other: &PhaseStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One node of the span tree: a distinct name *path*, with every span that
/// took that path folded into one [`PhaseStat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The phase name at this tree position.
    pub name: String,
    /// Folded statistics of every span at this path.
    pub stat: PhaseStat,
    /// Child nodes, in name order.
    pub children: Vec<SpanNode>,
}

/// A hierarchical fold of flat span records (see the [module
/// docs](self) for the parent-inference and determinism contracts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level nodes (spans with no containing span), in name order.
    pub roots: Vec<SpanNode>,
}

/// Interval-nesting scratch: a mutable tree keyed by name at each level.
#[derive(Default)]
struct Folder {
    stat: PhaseStat,
    children: BTreeMap<String, Folder>,
}

impl Folder {
    fn insert(&mut self, path: &[&str], elapsed_ns: u64) {
        match path.split_first() {
            None => self.stat.absorb(elapsed_ns),
            Some((head, rest)) => self
                .children
                .entry((*head).to_string())
                .or_default()
                .insert(rest, elapsed_ns),
        }
    }

    fn into_nodes(self) -> Vec<SpanNode> {
        self.children
            .into_iter()
            .map(|(name, folder)| {
                let mut stat = folder.stat;
                let children = Folder {
                    stat: PhaseStat::default(),
                    children: folder.children,
                }
                .into_nodes();
                let child_total: u64 = children.iter().map(|c| c.stat.total_ns).sum();
                stat.self_ns = stat.total_ns.saturating_sub(child_total);
                SpanNode {
                    name,
                    stat,
                    children,
                }
            })
            .collect()
    }
}

impl SpanTree {
    /// Builds the tree from flat records (any order).
    #[must_use]
    pub fn build(spans: &[OwnedSpan]) -> SpanTree {
        // Sort order makes the build a pure function of the span multiset:
        // by start ascending, then end descending (so an enclosing span
        // precedes the spans it contains even when they share a start),
        // then name and worker as total-order tiebreaks.
        let mut sorted: Vec<&OwnedSpan> = spans.iter().collect();
        sorted.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.end_ns().cmp(&a.end_ns()))
                .then(a.name.cmp(&b.name))
                .then(a.worker.cmp(&b.worker))
        });

        let mut folder = Folder::default();
        // Stack of open intervals: (end_ns, name). A span's path is the
        // chain of still-open intervals that contain it.
        let mut open: Vec<(u64, &str)> = Vec::new();
        for span in sorted {
            while let Some(&(end, _)) = open.last() {
                // An open interval no longer contains this span once it
                // ends at or before the span starts, or would end before
                // the span does (overlap without containment — concurrent
                // workers; treat as siblings).
                if end <= span.start_ns || end < span.end_ns() {
                    open.pop();
                } else {
                    break;
                }
            }
            let mut path: Vec<&str> = open.iter().map(|&(_, name)| name).collect();
            path.push(&span.name);
            folder.insert(&path, span.elapsed_ns);
            open.push((span.end_ns(), &span.name));
        }
        SpanTree {
            roots: folder.into_nodes(),
        }
    }

    /// `true` when no span was folded in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Per-phase statistics aggregated **by name** across every tree
    /// position, in name order. `self_ns` sums each position's self time,
    /// so `Σ self_ns` over all phases equals `Σ total_ns` over the roots.
    #[must_use]
    pub fn phases(&self) -> Vec<(String, PhaseStat)> {
        fn walk(nodes: &[SpanNode], into: &mut BTreeMap<String, PhaseStat>) {
            for node in nodes {
                into.entry(node.name.clone()).or_default().merge(&node.stat);
                walk(&node.children, into);
            }
        }
        let mut by_name = BTreeMap::new();
        walk(&self.roots, &mut by_name);
        by_name.into_iter().collect()
    }

    /// The tree in folded-stack text: one `a;b;c <self_ns>` line per
    /// distinct stack, sorted lexicographically — the input format of
    /// standard flamegraph tooling (the "sample count" column carries
    /// self-nanoseconds). Zero-self stacks with children are omitted, as
    /// flamegraph conventions expect.
    #[must_use]
    pub fn folded(&self) -> String {
        fn walk(nodes: &[SpanNode], prefix: &str, out: &mut String) {
            for node in nodes {
                let stack = if prefix.is_empty() {
                    node.name.clone()
                } else {
                    format!("{prefix};{}", node.name)
                };
                if node.stat.self_ns > 0 || node.children.is_empty() {
                    let _ = writeln!(out, "{stack} {}", node.stat.self_ns);
                }
                walk(&node.children, &stack, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, "", &mut out);
        out
    }

    /// The tree as indented text: `name  count  total  self  min..max`
    /// per line, two spaces of indent per depth — the `synran report`
    /// tree rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for node in nodes {
                let _ = writeln!(
                    out,
                    "{:indent$}{} count={} total={}ns self={}ns range=[{}..{}]ns",
                    "",
                    node.name,
                    node.stat.count,
                    node.stat.total_ns,
                    node.stat.self_ns,
                    node.stat.min_ns,
                    node.stat.max_ns,
                    indent = depth * 2
                );
                walk(&node.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, &mut out);
        out
    }
}

/// Busy nanoseconds per attributed worker: the sum of span durations
/// carrying each `worker` id (chunk-indexed inside the parallel engine).
#[must_use]
pub fn worker_busy_ns(spans: &[OwnedSpan]) -> BTreeMap<u32, u64> {
    let mut busy = BTreeMap::new();
    for span in spans {
        if let Some(w) = span.worker {
            *busy.entry(w).or_insert(0) += span.elapsed_ns;
        }
    }
    busy
}

/// Wall-clock extent of a span set: `max(end) − min(start)` (0 when
/// empty) — the denominator of a utilization figure.
#[must_use]
pub fn wall_ns(spans: &[OwnedSpan]) -> u64 {
    let start = spans.iter().map(|s| s.start_ns).min();
    let end = spans.iter().map(OwnedSpan::end_ns).max();
    match (start, end) {
        (Some(start), Some(end)) => end.saturating_sub(start),
        _ => 0,
    }
}

/// How one stream line classified during a read — the accounting behind
/// `synran report --check`.
#[derive(Debug, Clone, PartialEq)]
pub enum LineKind {
    /// A recognized telemetry event.
    Event(TelemetryEvent),
    /// Well-formed JSON object of an unknown `"type"` (a newer writer);
    /// skipped under the forward-compatibility contract.
    Unknown,
    /// Not a complete JSON object line: the truncated tail of a killed
    /// writer, or garbage.
    Malformed,
    /// Empty or whitespace-only.
    Blank,
}

/// Classifies one line of a telemetry JSONL stream.
#[must_use]
pub fn classify_line(line: &str) -> LineKind {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return LineKind::Blank;
    }
    if let Some(event) = TelemetryEvent::from_jsonl(trimmed) {
        return LineKind::Event(event);
    }
    // Distinguish "complete object we don't understand" from "truncated /
    // malformed": a well-formed unknown line still has the object shape
    // and a type field.
    if trimmed.starts_with('{')
        && trimmed.ends_with('}')
        && super::json_str_field(trimmed, "type").is_some()
    {
        return LineKind::Unknown;
    }
    LineKind::Malformed
}

/// One `round_kills` accounting row: the adversary's spend in one round
/// against the paper's `⌈4√(n·ln n)⌉+1` cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundKillRow {
    /// The round.
    pub round: u32,
    /// Processes failed in it.
    pub kills: u64,
    /// The per-round cap.
    pub cap: u64,
    /// Whether the spend exceeded the cap.
    pub over_cap: bool,
}

/// A parsed telemetry JSONL stream, with per-line accounting.
///
/// Counters and histograms keep **last-write-wins** semantics (an
/// exported registry writes each name once; a stream concatenating
/// several exports reads as the final snapshot).
#[derive(Debug, Clone, Default)]
pub struct TelemetryStream {
    /// `meta` attribution lines, in stream order.
    pub meta: Vec<(String, String)>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span records, in stream order.
    pub spans: Vec<OwnedSpan>,
    /// Per-round kill-budget rows, in stream order.
    pub round_kills: Vec<RoundKillRow>,
    /// Total lines read (including blank ones).
    pub lines: usize,
    /// Well-formed lines of unknown type (skipped, forward-compatible).
    pub unknown: usize,
    /// Malformed or truncated lines (skipped; `--check` fails on these).
    pub malformed: usize,
}

impl TelemetryStream {
    /// Parses a whole stream from a string (for tests and fixtures).
    #[must_use]
    pub fn parse(text: &str) -> TelemetryStream {
        let mut stream = TelemetryStream::default();
        for line in text.lines() {
            stream.push_line(line);
        }
        stream
    }

    /// Reads a stream line-by-line from any [`BufRead`].
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from the reader (parse problems are
    /// never errors — they land in [`malformed`](TelemetryStream::malformed)
    /// / [`unknown`](TelemetryStream::unknown)).
    pub fn read(reader: impl BufRead) -> std::io::Result<TelemetryStream> {
        let mut stream = TelemetryStream::default();
        for line in reader.lines() {
            stream.push_line(&line?);
        }
        Ok(stream)
    }

    fn push_line(&mut self, line: &str) {
        self.lines += 1;
        match classify_line(line) {
            LineKind::Event(TelemetryEvent::Meta { key, value }) => self.meta.push((key, value)),
            LineKind::Event(TelemetryEvent::Counter { name, value }) => {
                self.counters.insert(name, value);
            }
            LineKind::Event(TelemetryEvent::Histogram {
                name,
                count,
                sum,
                min,
                max,
            }) => {
                self.histograms.insert(
                    name,
                    Histogram {
                        count,
                        sum,
                        min,
                        max,
                    },
                );
            }
            LineKind::Event(TelemetryEvent::Span {
                name,
                worker,
                start_ns,
                elapsed_ns,
            }) => self.spans.push(OwnedSpan {
                name,
                worker,
                start_ns,
                elapsed_ns,
            }),
            LineKind::Event(TelemetryEvent::RoundKills {
                round,
                kills,
                cap,
                over_cap,
            }) => self.round_kills.push(RoundKillRow {
                round,
                kills,
                cap,
                over_cap,
            }),
            LineKind::Unknown => self.unknown += 1,
            LineKind::Malformed => self.malformed += 1,
            LineKind::Blank => {}
        }
    }

    /// Recognized events parsed from the stream.
    #[must_use]
    pub fn events(&self) -> usize {
        self.meta.len()
            + self.counters.len()
            + self.histograms.len()
            + self.spans.len()
            + self.round_kills.len()
    }

    /// The span tree of this stream's spans.
    #[must_use]
    pub fn span_tree(&self) -> SpanTree {
        SpanTree::build(&self.spans)
    }

    /// The `meta` value of `key`, if present (first write wins).
    #[must_use]
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, worker: Option<u32>, start: u64, elapsed: u64) -> OwnedSpan {
        OwnedSpan {
            name: name.to_string(),
            worker,
            start_ns: start,
            elapsed_ns: elapsed,
        }
    }

    /// A serial-shaped profile: drive ⊃ {phase_a, deliver×2}, twice.
    fn serial_profile() -> Vec<OwnedSpan> {
        vec![
            span("world.drive", None, 0, 100),
            span("round.phase_a", None, 5, 10),
            span("round.deliver", None, 20, 30),
            span("round.deliver", None, 60, 20),
            span("world.drive", None, 200, 50),
            span("round.phase_a", None, 210, 15),
        ]
    }

    #[test]
    fn containment_recovers_the_call_tree() {
        let tree = SpanTree::build(&serial_profile());
        assert_eq!(tree.roots.len(), 1);
        let drive = &tree.roots[0];
        assert_eq!(drive.name, "world.drive");
        assert_eq!(drive.stat.count, 2);
        assert_eq!(drive.stat.total_ns, 150);
        // Children: deliver (30+20) and phase_a (10+15) → self = 150 − 75.
        assert_eq!(drive.stat.self_ns, 75);
        assert_eq!(drive.children.len(), 2);
        assert_eq!(drive.children[0].name, "round.deliver");
        assert_eq!(drive.children[0].stat.total_ns, 50);
        assert_eq!(drive.children[1].name, "round.phase_a");
        assert_eq!(drive.children[1].stat.count, 2);
        assert_eq!((drive.stat.min_ns, drive.stat.max_ns), (50, 100));
    }

    #[test]
    fn build_is_record_order_independent() {
        let spans = serial_profile();
        let baseline = SpanTree::build(&spans);
        let folded = baseline.folded();
        let text = baseline.render_text();
        let mut rotated = spans;
        for _ in 0..rotated.len() {
            rotated.rotate_left(1);
            let tree = SpanTree::build(&rotated);
            assert_eq!(tree, baseline);
            assert_eq!(tree.folded(), folded);
            assert_eq!(tree.render_text(), text);
        }
        // Reversed, too (drop order is reverse completion order).
        let mut reversed = serial_profile();
        reversed.reverse();
        assert_eq!(SpanTree::build(&reversed), baseline);
    }

    #[test]
    fn folded_output_is_sorted_and_self_weighted() {
        let folded = SpanTree::build(&serial_profile()).folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "world.drive 75",
                "world.drive;round.deliver 50",
                "world.drive;round.phase_a 25",
            ]
        );
        // Valid folded-stack: every line is `stack<space><number>`.
        for line in &lines {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            n.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn overlap_without_containment_becomes_siblings() {
        // Two concurrent chunks: overlapping but neither contains the
        // other → both are roots, not nested.
        let spans = vec![
            span("parallel.worker", Some(0), 0, 100),
            span("parallel.worker", Some(1), 50, 100),
        ];
        let tree = SpanTree::build(&spans);
        assert_eq!(tree.roots.len(), 1, "same name merges at the root");
        assert_eq!(tree.roots[0].stat.count, 2);
        assert!(tree.roots[0].children.is_empty());
    }

    #[test]
    fn phases_sum_self_time_across_positions() {
        // deliver appears under drive AND at the root.
        let spans = vec![
            span("world.drive", None, 0, 100),
            span("round.deliver", None, 10, 20),
            span("round.deliver", None, 500, 40),
        ];
        let phases = SpanTree::build(&spans).phases();
        let deliver = phases
            .iter()
            .find(|(name, _)| name == "round.deliver")
            .map(|(_, stat)| *stat)
            .unwrap();
        assert_eq!(deliver.count, 2);
        assert_eq!(deliver.total_ns, 60);
        assert_eq!(deliver.self_ns, 60);
        let total_self: u64 = phases.iter().map(|(_, s)| s.self_ns).sum();
        let root_total: u64 = SpanTree::build(&spans)
            .roots
            .iter()
            .map(|r| r.stat.total_ns)
            .sum();
        assert_eq!(total_self, root_total);
    }

    #[test]
    fn worker_utilization_helpers() {
        let spans = vec![
            span("parallel.worker", Some(0), 0, 80),
            span("parallel.worker", Some(1), 10, 60),
            span("world.drive", None, 5, 20),
        ];
        let busy = worker_busy_ns(&spans);
        assert_eq!(busy.get(&0), Some(&80));
        assert_eq!(busy.get(&1), Some(&60));
        assert_eq!(busy.len(), 2, "unattributed spans don't count");
        assert_eq!(wall_ns(&spans), 80);
        assert_eq!(wall_ns(&[]), 0);
    }

    #[test]
    fn classify_distinguishes_unknown_from_malformed() {
        assert!(matches!(
            classify_line("{\"type\":\"counter\",\"name\":\"x\",\"value\":3}"),
            LineKind::Event(TelemetryEvent::Counter { .. })
        ));
        assert_eq!(
            classify_line("{\"type\":\"from_the_future\",\"x\":1}"),
            LineKind::Unknown
        );
        assert_eq!(
            classify_line("{\"type\":\"counter\",\"name\":\"x\",\"va"),
            LineKind::Malformed
        );
        assert_eq!(classify_line("not json at all"), LineKind::Malformed);
        assert_eq!(classify_line("   "), LineKind::Blank);
    }

    #[test]
    fn stream_parses_a_mixed_artifact() {
        let text = "\
{\"type\":\"meta\",\"key\":\"experiment\",\"value\":\"demo\"}
{\"type\":\"counter\",\"name\":\"sim.rounds\",\"value\":9}
{\"type\":\"histogram\",\"name\":\"round.kills\",\"count\":2,\"sum\":7,\"min\":3,\"max\":4}
{\"type\":\"span\",\"name\":\"world.drive\",\"worker\":null,\"start_ns\":0,\"elapsed_ns\":50}
{\"type\":\"span\",\"name\":\"round.deliver\",\"worker\":2,\"start_ns\":10,\"elapsed_ns\":5}
{\"type\":\"round_kills\",\"round\":1,\"kills\":4,\"cap\":12,\"over_cap\":false}
{\"type\":\"shiny_new_thing\",\"x\":1}
{\"type\":\"span\",\"name\":\"tru";
        let stream = TelemetryStream::parse(text);
        assert_eq!(stream.lines, 8);
        assert_eq!(stream.meta_value("experiment"), Some("demo"));
        assert_eq!(stream.counters.get("sim.rounds"), Some(&9));
        assert_eq!(stream.histograms.get("round.kills").unwrap().sum, 7);
        assert_eq!(stream.spans.len(), 2);
        assert_eq!(stream.spans[1].worker, Some(2));
        assert_eq!(
            stream.round_kills,
            vec![RoundKillRow {
                round: 1,
                kills: 4,
                cap: 12,
                over_cap: false
            }]
        );
        assert_eq!(stream.unknown, 1);
        assert_eq!(stream.malformed, 1);
        assert_eq!(stream.events(), 6);
        let tree = stream.span_tree();
        assert_eq!(tree.roots[0].children[0].name, "round.deliver");
    }

    #[test]
    fn empty_and_blank_streams() {
        let stream = TelemetryStream::parse("");
        assert_eq!(stream.events(), 0);
        assert!(stream.span_tree().is_empty());
        let blank = TelemetryStream::parse("\n\n");
        assert_eq!(blank.lines, 2);
        assert_eq!(blank.malformed, 0);
    }
}
