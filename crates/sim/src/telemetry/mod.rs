//! Zero-dependency telemetry: phase spans, a counter/histogram registry,
//! and pluggable sinks.
//!
//! The experiment harnesses certify *shapes* — round counts scaling as
//! `Θ(t/√(n·log n))`, kill budgets of `4√(n·log n)+1` per round — so every
//! run must emit its measurements in a machine-readable, attributable form.
//! This module is the one place that happens:
//!
//! * **Spans** ([`Telemetry::span`]) are RAII guards recording monotonic
//!   nanosecond timings (`round.phase_a`, `parallel.worker`, …) into a
//!   thread-safe registry, with per-worker attribution inside the parallel
//!   fan-out engine;
//! * the **registry** holds named [counters](Telemetry::incr) and
//!   [histograms](Telemetry::observe) (messages/round, kills/round against
//!   the paper's per-round cap, valency-probe outcomes, decision rounds);
//! * **sinks** receive the registry as a stream of [`TelemetryEvent`]s:
//!   [`JsonlSink`] writes one event per line with a stable field order, and
//!   [`MemorySink`] collects events for tests.
//!
//! # Determinism contract
//!
//! Telemetry is **observe-only**: attaching a hub at any
//! [`TelemetryMode`], at any worker-thread count, never changes a
//! simulation result. Wall-clock quantities exist only in sink output,
//! never in [`RunReport`](crate::RunReport); all registry *values* that
//! feed assertions are integers whose accumulation commutes, so counter
//! totals are identical however worker threads interleave. The contract is
//! enforced by `tests/telemetry_determinism.rs` at the workspace root.
//!
//! # Example
//!
//! ```
//! use synran_sim::telemetry::{MemorySink, Telemetry, TelemetryMode};
//!
//! let telemetry = Telemetry::new(TelemetryMode::Spans);
//! {
//!     let _span = telemetry.span("round.phase_a");
//!     telemetry.incr("sim.rounds", 1);
//!     telemetry.observe("round.messages", 42);
//! }
//! let mut sink = MemorySink::new();
//! telemetry.export(&mut sink);
//! assert_eq!(sink.events().len(), 3); // one counter, one histogram, one span
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod aggregate;

/// How much the telemetry layer records.
///
/// Parsed from the CLI's `--telemetry off|counters|spans` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Record nothing; every instrumentation point is a no-op.
    #[default]
    Off,
    /// Record counters and histograms, skip span timings.
    Counters,
    /// Record counters, histograms, and span timings.
    Spans,
}

impl TelemetryMode {
    /// The mode's CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Counters => "counters",
            TelemetryMode::Spans => "spans",
        }
    }
}

impl std::fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for TelemetryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<TelemetryMode, String> {
        match s {
            "off" => Ok(TelemetryMode::Off),
            "counters" => Ok(TelemetryMode::Counters),
            "spans" => Ok(TelemetryMode::Spans),
            other => Err(format!(
                "unknown telemetry mode {other:?} (expected off|counters|spans)"
            )),
        }
    }
}

/// The paper's per-round kill cap for a system of `n` processes:
/// `⌈4√(n·ln n)⌉ + 1` (the budget granted to the Theorem 1 adversary).
///
/// Rounds in which the adversary spends more than this are tallied under
/// the `sim.rounds_over_kill_cap` counter.
#[must_use]
pub fn per_round_kill_cap(n: usize) -> u64 {
    let nf = n as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let cap = (4.0 * (nf * nf.ln().max(1.0)).sqrt()).ceil() as u64;
    cap + 1
}

/// One completed span: a named, timed section of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"round.phase_a"`.
    pub name: &'static str,
    /// Worker-thread index for spans recorded inside the parallel engine.
    pub worker: Option<u32>,
    /// Start time in nanoseconds since the hub was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
}

/// Integer-valued histogram summary: count, sum, min, max.
///
/// Values are `u64` so accumulation commutes — concurrent recording from
/// worker threads yields the same summary regardless of interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: u64) -> Histogram {
        Histogram {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<SpanRecord>,
}

#[derive(Debug)]
struct Hub {
    mode: TelemetryMode,
    epoch: Instant,
    state: Mutex<State>,
}

/// A shared, thread-safe telemetry handle.
///
/// Cloning is cheap (an [`Arc`] bump); all clones feed one registry. A
/// handle built with [`TelemetryMode::Off`] (or [`Telemetry::off`]) carries
/// no hub at all, so disabled instrumentation points cost one branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    hub: Option<Arc<Hub>>,
}

impl Telemetry {
    /// A hub recording at `mode` ([`TelemetryMode::Off`] allocates
    /// nothing).
    #[must_use]
    pub fn new(mode: TelemetryMode) -> Telemetry {
        match mode {
            TelemetryMode::Off => Telemetry { hub: None },
            mode => Telemetry {
                hub: Some(Arc::new(Hub {
                    mode,
                    epoch: Instant::now(),
                    state: Mutex::new(State::default()),
                })),
            },
        }
    }

    /// The disabled handle — every recording call is a no-op.
    #[must_use]
    pub fn off() -> Telemetry {
        Telemetry { hub: None }
    }

    /// The mode this handle records at.
    #[must_use]
    pub fn mode(&self) -> TelemetryMode {
        self.hub.as_ref().map_or(TelemetryMode::Off, |h| h.mode)
    }

    /// `true` unless the handle is [off](TelemetryMode::Off).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.hub.is_some()
    }

    /// `true` when span timings are being recorded.
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.mode() == TelemetryMode::Spans
    }

    /// Starts a span; the returned guard records its wall-clock duration
    /// into the registry when dropped. A no-op (no clock read) unless the
    /// mode is [`TelemetryMode::Spans`].
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_inner(name, None)
    }

    /// Like [`span`](Telemetry::span), attributed to worker thread
    /// `worker` — used by the parallel fan-out engine.
    #[must_use]
    pub fn worker_span(&self, name: &'static str, worker: u32) -> Span {
        self.span_inner(name, Some(worker))
    }

    fn span_inner(&self, name: &'static str, worker: Option<u32>) -> Span {
        let hub = self
            .hub
            .as_ref()
            .filter(|h| h.mode == TelemetryMode::Spans)
            .map(Arc::clone);
        Span {
            start: hub.as_ref().map(|_| Instant::now()),
            hub,
            name,
            worker,
        }
    }

    /// Adds `by` to the counter `name`.
    pub fn incr(&self, name: &'static str, by: u64) {
        if let Some(hub) = &self.hub {
            *hub.state
                .lock()
                .expect("telemetry lock")
                .counters
                .entry(name)
                .or_insert(0) += by;
        }
    }

    /// Sets the counter `name` to `value` (a gauge: last write wins).
    pub fn set(&self, name: &'static str, value: u64) {
        if let Some(hub) = &self.hub {
            hub.state
                .lock()
                .expect("telemetry lock")
                .counters
                .insert(name, value);
        }
    }

    /// Sets the counter `name` to `value` only if it has not been
    /// recorded yet — a fill-in for process-wide gauges (see
    /// [`crate::parallel::export_pool_stats`]): per-dispatch increments
    /// already on this handle always win.
    pub fn set_if_absent(&self, name: &'static str, value: u64) {
        if let Some(hub) = &self.hub {
            hub.state
                .lock()
                .expect("telemetry lock")
                .counters
                .entry(name)
                .or_insert(value);
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(hub) = &self.hub {
            Self::observe_locked(&mut hub.state.lock().expect("telemetry lock"), name, value);
        }
    }

    fn observe_locked(state: &mut State, name: &'static str, value: u64) {
        match state.histograms.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().observe(value),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Histogram::new(value));
            }
        }
    }

    /// Records one simulated round's worth of engine counters under a
    /// single registry lock (the hot path out of
    /// [`World::deliver`](crate::World::deliver)).
    pub fn record_round(&self, kills: u64, delivered: u64, suppressed: u64, over_cap: bool) {
        let Some(hub) = &self.hub else { return };
        let mut state = hub.state.lock().expect("telemetry lock");
        for (name, by) in [
            ("sim.rounds", 1),
            ("sim.kills", kills),
            ("sim.messages_delivered", delivered),
            ("sim.messages_suppressed", suppressed),
        ] {
            *state.counters.entry(name).or_insert(0) += by;
        }
        if over_cap {
            *state
                .counters
                .entry("sim.rounds_over_kill_cap")
                .or_insert(0) += 1;
        }
        Self::observe_locked(&mut state, "round.messages", delivered);
        if kills > 0 {
            Self::observe_locked(&mut state, "round.kills", kills);
        }
    }

    /// Records the round in which a process fixed its decision.
    pub fn record_decision(&self, round_index: u32) {
        self.observe("decision.round", u64::from(round_index));
    }

    /// A point-in-time copy of the registry.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(hub) = &self.hub else {
            return TelemetrySnapshot::default();
        };
        let state = hub.state.lock().expect("telemetry lock");
        TelemetrySnapshot {
            counters: state
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            spans: state.spans.clone(),
        }
    }

    /// Streams the registry into `sink`: counters first (name order), then
    /// histograms (name order), then spans (record order).
    pub fn export(&self, sink: &mut dyn TelemetrySink) {
        self.snapshot().export(sink);
    }
}

/// An RAII span guard; records its duration into the registry on drop.
///
/// Obtained from [`Telemetry::span`] / [`Telemetry::worker_span`]. Owns a
/// hub handle, so it can outlive the `Telemetry` it came from and be held
/// across mutations of the instrumented object.
#[derive(Debug)]
pub struct Span {
    hub: Option<Arc<Hub>>,
    name: &'static str,
    worker: Option<u32>,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(hub), Some(start)) = (&self.hub, self.start) else {
            return;
        };
        #[allow(clippy::cast_possible_truncation)]
        let record = SpanRecord {
            name: self.name,
            worker: self.worker,
            start_ns: start.duration_since(hub.epoch).as_nanos() as u64,
            elapsed_ns: start.elapsed().as_nanos() as u64,
        };
        hub.state.lock().expect("telemetry lock").spans.push(record);
    }
}

/// A point-in-time copy of a hub's registry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// `(name, value)` counters in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` histograms in name order.
    pub histograms: Vec<(String, Histogram)>,
    /// Completed spans in the order they finished.
    pub spans: Vec<SpanRecord>,
}

impl TelemetrySnapshot {
    /// Streams this snapshot into `sink` (counters, then histograms, then
    /// spans).
    pub fn export(&self, sink: &mut dyn TelemetrySink) {
        for (name, value) in &self.counters {
            sink.emit(&TelemetryEvent::Counter {
                name: name.clone(),
                value: *value,
            });
        }
        for (name, h) in &self.histograms {
            sink.emit(&TelemetryEvent::Histogram {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            });
        }
        for s in &self.spans {
            sink.emit(&TelemetryEvent::Span {
                name: s.name.to_string(),
                worker: s.worker,
                start_ns: s.start_ns,
                elapsed_ns: s.elapsed_ns,
            });
        }
    }

    /// The value of counter `name`, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, h)| h)
    }

    /// Spans aggregated by name: `(name, count, total_ns)` in name order.
    #[must_use]
    pub fn span_totals(&self) -> Vec<(String, u64, u64)> {
        let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = totals.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.elapsed_ns;
        }
        totals
            .into_iter()
            .map(|(name, (count, total))| (name.to_string(), count, total))
            .collect()
    }
}

/// One telemetry datum as it flows to a sink.
///
/// The JSONL encoding ([`TelemetryEvent::to_jsonl`]) has a **stable field
/// order** — `"type"` first, then the fields in declaration order — pinned
/// by the sink fixture tests in `crates/sim/tests/telemetry_sink.rs`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TelemetryEvent {
    /// Free-form run attribution (experiment name, `n`, seed, …).
    Meta {
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: String,
    },
    /// A counter snapshot.
    Counter {
        /// Counter name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A histogram snapshot.
    Histogram {
        /// Histogram name.
        name: String,
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Smallest observation.
        min: u64,
        /// Largest observation.
        max: u64,
    },
    /// One completed span.
    Span {
        /// Span name.
        name: String,
        /// Worker attribution, if recorded inside the parallel engine.
        worker: Option<u32>,
        /// Start, nanoseconds since the hub epoch.
        start_ns: u64,
        /// Duration, nanoseconds.
        elapsed_ns: u64,
    },
    /// Per-round kill-budget accounting: the adversary's spend in one
    /// round against the paper's `4√(n·ln n)+1` cap.
    RoundKills {
        /// The round.
        round: u32,
        /// Processes failed in it.
        kills: u64,
        /// The per-round cap ([`per_round_kill_cap`]).
        cap: u64,
        /// Whether the spend exceeded the cap.
        over_cap: bool,
    },
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TelemetryEvent {
    /// Encodes the event as one JSON line (no trailing newline), with the
    /// stable field order the schema tests pin.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        match self {
            TelemetryEvent::Meta { key, value } => format!(
                "{{\"type\":\"meta\",\"key\":\"{}\",\"value\":\"{}\"}}",
                json_escape(key),
                json_escape(value)
            ),
            TelemetryEvent::Counter { name, value } => format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json_escape(name)
            ),
            TelemetryEvent::Histogram {
                name,
                count,
                sum,
                min,
                max,
            } => format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max}}}",
                json_escape(name)
            ),
            TelemetryEvent::Span {
                name,
                worker,
                start_ns,
                elapsed_ns,
            } => {
                let worker = worker.map_or_else(|| "null".to_string(), |w| w.to_string());
                format!(
                    "{{\"type\":\"span\",\"name\":\"{}\",\"worker\":{worker},\"start_ns\":{start_ns},\"elapsed_ns\":{elapsed_ns}}}",
                    json_escape(name)
                )
            }
            TelemetryEvent::RoundKills {
                round,
                kills,
                cap,
                over_cap,
            } => format!(
                "{{\"type\":\"round_kills\",\"round\":{round},\"kills\":{kills},\"cap\":{cap},\"over_cap\":{over_cap}}}"
            ),
        }
    }

    /// Decodes one JSONL line produced by [`TelemetryEvent::to_jsonl`].
    ///
    /// Returns `None` for malformed or truncated lines **and** for
    /// well-formed objects of an unknown `"type"` — the same
    /// forward-compatibility contract as the journal loader: readers skip
    /// what they don't understand. Use [`aggregate::classify_line`] when
    /// the distinction between *malformed* and *unknown-but-well-formed*
    /// matters (it does for `synran report --check`).
    #[must_use]
    pub fn from_jsonl(line: &str) -> Option<TelemetryEvent> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None; // Truncated tail of a killed writer.
        }
        match json_str_field(line, "type")? {
            "meta" => Some(TelemetryEvent::Meta {
                key: json_unescape(json_str_field(line, "key")?),
                value: json_unescape(json_str_field(line, "value")?),
            }),
            "counter" => Some(TelemetryEvent::Counter {
                name: json_unescape(json_str_field(line, "name")?),
                value: json_u64_field(line, "value")?,
            }),
            "histogram" => Some(TelemetryEvent::Histogram {
                name: json_unescape(json_str_field(line, "name")?),
                count: json_u64_field(line, "count")?,
                sum: json_u64_field(line, "sum")?,
                min: json_u64_field(line, "min")?,
                max: json_u64_field(line, "max")?,
            }),
            "span" => Some(TelemetryEvent::Span {
                name: json_unescape(json_str_field(line, "name")?),
                worker: match json_raw_field(line, "worker")? {
                    "null" => None,
                    digits => Some(digits.parse().ok()?),
                },
                start_ns: json_u64_field(line, "start_ns")?,
                elapsed_ns: json_u64_field(line, "elapsed_ns")?,
            }),
            "round_kills" => Some(TelemetryEvent::RoundKills {
                round: u32::try_from(json_u64_field(line, "round")?).ok()?,
                kills: json_u64_field(line, "kills")?,
                cap: json_u64_field(line, "cap")?,
                over_cap: match json_raw_field(line, "over_cap")? {
                    "true" => true,
                    "false" => false,
                    _ => return None,
                },
            }),
            _ => None,
        }
    }
}

/// Extracts the raw (still-escaped) string value of `"key":"..."`.
fn json_str_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = s.find(&needle)? + needle.len();
    let mut end = start;
    let bytes = s.as_bytes();
    while end < s.len() {
        match bytes[end] {
            b'"' => return Some(&s[start..end]),
            b'\\' => end += 2,
            _ => end += 1,
        }
    }
    None
}

/// Extracts the raw token of an unquoted `"key":<token>` value (digits,
/// `null`, `true`, `false`), up to the next `,` or `}`.
fn json_raw_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = s.find(&needle)? + needle.len();
    let end = s[start..].find([',', '}'])?;
    Some(s[start..start + end].trim())
}

/// Extracts the numeric value of `"key":<digits>`.
fn json_u64_field(s: &str, key: &str) -> Option<u64> {
    json_raw_field(s, key)?.parse().ok()
}

/// Reverses [`json_escape`] for the escape set it emits.
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => out.push_str(&hex),
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Where telemetry events go when a registry is exported.
pub trait TelemetrySink {
    /// Receives one event.
    fn emit(&mut self, event: &TelemetryEvent);
}

/// A sink writing one JSON object per line to any [`Write`]r.
///
/// Field order within a line is stable (see [`TelemetryEvent::to_jsonl`]).
/// Write errors are sticky: the first failure is kept and returned by
/// [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out, error: None }
    }

    /// Flushes and returns the writer, or the first write error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while emitting or flushing.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn emit(&mut self, event: &TelemetryEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{}", event.to_jsonl()) {
            self.error = Some(e);
        }
    }
}

/// A sink collecting events in memory, for tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<TelemetryEvent>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The collected events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }
}

impl TelemetrySink for MemorySink {
    fn emit(&mut self, event: &TelemetryEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            TelemetryMode::Off,
            TelemetryMode::Counters,
            TelemetryMode::Spans,
        ] {
            assert_eq!(mode.as_str().parse::<TelemetryMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.as_str());
        }
        assert!("verbose".parse::<TelemetryMode>().is_err());
    }

    #[test]
    fn off_handle_records_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        assert_eq!(t.mode(), TelemetryMode::Off);
        t.incr("x", 1);
        t.observe("y", 2);
        t.record_round(1, 2, 3, true);
        drop(t.span("z"));
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.spans.is_empty());
    }

    #[test]
    fn counters_mode_skips_spans() {
        let t = Telemetry::new(TelemetryMode::Counters);
        assert!(t.is_enabled());
        assert!(!t.spans_enabled());
        t.incr("a", 2);
        t.incr("a", 3);
        t.observe("h", 7);
        drop(t.span("skipped"));
        let snap = t.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.histogram("h").unwrap().sum, 7);
        assert!(snap.spans.is_empty(), "spans must be skipped in Counters");
    }

    #[test]
    fn spans_record_name_worker_and_duration() {
        let t = Telemetry::new(TelemetryMode::Spans);
        {
            let _a = t.span("outer");
            let _b = t.worker_span("inner", 3);
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner guard drops first.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].worker, Some(3));
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].worker, None);
        let totals = snap.span_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "inner");
        assert_eq!(totals[0].1, 1);
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new(TelemetryMode::Counters);
        let clone = t.clone();
        t.incr("shared", 1);
        clone.incr("shared", 2);
        assert_eq!(t.snapshot().counter("shared"), Some(3));
    }

    #[test]
    fn record_round_fills_engine_counters() {
        let t = Telemetry::new(TelemetryMode::Counters);
        t.record_round(2, 30, 4, false);
        t.record_round(0, 28, 0, false);
        t.record_round(9, 10, 20, true);
        let snap = t.snapshot();
        assert_eq!(snap.counter("sim.rounds"), Some(3));
        assert_eq!(snap.counter("sim.kills"), Some(11));
        assert_eq!(snap.counter("sim.messages_delivered"), Some(68));
        assert_eq!(snap.counter("sim.messages_suppressed"), Some(24));
        assert_eq!(snap.counter("sim.rounds_over_kill_cap"), Some(1));
        let kills = snap.histogram("round.kills").unwrap();
        assert_eq!((kills.count, kills.min, kills.max), (2, 2, 9));
        assert_eq!(snap.histogram("round.messages").unwrap().count, 3);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let t = Telemetry::new(TelemetryMode::Spans);
        std::thread::scope(|scope| {
            for w in 0..8u32 {
                let t = &t;
                scope.spawn(move || {
                    let _s = t.worker_span("parallel.worker", w);
                    for _ in 0..1000 {
                        t.incr("hits", 1);
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.counter("hits"), Some(8000));
        assert_eq!(snap.spans.len(), 8);
    }

    #[test]
    fn kill_cap_matches_the_paper_formula() {
        for n in [2usize, 16, 64, 1024] {
            let nf = n as f64;
            let expect = (4.0 * (nf * nf.ln().max(1.0)).sqrt()).ceil() as u64 + 1;
            assert_eq!(per_round_kill_cap(n), expect);
        }
        assert!(
            per_round_kill_cap(1) >= 2,
            "clamped ln keeps the cap positive"
        );
    }

    #[test]
    fn histogram_mean() {
        let t = Telemetry::new(TelemetryMode::Counters);
        t.observe("h", 2);
        t.observe("h", 4);
        let h = t.snapshot().histogram("h").unwrap();
        assert!((h.mean() - 3.0).abs() < 1e-12);
        let empty = Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn json_escaping_is_safe() {
        let e = TelemetryEvent::Meta {
            key: "we\"ird".into(),
            value: "line\nbreak\\and\ttab\u{1}".into(),
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"type\":\"meta\",\"key\":\"we\\\"ird\",\"value\":\"line\\nbreak\\\\and\\ttab\\u0001\"}"
        );
    }
}
