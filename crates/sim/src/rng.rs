//! Deterministic, splittable randomness for reproducible simulations.
//!
//! Everything random in an execution is derived from a single `u64` master
//! seed through a keyed hierarchy: *seed × process × round × phase*. Two
//! consequences the rest of the workspace relies on:
//!
//! * **Replay determinism** — re-running a world with the same seed and the
//!   same (deterministic) adversary reproduces the execution event for
//!   event, which makes failures bisectable and property tests meaningful.
//! * **Cheap forking** — the valency estimator in `synran-adversary` clones
//!   a mid-round world and rolls it forward many times; giving each fork a
//!   fresh seed yields independent futures without any shared-state RNG
//!   bookkeeping.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood 2014): tiny state,
//! excellent equidistribution for this workload, and trivially seedable from
//! a hash of the stream coordinates. It is **not** cryptographically secure,
//! which is fine: the adversary in this model is allowed to see every coin
//! anyway (the paper's adversary is *full-information*).

use crate::{Bit, ProcessId, Round};

/// Avalanche step of SplitMix64; also used as the stream-mixing hash.
#[inline]
const fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a stream coordinate into a seed, giving independent substreams.
#[inline]
const fn mix(seed: u64, coordinate: u64) -> u64 {
    // The odd constant is the golden-ratio increment of SplitMix64; xoring
    // the coordinate after one avalanche round decorrelates neighbouring
    // coordinates (pid 3/round 7 vs pid 7/round 3, etc.).
    splitmix64(seed ^ coordinate.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A deterministic pseudo-random generator with named substreams.
///
/// # Examples
///
/// ```
/// use synran_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a master seed.
    #[must_use]
    pub const fn new(seed: u64) -> SimRng {
        // One avalanche round so that small seeds (0, 1, 2, ...) do not
        // produce correlated initial outputs.
        SimRng {
            state: splitmix64(seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    /// Derives the per-process, per-round, per-phase stream used for the
    /// local coin flips of `pid` in `round`.
    ///
    /// The derivation depends only on `(seed, pid, round, phase)`, never on
    /// the order in which processes are stepped, so executions are
    /// reproducible even if the engine's iteration order changes.
    #[must_use]
    pub fn stream(seed: u64, pid: ProcessId, round: Round, phase: StreamPhase) -> SimRng {
        let s = mix(seed, pid.index() as u64);
        let s = mix(s, u64::from(round.index()));
        let s = mix(s, phase as u64 + 1);
        SimRng { state: s }
    }

    /// Derives an independent substream labelled by `tag`.
    ///
    /// Used by adversaries to obtain fork seeds: each `(rng, tag)` pair is a
    /// distinct stream.
    #[must_use]
    pub fn derive(&self, tag: u64) -> SimRng {
        SimRng {
            state: mix(self.state, tag),
        }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random [`Bit`] — the paper's fair local coin.
    pub fn bit(&mut self) -> Bit {
        Bit::from(self.next_u64() & 1 == 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns a uniformly random integer in `0..bound`, without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is an empty range");
        // Lemire-style rejection: accept unless we fall in the biased tail.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns a uniformly random index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fills `dest` with uniformly random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Draws `k` distinct indices from `0..len`, in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > len`.
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        assert!(k <= len, "cannot sample {k} distinct items from {len}");
        // Partial Fisher–Yates over an index vector: O(len) setup, O(k) draws.
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = i + self.below((len - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// Which phase of a round a derived stream feeds.
///
/// Keeping send-phase and receive-phase randomness on separate streams means
/// adding a coin flip to one phase of a protocol cannot perturb the other
/// phase's draws in unrelated runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamPhase {
    /// Phase A: composing the round's messages.
    Send = 0,
    /// End of Phase B: processing the round's inbox.
    Receive = 1,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_order_independent() {
        let r1 = SimRng::stream(9, ProcessId::new(3), Round::new(7), StreamPhase::Send);
        let r2 = SimRng::stream(9, ProcessId::new(3), Round::new(7), StreamPhase::Send);
        assert_eq!(r1, r2);
        // Swapping coordinates must give a different stream.
        let r3 = SimRng::stream(9, ProcessId::new(7), Round::new(3), StreamPhase::Send);
        assert_ne!(r1, r3);
        // Phases are independent streams.
        let r4 = SimRng::stream(9, ProcessId::new(3), Round::new(7), StreamPhase::Receive);
        assert_ne!(r1, r4);
    }

    #[test]
    fn bit_is_roughly_fair() {
        let mut rng = SimRng::new(1234);
        let ones: u32 = (0..10_000).map(|_| u32::from(rng.bit().as_u8())).sum();
        // 5000 ± 5 sigma (sigma = 50).
        assert!((4750..=5250).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::new(99);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        // E = 5000, sigma ≈ 61; allow ±5 sigma.
        assert!((4700..=5300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::new(11);
        for _ in 0..100 {
            let sample = rng.sample_indices(20, 8);
            assert_eq!(sample.len(), 8);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "indices must be distinct");
            assert!(sample.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_range_is_permutation() {
        let mut rng = SimRng::new(13);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_gives_independent_streams() {
        let base = SimRng::new(21);
        let mut d1 = base.derive(1);
        let mut d2 = base.derive(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
        // Deriving is pure: same tag, same stream.
        let mut d1b = base.derive(1);
        let mut d1c = base.derive(1);
        assert_eq!(d1b.next_u64(), d1c.next_u64());
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SimRng::new(31);
        let mut b = SimRng::new(31);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert_ne!(ba, [0u8; 13]);
    }
}
