//! Messages, send patterns, and inboxes.

use crate::ProcessId;

/// What a process emits in Phase A of a round.
///
/// The dominant pattern in the paper's protocols is a broadcast of the
/// current preference to *all* processes, **including the sender itself**
/// (SynRan counts its own `b_i` among the round's received values), so
/// broadcast is represented compactly instead of as `n` unicasts.
///
/// # Examples
///
/// ```
/// use synran_sim::{Bit, ProcessId, SendPattern};
///
/// let broadcast: SendPattern<Bit> = SendPattern::Broadcast(Bit::One);
/// assert_eq!(broadcast.recipient_count(8), 8);
///
/// let unicast = SendPattern::To(vec![(ProcessId::new(2), Bit::Zero)]);
/// assert_eq!(unicast.recipient_count(8), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendPattern<M> {
    /// Send the same message to every process (including the sender).
    Broadcast(M),
    /// Send explicit per-recipient messages.
    To(Vec<(ProcessId, M)>),
    /// Send nothing this round.
    Silent,
}

impl<M> SendPattern<M> {
    /// Number of messages this pattern emits in a system of `n` processes.
    #[must_use]
    pub fn recipient_count(&self, n: usize) -> usize {
        match self {
            SendPattern::Broadcast(_) => n,
            SendPattern::To(list) => list.len(),
            SendPattern::Silent => 0,
        }
    }

    /// Returns `true` if this pattern sends no messages.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        matches!(self, SendPattern::Silent) || self.recipient_count(1) == 0
    }

    /// The message addressed to `to`, if any.
    #[must_use]
    pub fn message_for(&self, to: ProcessId) -> Option<&M> {
        match self {
            SendPattern::Broadcast(m) => Some(m),
            SendPattern::To(list) => list.iter().find(|(dst, _)| *dst == to).map(|(_, m)| m),
            SendPattern::Silent => None,
        }
    }
}

impl<M> Default for SendPattern<M> {
    /// Defaults to [`SendPattern::Silent`].
    fn default() -> Self {
        SendPattern::Silent
    }
}

/// The messages a process received in one round, tagged by sender.
///
/// Senders appear in ascending id order, at most once each (synchronous
/// rounds deliver at most one message per ordered pair of processes).
///
/// # Examples
///
/// ```
/// use synran_sim::{Bit, Inbox, ProcessId};
///
/// let inbox = Inbox::from_messages(vec![
///     (ProcessId::new(0), Bit::One),
///     (ProcessId::new(2), Bit::Zero),
/// ]);
/// assert_eq!(inbox.len(), 2);
/// assert_eq!(inbox.from(ProcessId::new(2)), Some(&Bit::Zero));
/// assert_eq!(inbox.from(ProcessId::new(1)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbox<M> {
    msgs: Vec<(ProcessId, M)>,
}

impl<M> Inbox<M> {
    /// Creates an empty inbox.
    #[must_use]
    pub fn empty() -> Inbox<M> {
        Inbox { msgs: Vec::new() }
    }

    /// Creates an inbox from `(sender, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if senders are not strictly ascending —
    /// the engine always delivers in id order, and downstream code relies
    /// on it.
    #[must_use]
    pub fn from_messages(msgs: Vec<(ProcessId, M)>) -> Inbox<M> {
        debug_assert!(
            msgs.windows(2).all(|w| w[0].0 < w[1].0),
            "inbox senders must be strictly ascending"
        );
        Inbox { msgs }
    }

    /// Number of messages received this round — the paper's `N_i^r`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Returns `true` if nothing was received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The message from `sender`, if one was delivered.
    #[must_use]
    pub fn from(&self, sender: ProcessId) -> Option<&M> {
        self.msgs
            .binary_search_by_key(&sender, |(s, _)| *s)
            .ok()
            .map(|i| &self.msgs[i].1)
    }

    /// Iterates over `(sender, message)` pairs in ascending sender order.
    pub fn iter(&self) -> std::slice::Iter<'_, (ProcessId, M)> {
        self.msgs.iter()
    }

    /// Iterates over the messages alone, in ascending sender order.
    pub fn messages(&self) -> impl Iterator<Item = &M> {
        self.msgs.iter().map(|(_, m)| m)
    }

    /// Iterates over the senders alone, in ascending order.
    pub fn senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.msgs.iter().map(|(s, _)| *s)
    }

    /// Counts messages satisfying a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&M) -> bool) -> usize {
        self.msgs.iter().filter(|(_, m)| pred(m)).count()
    }

    /// Consumes the inbox, returning the backing buffer.
    ///
    /// The round engine uses this to recycle inbox allocations across
    /// rounds instead of rebuilding every `Vec` from scratch.
    #[must_use]
    pub fn into_messages(self) -> Vec<(ProcessId, M)> {
        self.msgs
    }
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::empty()
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a (ProcessId, M);
    type IntoIter = std::slice::Iter<'a, (ProcessId, M)>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

impl<M> FromIterator<(ProcessId, M)> for Inbox<M> {
    /// Collects `(sender, message)` pairs into an inbox, sorting by sender.
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Inbox<M> {
        let mut msgs: Vec<(ProcessId, M)> = iter.into_iter().collect();
        msgs.sort_by_key(|(s, _)| *s);
        Inbox { msgs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bit;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let p: SendPattern<Bit> = SendPattern::Broadcast(Bit::One);
        assert_eq!(p.recipient_count(5), 5);
        for i in 0..5 {
            assert_eq!(p.message_for(pid(i)), Some(&Bit::One));
        }
    }

    #[test]
    fn unicast_targets_only_listed() {
        let p = SendPattern::To(vec![(pid(1), Bit::Zero), (pid(3), Bit::One)]);
        assert_eq!(p.recipient_count(5), 2);
        assert_eq!(p.message_for(pid(1)), Some(&Bit::Zero));
        assert_eq!(p.message_for(pid(3)), Some(&Bit::One));
        assert_eq!(p.message_for(pid(0)), None);
    }

    #[test]
    fn silent_sends_nothing() {
        let p: SendPattern<Bit> = SendPattern::Silent;
        assert!(p.is_silent());
        assert_eq!(p.recipient_count(10), 0);
        assert_eq!(p.message_for(pid(0)), None);
        assert_eq!(SendPattern::<Bit>::default(), SendPattern::Silent);
    }

    #[test]
    fn empty_to_list_is_silent() {
        let p: SendPattern<Bit> = SendPattern::To(vec![]);
        assert!(p.is_silent());
    }

    #[test]
    fn inbox_lookup_and_counts() {
        let inbox = Inbox::from_messages(vec![
            (pid(0), Bit::One),
            (pid(2), Bit::Zero),
            (pid(4), Bit::One),
        ]);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from(pid(2)), Some(&Bit::Zero));
        assert_eq!(inbox.from(pid(3)), None);
        assert_eq!(inbox.count_where(|m| m.is_one()), 2);
        assert_eq!(inbox.count_where(|m| m.is_zero()), 1);
        let senders: Vec<_> = inbox.senders().map(ProcessId::index).collect();
        assert_eq!(senders, vec![0, 2, 4]);
    }

    #[test]
    fn inbox_from_iter_sorts() {
        let inbox: Inbox<Bit> = vec![(pid(3), Bit::One), (pid(1), Bit::Zero)]
            .into_iter()
            .collect();
        let senders: Vec<_> = inbox.senders().map(ProcessId::index).collect();
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn empty_inbox() {
        let inbox: Inbox<Bit> = Inbox::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
        assert_eq!(inbox.from(pid(0)), None);
        assert_eq!(Inbox::<Bit>::default(), inbox);
    }

    #[test]
    fn inbox_iteration_matches_contents() {
        let inbox = Inbox::from_messages(vec![(pid(0), Bit::Zero), (pid(1), Bit::One)]);
        let collected: Vec<_> = (&inbox).into_iter().cloned().collect();
        assert_eq!(collected, vec![(pid(0), Bit::Zero), (pid(1), Bit::One)]);
        let msgs: Vec<_> = inbox.messages().copied().collect();
        assert_eq!(msgs, vec![Bit::Zero, Bit::One]);
    }
}
