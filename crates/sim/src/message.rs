//! Messages, send patterns, and inboxes.

use crate::plane::{BitPlane, Ones, PlaneMsg};
use crate::{Bit, ProcessId};

/// What a process emits in Phase A of a round.
///
/// The dominant pattern in the paper's protocols is a broadcast of the
/// current preference to *all* processes, **including the sender itself**
/// (SynRan counts its own `b_i` among the round's received values), so
/// broadcast is represented compactly instead of as `n` unicasts.
///
/// # Examples
///
/// ```
/// use synran_sim::{Bit, ProcessId, SendPattern};
///
/// let broadcast: SendPattern<Bit> = SendPattern::Broadcast(Bit::One);
/// assert_eq!(broadcast.recipient_count(8), 8);
///
/// let unicast = SendPattern::To(vec![(ProcessId::new(2), Bit::Zero)]);
/// assert_eq!(unicast.recipient_count(8), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendPattern<M> {
    /// Send the same message to every process (including the sender).
    Broadcast(M),
    /// Send explicit per-recipient messages.
    To(Vec<(ProcessId, M)>),
    /// Send nothing this round.
    Silent,
}

impl<M> SendPattern<M> {
    /// Number of messages this pattern emits in a system of `n` processes.
    #[must_use]
    pub fn recipient_count(&self, n: usize) -> usize {
        match self {
            SendPattern::Broadcast(_) => n,
            SendPattern::To(list) => list.len(),
            SendPattern::Silent => 0,
        }
    }

    /// Returns `true` if this pattern sends no messages.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        matches!(self, SendPattern::Silent) || self.recipient_count(1) == 0
    }

    /// The message addressed to `to`, if any.
    #[must_use]
    pub fn message_for(&self, to: ProcessId) -> Option<&M> {
        match self {
            SendPattern::Broadcast(m) => Some(m),
            SendPattern::To(list) => list.iter().find(|(dst, _)| *dst == to).map(|(_, m)| m),
            SendPattern::Silent => None,
        }
    }
}

impl<M> Default for SendPattern<M> {
    /// Defaults to [`SendPattern::Silent`].
    fn default() -> Self {
        SendPattern::Silent
    }
}

/// Backing representation of an [`Inbox`].
///
/// `Pairs` is the scalar layout: explicit `(sender, message)` pairs in
/// ascending sender order. `Plane` is the bit-plane layout used by the
/// round engine's broadcast fast path: a sent mask plus a value mask, two
/// `u64` words per 64 senders, from which messages are decoded on demand
/// via [`PlaneMsg::unpack`].
#[derive(Debug, Clone)]
enum Repr<M> {
    Pairs(Vec<(ProcessId, M)>),
    Plane {
        /// Bit `s` set iff a message from sender `s` was delivered.
        sent: BitPlane,
        /// Bit `s` set iff that message packed to [`Bit::One`].
        /// Invariant: subset of `sent`.
        ones: BitPlane,
    },
}

/// The messages a process received in one round, tagged by sender.
///
/// Senders appear in ascending id order, at most once each (synchronous
/// rounds deliver at most one message per ordered pair of processes).
///
/// An inbox is either backed by explicit `(sender, message)` pairs or —
/// when the round engine's broadcast fast path engaged — by a pair of
/// [`BitPlane`] rows (a sent mask and a value mask) from which messages
/// are decoded on demand. The two representations are observationally
/// identical: iteration order, [`from`](Inbox::from), counts, and
/// equality do not depend on the backing layout.
///
/// # Examples
///
/// ```
/// use synran_sim::{Bit, Inbox, ProcessId};
///
/// let inbox = Inbox::from_messages(vec![
///     (ProcessId::new(0), Bit::One),
///     (ProcessId::new(2), Bit::Zero),
/// ]);
/// assert_eq!(inbox.len(), 2);
/// assert_eq!(inbox.from(ProcessId::new(2)), Some(Bit::Zero));
/// assert_eq!(inbox.from(ProcessId::new(1)), None);
/// assert_eq!(inbox.tally(), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    repr: Repr<M>,
}

impl<M> Inbox<M> {
    /// Creates an empty inbox.
    #[must_use]
    pub fn empty() -> Inbox<M> {
        Inbox {
            repr: Repr::Pairs(Vec::new()),
        }
    }

    /// Creates an inbox from `(sender, message)` pairs.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if senders are not strictly ascending —
    /// the engine always delivers in id order, and downstream code relies
    /// on it.
    #[must_use]
    pub fn from_messages(msgs: Vec<(ProcessId, M)>) -> Inbox<M> {
        debug_assert!(
            msgs.windows(2).all(|w| w[0].0 < w[1].0),
            "inbox senders must be strictly ascending"
        );
        Inbox {
            repr: Repr::Pairs(msgs),
        }
    }

    /// Creates a plane-backed inbox from a sent mask and a value mask.
    ///
    /// Bit `s` of `sent` means a message from sender `s` was delivered;
    /// bit `s` of `ones` means that message packed to [`Bit::One`]. Only
    /// meaningful for message types whose [`PlaneMsg`] impl round-trips —
    /// the round engine guarantees this before taking the fast path.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ones` is not a subset of `sent` or the
    /// widths differ.
    #[must_use]
    pub fn from_plane(sent: BitPlane, ones: BitPlane) -> Inbox<M>
    where
        M: PlaneMsg,
    {
        debug_assert_eq!(sent.width(), ones.width(), "plane width mismatch");
        debug_assert!(
            sent.words()
                .iter()
                .zip(ones.words())
                .all(|(s, o)| o & !s == 0),
            "value mask must be a subset of the sent mask"
        );
        Inbox {
            repr: Repr::Plane { sent, ones },
        }
    }

    /// Number of messages received this round — the paper's `N_i^r`.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Pairs(msgs) => msgs.len(),
            Repr::Plane { sent, .. } => sent.count_ones(),
        }
    }

    /// Returns `true` if nothing was received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Pairs(msgs) => msgs.is_empty(),
            Repr::Plane { sent, .. } => sent.is_empty(),
        }
    }

    /// The backing planes `(sent, ones)` when this inbox is plane-backed.
    #[must_use]
    pub fn planes(&self) -> Option<(&BitPlane, &BitPlane)> {
        match &self.repr {
            Repr::Pairs(_) => None,
            Repr::Plane { sent, ones } => Some((sent, ones)),
        }
    }

    /// Consumes a plane-backed inbox, returning its `(sent, ones)` planes.
    ///
    /// The round engine uses this to recycle plane allocations across
    /// rounds, mirroring [`into_messages`](Inbox::into_messages) for the
    /// pair representation. Returns `None` for pair-backed inboxes.
    #[must_use]
    pub fn into_planes(self) -> Option<(BitPlane, BitPlane)> {
        match self.repr {
            Repr::Pairs(_) => None,
            Repr::Plane { sent, ones } => Some((sent, ones)),
        }
    }

    /// Iterates over the senders alone, in ascending order.
    pub fn senders(&self) -> Senders<'_, M> {
        Senders {
            inner: match &self.repr {
                Repr::Pairs(msgs) => SendersRepr::Pairs(msgs.iter()),
                Repr::Plane { sent, .. } => SendersRepr::Plane(sent.ones()),
            },
        }
    }

    /// Iterates over messages whose payload does **not** pack to a bit
    /// (i.e. [`PlaneMsg::pack`] returns `None`), in ascending sender
    /// order. Plane-backed inboxes hold only packed messages, so the
    /// iterator is empty there.
    ///
    /// Protocols use this to split a round into its bit tally (via
    /// [`tally`](Inbox::tally)) plus the rare structured messages —
    /// SynRan's `Known(S)` notifications — without decoding every bit.
    pub fn unpackable(&self) -> Unpackable<'_, M>
    where
        M: PlaneMsg,
    {
        Unpackable {
            inner: match &self.repr {
                Repr::Pairs(msgs) => Some(msgs.iter()),
                Repr::Plane { .. } => None,
            },
        }
    }
}

impl<M: PlaneMsg + Clone> Inbox<M> {
    /// The message from `sender`, if one was delivered.
    #[must_use]
    pub fn from(&self, sender: ProcessId) -> Option<M> {
        match &self.repr {
            Repr::Pairs(msgs) => msgs
                .binary_search_by_key(&sender, |(s, _)| *s)
                .ok()
                .map(|i| msgs[i].1.clone()),
            Repr::Plane { sent, ones } => {
                let i = sender.index();
                if i < sent.width() && sent.get(i) {
                    Some(decode::<M>(Bit::from(ones.get(i))))
                } else {
                    None
                }
            }
        }
    }

    /// Iterates over `(sender, message)` pairs in ascending sender order.
    ///
    /// Messages are yielded by value: pair-backed inboxes clone, plane-
    /// backed inboxes decode from the value mask. Both orders are the
    /// engine's delivery order, bit for bit.
    pub fn iter(&self) -> InboxIter<'_, M> {
        InboxIter {
            inner: match &self.repr {
                Repr::Pairs(msgs) => IterRepr::Pairs(msgs.iter()),
                Repr::Plane { sent, ones } => IterRepr::Plane {
                    sent: sent.ones(),
                    ones,
                },
            },
        }
    }

    /// Iterates over the messages alone, in ascending sender order.
    pub fn messages(&self) -> impl Iterator<Item = M> + '_ {
        self.iter().map(|(_, m)| m)
    }

    /// Counts messages satisfying a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&M) -> bool) -> usize {
        match &self.repr {
            Repr::Pairs(msgs) => msgs.iter().filter(|(_, m)| pred(m)).count(),
            Repr::Plane { .. } => self.messages().filter(|m| pred(m)).count(),
        }
    }

    /// Counts the `(zeros, ones)` among messages that pack to a bit.
    ///
    /// This is the round tally behind SynRan's threshold rules (`Z^r`,
    /// `O^r`): messages that do not pack — structured payloads like
    /// `Known(S)` — count toward [`len`](Inbox::len) but toward neither
    /// side of the tally. On a plane-backed inbox both counts are
    /// popcounts; no messages are decoded.
    #[must_use]
    pub fn tally(&self) -> (usize, usize) {
        match &self.repr {
            Repr::Pairs(msgs) => {
                let mut zeros = 0;
                let mut ones = 0;
                for (_, m) in msgs {
                    match m.pack() {
                        Some(Bit::Zero) => zeros += 1,
                        Some(Bit::One) => ones += 1,
                        None => {}
                    }
                }
                (zeros, ones)
            }
            Repr::Plane { sent, ones } => {
                let one_count = ones.count_ones();
                (sent.count_ones() - one_count, one_count)
            }
        }
    }

    /// Consumes the inbox, returning its contents as a pair buffer.
    ///
    /// The round engine uses this to recycle pair-backed inbox allocations
    /// across rounds; plane-backed inboxes decode into a fresh `Vec` (use
    /// [`into_planes`](Inbox::into_planes) to recycle those).
    #[must_use]
    pub fn into_messages(self) -> Vec<(ProcessId, M)> {
        match self.repr {
            Repr::Pairs(msgs) => msgs,
            Repr::Plane { .. } => self.iter().collect(),
        }
    }
}

/// Decodes one packed bit back into `M`, which must round-trip.
fn decode<M: PlaneMsg>(bit: Bit) -> M {
    M::unpack(bit).expect("plane-backed inbox holds a message type that packs to bits")
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::empty()
    }
}

impl<M: PlaneMsg + Clone + PartialEq> PartialEq for Inbox<M> {
    /// Observational equality: same `(sender, message)` sequence,
    /// regardless of backing representation.
    fn eq(&self, other: &Inbox<M>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<M: PlaneMsg + Clone + Eq> Eq for Inbox<M> {}

/// Owned-pair iterator over an [`Inbox`], ascending sender order.
#[derive(Debug)]
pub struct InboxIter<'a, M> {
    inner: IterRepr<'a, M>,
}

#[derive(Debug)]
enum IterRepr<'a, M> {
    Pairs(std::slice::Iter<'a, (ProcessId, M)>),
    Plane { sent: Ones<'a>, ones: &'a BitPlane },
}

impl<M: PlaneMsg + Clone> Iterator for InboxIter<'_, M> {
    type Item = (ProcessId, M);

    fn next(&mut self) -> Option<(ProcessId, M)> {
        match &mut self.inner {
            IterRepr::Pairs(iter) => iter.next().map(|(s, m)| (*s, m.clone())),
            IterRepr::Plane { sent, ones } => sent
                .next()
                .map(|s| (ProcessId::new(s), decode::<M>(Bit::from(ones.get(s))))),
        }
    }
}

impl<'a, M: PlaneMsg + Clone> IntoIterator for &'a Inbox<M> {
    type Item = (ProcessId, M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending sender iterator over an [`Inbox`].
#[derive(Debug)]
pub struct Senders<'a, M> {
    inner: SendersRepr<'a, M>,
}

#[derive(Debug)]
enum SendersRepr<'a, M> {
    Pairs(std::slice::Iter<'a, (ProcessId, M)>),
    Plane(Ones<'a>),
}

impl<M> Iterator for Senders<'_, M> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        match &mut self.inner {
            SendersRepr::Pairs(iter) => iter.next().map(|(s, _)| *s),
            SendersRepr::Plane(ones) => ones.next().map(ProcessId::new),
        }
    }
}

/// Iterator over the non-packing messages of an [`Inbox`]
/// (see [`Inbox::unpackable`]).
#[derive(Debug)]
pub struct Unpackable<'a, M> {
    /// `None` for plane-backed inboxes: every message there packed.
    inner: Option<std::slice::Iter<'a, (ProcessId, M)>>,
}

impl<'a, M: PlaneMsg> Iterator for Unpackable<'a, M> {
    type Item = (ProcessId, &'a M);

    fn next(&mut self) -> Option<(ProcessId, &'a M)> {
        let iter = self.inner.as_mut()?;
        iter.find(|(_, m)| m.pack().is_none()).map(|(s, m)| (*s, m))
    }
}

impl<M> FromIterator<(ProcessId, M)> for Inbox<M> {
    /// Collects `(sender, message)` pairs into an inbox, sorting by sender.
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Inbox<M> {
        let mut msgs: Vec<(ProcessId, M)> = iter.into_iter().collect();
        msgs.sort_by_key(|(s, _)| *s);
        Inbox {
            repr: Repr::Pairs(msgs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bit;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let p: SendPattern<Bit> = SendPattern::Broadcast(Bit::One);
        assert_eq!(p.recipient_count(5), 5);
        for i in 0..5 {
            assert_eq!(p.message_for(pid(i)), Some(&Bit::One));
        }
    }

    #[test]
    fn unicast_targets_only_listed() {
        let p = SendPattern::To(vec![(pid(1), Bit::Zero), (pid(3), Bit::One)]);
        assert_eq!(p.recipient_count(5), 2);
        assert_eq!(p.message_for(pid(1)), Some(&Bit::Zero));
        assert_eq!(p.message_for(pid(3)), Some(&Bit::One));
        assert_eq!(p.message_for(pid(0)), None);
    }

    #[test]
    fn silent_sends_nothing() {
        let p: SendPattern<Bit> = SendPattern::Silent;
        assert!(p.is_silent());
        assert_eq!(p.recipient_count(10), 0);
        assert_eq!(p.message_for(pid(0)), None);
        assert_eq!(SendPattern::<Bit>::default(), SendPattern::Silent);
    }

    #[test]
    fn empty_to_list_is_silent() {
        let p: SendPattern<Bit> = SendPattern::To(vec![]);
        assert!(p.is_silent());
    }

    #[test]
    fn inbox_lookup_and_counts() {
        let inbox = Inbox::from_messages(vec![
            (pid(0), Bit::One),
            (pid(2), Bit::Zero),
            (pid(4), Bit::One),
        ]);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from(pid(2)), Some(Bit::Zero));
        assert_eq!(inbox.from(pid(3)), None);
        assert_eq!(inbox.count_where(|m| m.is_one()), 2);
        assert_eq!(inbox.count_where(|m| m.is_zero()), 1);
        assert_eq!(inbox.tally(), (1, 2));
        let senders: Vec<_> = inbox.senders().map(ProcessId::index).collect();
        assert_eq!(senders, vec![0, 2, 4]);
    }

    #[test]
    fn inbox_from_iter_sorts() {
        let inbox: Inbox<Bit> = vec![(pid(3), Bit::One), (pid(1), Bit::Zero)]
            .into_iter()
            .collect();
        let senders: Vec<_> = inbox.senders().map(ProcessId::index).collect();
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn empty_inbox() {
        let inbox: Inbox<Bit> = Inbox::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
        assert_eq!(inbox.from(pid(0)), None);
        assert_eq!(inbox.tally(), (0, 0));
        assert_eq!(Inbox::<Bit>::default(), inbox);
    }

    #[test]
    fn inbox_iteration_matches_contents() {
        let inbox = Inbox::from_messages(vec![(pid(0), Bit::Zero), (pid(1), Bit::One)]);
        let collected: Vec<_> = (&inbox).into_iter().collect();
        assert_eq!(collected, vec![(pid(0), Bit::Zero), (pid(1), Bit::One)]);
        let msgs: Vec<_> = inbox.messages().collect();
        assert_eq!(msgs, vec![Bit::Zero, Bit::One]);
    }

    #[test]
    fn plane_backed_inbox_is_observationally_equal_to_pairs() {
        // Senders {1, 3, 66} of width 70; 3 sent a one, the rest zeros.
        let n = 70;
        let mut sent = BitPlane::new(n);
        let mut ones = BitPlane::new(n);
        for s in [1usize, 3, 66] {
            sent.set(s);
        }
        ones.set(3);
        let plane: Inbox<Bit> = Inbox::from_plane(sent, ones);
        let pairs = Inbox::from_messages(vec![
            (pid(1), Bit::Zero),
            (pid(3), Bit::One),
            (pid(66), Bit::Zero),
        ]);

        assert_eq!(plane, pairs);
        assert_eq!(plane.len(), 3);
        assert_eq!(plane.from(pid(3)), Some(Bit::One));
        assert_eq!(plane.from(pid(66)), Some(Bit::Zero));
        assert_eq!(plane.from(pid(0)), None);
        assert_eq!(plane.from(pid(200)), None, "out-of-width sender");
        assert_eq!(plane.tally(), pairs.tally());
        assert_eq!(plane.count_where(|m| m.is_zero()), 2);
        assert!(plane.iter().eq(pairs.iter()), "iteration order matches");
        assert!(plane.senders().eq(pairs.senders()));
        assert_eq!(plane.unpackable().count(), 0);
        assert!(plane.planes().is_some());
        assert!(pairs.planes().is_none());
        assert_eq!(
            plane.clone().into_messages(),
            pairs.clone().into_messages(),
            "plane decodes into the same pair buffer"
        );
        let (s, o) = plane.into_planes().expect("plane-backed");
        assert_eq!(s.count_ones(), 3);
        assert_eq!(o.count_ones(), 1);
        assert!(pairs.into_planes().is_none());
    }

    #[test]
    fn unpackable_filters_packed_messages() {
        // u32 never packs, so every message is "unpackable".
        let inbox: Inbox<u32> = Inbox::from_messages(vec![(pid(0), 7), (pid(2), 9)]);
        let got: Vec<(usize, u32)> = inbox.unpackable().map(|(s, m)| (s.index(), *m)).collect();
        assert_eq!(got, vec![(0, 7), (2, 9)]);
        assert_eq!(inbox.tally(), (0, 0), "nothing packs, nothing tallies");
        // Bit always packs, so nothing is unpackable.
        let bits = Inbox::from_messages(vec![(pid(1), Bit::One)]);
        assert_eq!(bits.unpackable().count(), 0);
    }
}
