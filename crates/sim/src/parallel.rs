//! Deterministic parallel fan-out for fork evaluation and seed batches.
//!
//! The valency estimator and the batch runner both evaluate many
//! *independent* continuations of a seeded computation: every unit of work
//! is a pure function of its index (the fork seed is derived from the index
//! through [`SimRng::derive`](crate::SimRng::derive), never from shared
//! state). That makes the fan-out embarrassingly parallel **and** lets us
//! promise something stronger than most thread pools do:
//!
//! > **Determinism contract.** For a pure `f`, `par_map(threads, total, f)`
//! > returns exactly `(0..total).map(f).collect()` — bit for bit — for
//! > *every* `threads` value. Worker count changes wall-clock time, never
//! > results.
//!
//! The contract holds because results are written into the output slot of
//! their *index*, not in completion order, and because nothing about the
//! work depends on which worker runs it. Reductions over the results must
//! preserve this: callers fold the returned `Vec` left-to-right (floating
//! point addition is not associative, so summing in completion order would
//! break replay determinism).
//!
//! Workers are plain [`std::thread::scope`] threads over contiguous index
//! chunks — no work stealing, no shared queues, no dependencies beyond
//! `std`. Chunking is by `ceil(total / threads)` so the split is itself a
//! pure function of `(total, threads)`.

use crate::{Adversary, Process, RunReport, SimError, Telemetry, World};

/// Sentinel for "use all available parallelism" in thread-count knobs.
pub const AUTO_THREADS: usize = 0;

/// Minimum work units per spawned worker.
///
/// Spawning a thread costs more than evaluating a handful of small forks,
/// so tiny fan-outs (the `n = 64` regime, estimator probes with few
/// samples) used to run *slower* parallel than serial. Capping workers at
/// `ceil(total / MIN_CHUNK)` makes small batches collapse toward the
/// inline path while leaving large batches' chunking unchanged — and the
/// worker count stays a pure function of `(total, threads)`, preserving
/// the determinism contract.
pub const MIN_CHUNK: usize = 4;

/// Resolves a requested thread count: [`AUTO_THREADS`] (`0`) becomes the
/// machine's available parallelism, anything else is taken literally.
///
/// # Examples
///
/// ```
/// use synran_sim::parallel::resolve_threads;
/// assert_eq!(resolve_threads(4), 4);
/// assert!(resolve_threads(0) >= 1);
/// ```
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == AUTO_THREADS {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Maps `f` over `0..total` on up to `threads` worker threads.
///
/// Results are identical to the serial `(0..total).map(f)` regardless of
/// `threads` (see the module docs for the contract). `threads <= 1` runs
/// inline without spawning.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, F>(threads: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_in(&Telemetry::off(), threads, total, f)
}

/// [`par_map`] with telemetry: the fan-out is wrapped in a
/// `parallel.par_map` span, each worker thread records a
/// `parallel.worker` span attributed to its worker index, and the
/// `parallel.tasks` counter accumulates `total`.
///
/// Telemetry is observe-only — results are identical to [`par_map`] (and
/// to the serial map) for every `telemetry` handle and thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_in<T, F>(telemetry: &Telemetry, threads: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let _span = telemetry.span("parallel.par_map");
    telemetry.incr("parallel.tasks", total as u64);
    let workers = resolve_threads(threads).min(total.div_ceil(MIN_CHUNK));
    if workers <= 1 {
        let _worker = telemetry.worker_span("parallel.worker", 0);
        return (0..total).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let chunk = total.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = w * chunk;
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                #[allow(clippy::cast_possible_truncation)]
                let _worker = telemetry.worker_span("parallel.worker", w as u32);
                for (offset, slot) in out.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was assigned to exactly one worker"))
        .collect()
}

/// Like [`par_map`] for fallible work: maps `f` over `0..total`, returning
/// the error of the **lowest failing index** (not the first to fail in wall
/// time) so error propagation is as deterministic as the results.
///
/// All indices are evaluated even when one fails — the work units are
/// independent, and aborting early would make the set of side effects (none
/// for pure `f`, but wall time and logs for instrumented ones) depend on
/// scheduling.
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
pub fn try_par_map<T, E, F>(threads: usize, total: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    try_par_map_in(&Telemetry::off(), threads, total, f)
}

/// [`try_par_map`] with telemetry, instrumented like [`par_map_in`].
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
pub fn try_par_map_in<T, E, F>(
    telemetry: &Telemetry,
    threads: usize,
    total: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(total);
    for result in par_map_in(telemetry, threads, total, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Forks `world` once per seed and evaluates each fork on the worker pool.
///
/// The canonical fork-evaluation primitive behind valency estimation: the
/// paused `world` is shared immutably, each worker clones it via
/// [`World::fork_bounded`] with `seeds[i]` (capping exploration at
/// `horizon` rounds past the pause point), and `eval` consumes the fork.
/// Per the [module contract](self), results are identical for every
/// `threads` value.
///
/// # Errors
///
/// Returns the error of the lowest failing index.
pub fn fork_eval<P, T, E, F>(
    world: &World<P>,
    threads: usize,
    seeds: &[u64],
    horizon: u32,
    eval: F,
) -> Result<Vec<T>, E>
where
    P: Process + Clone + Sync,
    P::Msg: Clone + Sync,
    T: Send,
    E: Send,
    F: Fn(usize, World<P>) -> Result<T, E> + Sync,
{
    // Worker attribution comes from the parent world's handle; the forks
    // themselves are detached (see `World::fork`).
    try_par_map_in(world.telemetry(), threads, seeds.len(), |i| {
        eval(i, world.fork_bounded(seeds[i], horizon))
    })
}

/// Convenience for the common "run each fork to completion under its own
/// adversary" shape: forks `world` per seed, builds an adversary with
/// `make_adversary(seed)`, drives the fork, and hands the outcome (the
/// consumed world's report, or the engine error) to `score`.
///
/// # Errors
///
/// Returns the error of the lowest failing index.
pub fn fork_run<P, A, T, E, FA, FS>(
    world: &World<P>,
    threads: usize,
    seeds: &[u64],
    horizon: u32,
    make_adversary: FA,
    score: FS,
) -> Result<Vec<T>, E>
where
    P: Process + Clone + Sync,
    P::Msg: Clone + Sync,
    A: Adversary<P>,
    T: Send,
    E: Send,
    FA: Fn(u64) -> A + Sync,
    FS: Fn(Result<RunReport, SimError>) -> Result<T, E> + Sync,
{
    fork_eval(world, threads, seeds, horizon, |i, mut fork| {
        let mut adversary = make_adversary(seeds[i]);
        let outcome = match fork.drive(&mut adversary) {
            Ok(()) => Ok(fork.into_report()),
            Err(e) => Err(e),
        };
        score(outcome)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Echo;
    use crate::{Bit, Passive, SimConfig};

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64, 97, 200] {
            let parallel = par_map(threads, 97, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(8, 1, |i| i), vec![0]);
        assert_eq!(par_map(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_par_map_reports_lowest_failing_index() {
        for threads in [1, 2, 8] {
            let r: Result<Vec<usize>, usize> =
                try_par_map(threads, 10, |i| if i % 3 == 2 { Err(i) } else { Ok(i) });
            assert_eq!(r, Err(2), "threads = {threads}");
        }
        let ok: Result<Vec<usize>, usize> = try_par_map(4, 5, Ok);
        assert_eq!(ok, Ok(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn par_map_in_is_observe_only_and_attributes_workers() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        let serial: Vec<u64> = (0..40).map(|i| (i as u64) * 3).collect();
        let telemetry = Telemetry::new(TelemetryMode::Spans);
        let instrumented = par_map_in(&telemetry, 4, 40, |i| (i as u64) * 3);
        assert_eq!(instrumented, serial);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("parallel.tasks"), Some(40));
        let workers: Vec<u32> = snap
            .spans
            .iter()
            .filter(|s| s.name == "parallel.worker")
            .filter_map(|s| s.worker)
            .collect();
        assert_eq!(workers.len(), 4, "one span per worker");
        assert!(snap.spans.iter().any(|s| s.name == "parallel.par_map"));
    }

    #[test]
    fn tiny_batches_collapse_to_one_worker() {
        use crate::telemetry::{Telemetry, TelemetryMode};
        // total ≤ MIN_CHUNK: any thread count runs inline (one worker span,
        // worker 0) and results still match serial.
        for threads in [2, 8, 64] {
            let telemetry = Telemetry::new(TelemetryMode::Spans);
            let out = par_map_in(&telemetry, threads, MIN_CHUNK, |i| i * 7);
            assert_eq!(out, vec![0, 7, 14, 21], "threads = {threads}");
            let snap = telemetry.snapshot();
            let workers: Vec<u32> = snap
                .spans
                .iter()
                .filter(|s| s.name == "parallel.worker")
                .filter_map(|s| s.worker)
                .collect();
            assert_eq!(workers, vec![0], "threads = {threads}: expected inline run");
        }
        // Just past the threshold: exactly two workers, same results.
        let telemetry = Telemetry::new(TelemetryMode::Spans);
        let out = par_map_in(&telemetry, 64, MIN_CHUNK + 1, |i| i * 7);
        assert_eq!(out, (0..=MIN_CHUNK).map(|i| i * 7).collect::<Vec<_>>());
        let spans = telemetry.snapshot();
        let workers = spans
            .spans
            .iter()
            .filter(|s| s.name == "parallel.worker")
            .count();
        assert_eq!(workers, 2);
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(AUTO_THREADS) >= 1);
    }

    #[test]
    fn fork_eval_is_thread_count_invariant() {
        let world = World::new(SimConfig::new(6).seed(11), |pid| {
            Echo::new(Bit::from(pid.index() % 2 == 0))
        })
        .unwrap();
        let seeds: Vec<u64> = (0..13).map(|i| 1000 + i).collect();
        let run = |threads: usize| -> Vec<Vec<Option<Bit>>> {
            fork_run(
                &world,
                threads,
                &seeds,
                50,
                |_| Passive,
                |outcome| Ok::<_, SimError>(outcome.unwrap().decisions().to_vec()),
            )
            .unwrap()
        };
        let baseline = run(1);
        for threads in [2, 5, 13] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }
}
