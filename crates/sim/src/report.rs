//! Execution summaries.

use crate::{Bit, Metrics, ProcessId, ProcessStatus, Trace};

/// The outcome of a completed (or interrupted) execution.
///
/// Produced by [`World::run`](crate::World::run) and
/// [`World::report`](crate::World::report). The report owns its data — it
/// stays valid after the world is dropped or reused.
#[derive(Debug, Clone)]
pub struct RunReport {
    decisions: Vec<Option<Bit>>,
    statuses: Vec<ProcessStatus>,
    metrics: Metrics,
    trace: Trace,
}

impl RunReport {
    pub(crate) fn new(
        decisions: Vec<Option<Bit>>,
        statuses: Vec<ProcessStatus>,
        metrics: Metrics,
        trace: Trace,
    ) -> RunReport {
        RunReport {
            decisions,
            statuses,
            metrics,
            trace,
        }
    }

    /// Rounds fully executed.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.metrics.rounds_completed()
    }

    /// Final decisions, indexed by process.
    #[must_use]
    pub fn decisions(&self) -> &[Option<Bit>] {
        &self.decisions
    }

    /// The decision of one process, if it decided.
    #[must_use]
    pub fn decision_of(&self, pid: ProcessId) -> Option<Bit> {
        self.decisions.get(pid.index()).copied().flatten()
    }

    /// Final lifecycle status of every process.
    #[must_use]
    pub fn statuses(&self) -> &[ProcessStatus] {
        &self.statuses
    }

    /// Processes the adversary failed.
    #[must_use]
    pub fn failed_count(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_failed()).count()
    }

    /// Execution metrics (kills per round, message counts, decision times).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Event trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Ids of processes that were **not** failed by the adversary — the
    /// "non-faulty" processes of the consensus conditions. Includes halted
    /// processes and processes still alive when the run stopped.
    pub fn non_faulty(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.statuses
            .iter()
            .enumerate()
            .filter(|&(_i, s)| !s.is_failed())
            .map(|(i, _s)| ProcessId::new(i))
    }

    /// If every non-faulty process decided the same value, returns it.
    ///
    /// Returns `None` if any non-faulty process is undecided or two
    /// non-faulty processes disagree — i.e. exactly when the Agreement
    /// condition (as observed in this run) fails. If *every* process was
    /// failed, agreement holds vacuously and this returns `None` as well
    /// (there is no value to report).
    #[must_use]
    pub fn unanimous_decision(&self) -> Option<Bit> {
        let mut value: Option<Bit> = None;
        for pid in self.non_faulty() {
            match self.decision_of(pid) {
                None => return None,
                Some(v) => match value {
                    None => value = Some(v),
                    Some(prev) if prev != v => return None,
                    Some(_) => {}
                },
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Round;

    fn report(decisions: Vec<Option<Bit>>, statuses: Vec<ProcessStatus>) -> RunReport {
        let n = decisions.len();
        RunReport::new(decisions, statuses, Metrics::new(n), Trace::disabled())
    }

    #[test]
    fn unanimous_when_all_agree() {
        let r = report(
            vec![Some(Bit::One), Some(Bit::One), Some(Bit::One)],
            vec![ProcessStatus::Halted(Round::new(2)); 3],
        );
        assert_eq!(r.unanimous_decision(), Some(Bit::One));
    }

    #[test]
    fn disagreement_detected() {
        let r = report(
            vec![Some(Bit::One), Some(Bit::Zero)],
            vec![ProcessStatus::Halted(Round::new(1)); 2],
        );
        assert_eq!(r.unanimous_decision(), None);
    }

    #[test]
    fn failed_processes_do_not_block_agreement() {
        let r = report(
            vec![Some(Bit::Zero), None, Some(Bit::Zero)],
            vec![
                ProcessStatus::Halted(Round::new(3)),
                ProcessStatus::Failed(Round::new(1)),
                ProcessStatus::Halted(Round::new(3)),
            ],
        );
        assert_eq!(r.unanimous_decision(), Some(Bit::Zero));
        assert_eq!(r.failed_count(), 1);
        assert_eq!(r.non_faulty().count(), 2);
    }

    #[test]
    fn undecided_non_faulty_blocks_agreement() {
        let r = report(
            vec![Some(Bit::Zero), None],
            vec![ProcessStatus::Halted(Round::new(1)), ProcessStatus::Alive],
        );
        assert_eq!(r.unanimous_decision(), None);
    }

    #[test]
    fn all_failed_is_vacuous() {
        let r = report(
            vec![None, None],
            vec![ProcessStatus::Failed(Round::new(1)); 2],
        );
        assert_eq!(r.unanimous_decision(), None);
        assert_eq!(r.non_faulty().count(), 0);
    }

    #[test]
    fn decision_lookup() {
        let r = report(
            vec![Some(Bit::One), None],
            vec![ProcessStatus::Alive, ProcessStatus::Alive],
        );
        assert_eq!(r.decision_of(ProcessId::new(0)), Some(Bit::One));
        assert_eq!(r.decision_of(ProcessId::new(1)), None);
        // Out-of-range lookups are None, not panics.
        assert_eq!(r.decision_of(ProcessId::new(9)), None);
    }
}
