//! Simulation configuration.

use crate::SimError;

/// Configuration of one simulated execution.
///
/// Built with a non-consuming builder (`C-BUILDER`); validated when a
/// [`World`](crate::World) is constructed from it.
///
/// # Examples
///
/// ```
/// use synran_sim::SimConfig;
///
/// let cfg = SimConfig::new(64)
///     .faults(21)
///     .seed(0xfeed)
///     .max_rounds(500)
///     .trace(true);
/// assert_eq!(cfg.n(), 64);
/// assert_eq!(cfg.t(), 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    n: usize,
    t: usize,
    seed: u64,
    max_rounds: u32,
    trace: bool,
    threads: usize,
}

/// Default cap on execution length, generous enough for every protocol in
/// the workspace at the paper's scales while still catching livelocks.
pub const DEFAULT_MAX_ROUNDS: u32 = 100_000;

impl SimConfig {
    /// Starts a configuration for a system of `n` processes with no faults,
    /// seed 0, the default round limit, and tracing off.
    #[must_use]
    pub fn new(n: usize) -> SimConfig {
        SimConfig {
            n,
            t: 0,
            seed: 0,
            max_rounds: DEFAULT_MAX_ROUNDS,
            trace: false,
            threads: crate::parallel::AUTO_THREADS,
        }
    }

    /// Sets the adversary's total fault budget `t`.
    #[must_use]
    pub fn faults(mut self, t: usize) -> SimConfig {
        self.t = t;
        self
    }

    /// Sets the master seed all randomness derives from.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the round limit after which a run aborts with
    /// [`SimError::MaxRoundsExceeded`].
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u32) -> SimConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables or disables event tracing.
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> SimConfig {
        self.trace = enabled;
        self
    }

    /// Sets the worker-thread budget for parallel fan-outs (valency
    /// estimation, seeded batches). `0` ([`parallel::AUTO_THREADS`]) means
    /// "use all available parallelism"; `1` forces the serial path.
    ///
    /// Results are **identical for every setting** — see the determinism
    /// contract in [`parallel`] — so this knob only trades wall-clock time
    /// for cores.
    ///
    /// [`parallel`]: crate::parallel
    /// [`parallel::AUTO_THREADS`]: crate::parallel::AUTO_THREADS
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads;
        self
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total fault budget.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Master seed.
    #[must_use]
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Round limit.
    #[must_use]
    pub fn max_rounds_value(&self) -> u32 {
        self.max_rounds
    }

    /// Whether tracing is enabled.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// The configured worker-thread budget (`0` = auto).
    #[must_use]
    pub fn threads_value(&self) -> usize {
        self.threads
    }

    /// The worker-thread budget with `0` resolved to the machine's
    /// available parallelism.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        crate::parallel::resolve_threads(self.threads)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `n == 0`, `t > n`, or
    /// `max_rounds == 0`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig {
                reason: "n must be at least 1".into(),
            });
        }
        if self.t > self.n {
            return Err(SimError::InvalidConfig {
                reason: format!("fault budget t = {} exceeds n = {}", self.t, self.n),
            });
        }
        if self.max_rounds == 0 {
            return Err(SimError::InvalidConfig {
                reason: "max_rounds must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::new(16)
            .faults(5)
            .seed(9)
            .max_rounds(77)
            .trace(true)
            .threads(3);
        assert_eq!(cfg.n(), 16);
        assert_eq!(cfg.t(), 5);
        assert_eq!(cfg.seed_value(), 9);
        assert_eq!(cfg.max_rounds_value(), 77);
        assert!(cfg.trace_enabled());
        assert_eq!(cfg.threads_value(), 3, "the request is stored verbatim");
        assert_eq!(
            cfg.resolved_threads(),
            crate::parallel::resolve_threads(3),
            "resolution applies the oversubscription clamp"
        );
        assert!(cfg.resolved_threads() >= 2, "clamp floor keeps parallelism");
        cfg.validate().unwrap();
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = SimConfig::new(4);
        assert_eq!(cfg.t(), 0);
        assert_eq!(cfg.seed_value(), 0);
        assert_eq!(cfg.max_rounds_value(), DEFAULT_MAX_ROUNDS);
        assert!(!cfg.trace_enabled());
        assert_eq!(cfg.threads_value(), crate::parallel::AUTO_THREADS);
        assert!(cfg.resolved_threads() >= 1, "auto resolves to at least one");
        cfg.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SimConfig::new(0).validate().is_err());
        assert!(SimConfig::new(4).faults(5).validate().is_err());
        assert!(SimConfig::new(4).max_rounds(0).validate().is_err());
        // t == n is legal: the paper's protocol works for any t ≤ n.
        SimConfig::new(4).faults(4).validate().unwrap();
    }
}
