//! Bit-plane primitives: word-packed bitset rows over process ids.
//!
//! The paper's model is full-information flooding of single bits: in the
//! dominant round shape every alive process broadcasts one [`Bit`] to all
//! `n` processes. Materialising that as `n²` `(ProcessId, M)` pairs is what
//! made `round.deliver` dominate `world.drive` time; a round of broadcast
//! bits collapses into two `n`-wide bitset rows instead —
//!
//! * a **sent mask**: bit `s` set iff process `s` broadcast this round, and
//! * a **value mask**: bit `s` set iff process `s` broadcast a `1`,
//!
//! after which every tally the protocols need (`N^r`, `O^r`, `Z^r`, the
//! 7/10 / 6/10 / 5/10 / 4/10 threshold counts) is a popcount, and victim
//! selection in the adversaries is mask algebra plus set-bit iteration.
//!
//! [`BitPlane`] is that row: a little-endian word-packed bitset of fixed
//! width `n`, 64 process ids per `u64`.
//!
//! # Word order and the tail-bit rule
//!
//! Bit `i` lives in `words()[i / 64]` at bit position `i % 64` (word 0
//! holds ids 0–63, word 1 holds 64–127, …). The last word is only
//! partially used unless `n` is a multiple of 64; the unused **tail bits
//! are always zero**. Every constructor and mutating operation maintains
//! this invariant — [`BitPlane::fill`] masks the tail explicitly, and the
//! bitwise ops cannot set a tail bit because neither operand has one set —
//! so popcounts never need a trailing mask and whole-word equality is
//! value equality.
//!
//! [`PlaneMsg`] is the bridge between generic message types and the
//! planes: a message that packs to a single bit can ride the fabric; one
//! that does not forces the engine back onto the scalar pair-vector path.

use crate::{Bit, ProcessId};

/// A message type that may collapse into one bit of a round plane.
///
/// The round engine's fast delivery path engages only when every queued
/// message of a round packs: the round is then stored as two [`BitPlane`]
/// rows instead of `n²` pairs, and inboxes decode messages back out of the
/// planes on demand.
///
/// # Contract
///
/// Packing must round-trip **exactly**: whenever `m.pack() == Some(b)`,
/// `M::unpack(b)` must return `Some(m')` with `m' == m` (bit-for-bit — the
/// engine's determinism guarantee rests on it). Types that cannot satisfy
/// this simply keep the defaults (`None` both ways) and always use the
/// scalar path.
///
/// # Examples
///
/// ```
/// use synran_sim::{Bit, PlaneMsg};
///
/// assert_eq!(Bit::One.pack(), Some(Bit::One));
/// assert_eq!(<Bit as PlaneMsg>::unpack(Bit::Zero), Some(Bit::Zero));
/// // u32 payloads never pack: rounds of them stay on the scalar path.
/// assert_eq!(7u32.pack(), None);
/// assert_eq!(<u32 as PlaneMsg>::unpack(Bit::One), None);
/// ```
pub trait PlaneMsg: Sized {
    /// The single bit this message packs to, or `None` if it cannot be
    /// represented in a plane.
    fn pack(&self) -> Option<Bit> {
        None
    }

    /// Reconstructs the message a sender must have packed `bit` from, or
    /// `None` if this type never packs.
    fn unpack(bit: Bit) -> Option<Self> {
        let _ = bit;
        None
    }
}

impl PlaneMsg for Bit {
    fn pack(&self) -> Option<Bit> {
        Some(*self)
    }

    fn unpack(bit: Bit) -> Option<Bit> {
        Some(bit)
    }
}

// Opaque payloads used by tests and ad-hoc probe processes: never packed.
impl PlaneMsg for () {}
impl PlaneMsg for bool {}
impl PlaneMsg for u8 {}
impl PlaneMsg for u16 {}
impl PlaneMsg for u32 {}
impl PlaneMsg for u64 {}
impl PlaneMsg for usize {}
impl PlaneMsg for String {}

/// Bits per [`BitPlane`] word.
const WORD_BITS: usize = u64::BITS as usize;

/// A fixed-width bitset over process ids, one bit per process.
///
/// See the [module docs](self) for the word order and tail-bit rule.
///
/// # Examples
///
/// ```
/// use synran_sim::plane::BitPlane;
///
/// let mut alive = BitPlane::full(70);
/// alive.clear(3);
/// assert_eq!(alive.count_ones(), 69);
///
/// let mut ones = BitPlane::new(70);
/// ones.set(3);
/// ones.set(68);
/// ones.intersect_with(&alive);        // dead senders drop out
/// assert_eq!(ones.count_ones(), 1);
/// assert_eq!(ones.ones().collect::<Vec<_>>(), vec![68]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitPlane {
    n: usize,
    words: Vec<u64>,
}

impl BitPlane {
    /// An all-zeros plane of width `n`.
    #[must_use]
    pub fn new(n: usize) -> BitPlane {
        BitPlane {
            n,
            words: vec![0; n.div_ceil(WORD_BITS)],
        }
    }

    /// An all-ones plane of width `n` (tail bits masked off).
    #[must_use]
    pub fn full(n: usize) -> BitPlane {
        let mut p = BitPlane {
            n,
            words: vec![u64::MAX; n.div_ceil(WORD_BITS)],
        };
        p.mask_tail();
        p
    }

    /// A plane of width `n` with exactly the bits `f` maps to `true` set.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> bool) -> BitPlane {
        let mut p = BitPlane::new(n);
        for i in 0..n {
            if f(i) {
                p.set(i);
            }
        }
        p
    }

    /// Zeroes any bits at positions `>= n` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.n % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The width `n` this plane was built for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.n
    }

    /// The backing words, little-endian: bit `i` is word `i / 64`, bit
    /// position `i % 64`.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.n, "bit {i} out of range for width {}", self.n);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.n, "bit {i} out of range for width {}", self.n);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.n, "bit {i} out of range for width {}", self.n);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Number of set bits — the popcount behind every tally.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The lowest set bit, if any.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| wi * WORD_BITS + w.trailing_zeros() as usize)
    }

    /// Clears every bit, keeping the width and the allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Makes this plane a copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &BitPlane) {
        self.n = other.n;
        self.words.clone_from(&other.words);
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &BitPlane) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersect_with(&mut self, other: &BitPlane) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other` — the andnot that carves candidate masks ("alive
    /// but not a zero-preferrer") out of each other.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn subtract(&mut self, other: &BitPlane) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of bits set in both `self` and `other` — an and-popcount
    /// without materialising the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn count_common(&self, other: &BitPlane) -> usize {
        self.check_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    fn check_width(&self, other: &BitPlane) {
        assert_eq!(
            self.n, other.n,
            "bit-plane width mismatch: {} vs {}",
            self.n, other.n
        );
    }

    /// Iterates over set bit positions in ascending order.
    #[must_use]
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over set bits as [`ProcessId`]s in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.ones().map(ProcessId::new)
    }
}

impl FromIterator<usize> for BitPlane {
    /// Collects bit positions into a plane wide enough to hold the
    /// largest. Mostly a test convenience; prefer [`BitPlane::new`] plus
    /// [`BitPlane::set`] when the width is known.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitPlane {
        let indices: Vec<usize> = iter.into_iter().collect();
        let n = indices.iter().max().map_or(0, |&m| m + 1);
        let mut p = BitPlane::new(n);
        for i in indices {
            p.set(i);
        }
        p
    }
}

/// Ascending set-bit iterator over a [`BitPlane`], word by word with
/// `trailing_zeros` to skip runs of zeros.
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop the lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_round_word_boundaries() {
        for n in [0, 1, 63, 64, 65, 127, 128, 130] {
            let p = BitPlane::new(n);
            assert_eq!(p.width(), n);
            assert_eq!(p.words().len(), n.div_ceil(64));
            assert_eq!(p.count_ones(), 0);
            let f = BitPlane::full(n);
            assert_eq!(f.count_ones(), n, "full({n})");
        }
    }

    #[test]
    fn tail_bits_stay_zero() {
        let mut p = BitPlane::full(70);
        assert_eq!(p.words()[1] >> 6, 0, "tail of full() is masked");
        p.clear(69);
        p.set(69);
        let mut q = BitPlane::full(70);
        q.union_with(&p);
        assert_eq!(q.words()[1] >> 6, 0, "ops preserve the tail rule");
        assert_eq!(
            q,
            BitPlane::full(70),
            "whole-word equality is value equality"
        );
    }

    #[test]
    fn set_get_clear_assign() {
        let mut p = BitPlane::new(100);
        p.set(0);
        p.set(64);
        p.set(99);
        assert!(p.get(0) && p.get(64) && p.get(99));
        assert!(!p.get(50));
        assert_eq!(p.count_ones(), 3);
        p.clear(64);
        assert!(!p.get(64));
        p.assign(64, true);
        p.assign(0, false);
        assert_eq!(p.ones().collect::<Vec<_>>(), vec![64, 99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitPlane::new(10).set(10);
    }

    #[test]
    fn bitwise_ops_match_naive_model() {
        // Fixed-seed pseudo-random masks, checked bit by bit against
        // Vec<bool> models, across widths with tricky tails.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 5, 63, 64, 65, 100, 128, 200] {
            let a_bits: Vec<bool> = (0..n).map(|_| next() % 3 == 0).collect();
            let b_bits: Vec<bool> = (0..n).map(|_| next() % 2 == 0).collect();
            let a = BitPlane::from_fn(n, |i| a_bits[i]);
            let b = BitPlane::from_fn(n, |i| b_bits[i]);

            let mut union = a.clone();
            union.union_with(&b);
            let mut inter = a.clone();
            inter.intersect_with(&b);
            let mut diff = a.clone();
            diff.subtract(&b);
            for i in 0..n {
                assert_eq!(union.get(i), a_bits[i] | b_bits[i], "union n={n} i={i}");
                assert_eq!(inter.get(i), a_bits[i] & b_bits[i], "inter n={n} i={i}");
                assert_eq!(diff.get(i), a_bits[i] & !b_bits[i], "diff n={n} i={i}");
            }
            assert_eq!(a.count_common(&b), inter.count_ones(), "count_common n={n}");
            let expected: Vec<usize> = (0..n).filter(|&i| a_bits[i]).collect();
            assert_eq!(a.ones().collect::<Vec<_>>(), expected, "ones n={n}");
            assert_eq!(a.first_one(), expected.first().copied());
            assert_eq!(a.count_ones(), expected.len());
        }
    }

    #[test]
    fn clear_all_and_copy_from_reuse_width() {
        let mut p = BitPlane::full(90);
        p.clear_all();
        assert!(p.is_empty());
        assert_eq!(p.width(), 90);
        let q = BitPlane::from_fn(33, |i| i % 4 == 1);
        p.copy_from(&q);
        assert_eq!(p, q);
        assert_eq!(p.width(), 33);
    }

    #[test]
    fn from_iterator_collects_positions() {
        let p: BitPlane = vec![3usize, 65, 7].into_iter().collect();
        assert_eq!(p.width(), 66);
        assert_eq!(p.ones().collect::<Vec<_>>(), vec![3, 7, 65]);
        let empty: BitPlane = std::iter::empty::<usize>().collect();
        assert_eq!(empty.width(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.first_one(), None);
    }

    #[test]
    fn ids_yield_process_ids_ascending() {
        let p = BitPlane::from_fn(70, |i| i == 2 || i == 69);
        let ids: Vec<usize> = p.ids().map(ProcessId::index).collect();
        assert_eq!(ids, vec![2, 69]);
    }

    #[test]
    fn plane_msg_round_trip_for_bit() {
        for b in Bit::BOTH {
            assert_eq!(b.pack(), Some(b));
            assert_eq!(<Bit as PlaneMsg>::unpack(b), Some(b));
        }
        assert_eq!(3u64.pack(), None);
        assert_eq!(<String as PlaneMsg>::unpack(Bit::One), None);
        assert_eq!(().pack(), None);
    }
}
