//! # synran-sim — a synchronous, full-information, fail-stop simulator
//!
//! The execution substrate for the [`synran`](https://github.com/synran/synran)
//! workspace, which reproduces *Bar-Joseph & Ben-Or, "A Tight Lower Bound
//! for Randomized Synchronous Consensus" (PODC 1998)*.
//!
//! This crate models the paper's §3.1 system exactly:
//!
//! * `n` processes advance in **synchronous rounds**, each split into
//!   Phase A (local coin flips and computation, producing the round's
//!   messages) and Phase B (message exchange);
//! * a **fail-stop, adaptive-strongly-dynamic, full-information
//!   adversary** inspects every local state, coin, and queued message
//!   between the phases, and may fail processes *mid-send*, choosing which
//!   of their final messages are still delivered;
//! * the adversary is budgeted to `t` total failures, **enforced by the
//!   engine**;
//! * links are perfectly reliable: every message not suppressed by a
//!   failure is delivered within its round.
//!
//! ## Quick start
//!
//! ```
//! use synran_sim::{Bit, Passive, SimConfig, World};
//! use synran_sim::testing::Echo;
//!
//! // 8 processes, no faults, deterministic seed.
//! let cfg = SimConfig::new(8).seed(42);
//! let mut world = World::new(cfg, |pid| Echo::new(Bit::from(pid.index() % 2 == 0)))?;
//! let report = world.run(&mut Passive)?;
//! assert_eq!(report.rounds(), 1);
//! # Ok::<(), synran_sim::SimError>(())
//! ```
//!
//! ## Determinism
//!
//! Every coin in an execution derives from the master seed through the
//! hierarchy *seed × process × round × phase* ([`SimRng::stream`]), so runs
//! replay exactly and mid-round forks ([`World::fork`]) explore independent
//! futures — the primitive the lower-bound adversary's valency estimation
//! is built on.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`Process`], [`Context`] | the protocol-side interface |
//! | [`World`] | the round engine and its state machine |
//! | [`Adversary`], [`Intervention`], [`DeliveryFilter`] | the fault-side interface |
//! | [`FaultBudget`] | engine-enforced `t` |
//! | [`SimRng`] | deterministic splittable randomness |
//! | [`plane`] | word-packed bit-plane rows behind the broadcast fast path |
//! | [`Trace`], [`Metrics`], [`RunReport`] | observability |
//! | [`telemetry`] | spans, counters/histograms, JSONL sinks |
//! | [`testing`] | trivial processes for tests and docs |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `deny` rather than `forbid`: the persistent worker pool in [`parallel`]
// needs two narrowly-scoped `unsafe` idioms (a lifetime-erased task pointer
// parked threads can hold, and disjoint-slot output writes). Those items
// carry `#[allow(unsafe_code)]` plus SAFETY notes; everything else in the
// crate still refuses `unsafe` at compile time.
#![deny(unsafe_code)]

mod adversary;
mod bit;
mod budget;
mod config;
mod error;
mod id;
mod message;
mod metrics;
pub mod parallel;
pub mod plane;
mod process;
mod report;
mod rng;
pub mod telemetry;
pub mod testing;
mod trace;
mod world;

pub use adversary::{Adversary, DeliveryFilter, Intervention, Kill, Passive};
pub use bit::Bit;
pub use budget::FaultBudget;
pub use config::{SimConfig, DEFAULT_MAX_ROUNDS};
pub use error::{ParseBitError, SimError};
pub use id::{ProcessId, Round};
pub use message::{Inbox, SendPattern};
pub use metrics::Metrics;
pub use plane::{BitPlane, PlaneMsg};
pub use process::{Context, Process};
pub use report::RunReport;
pub use rng::{SimRng, StreamPhase};
pub use telemetry::aggregate::{
    LineKind, OwnedSpan, PhaseStat, RoundKillRow, SpanNode, SpanTree, TelemetryStream,
};
pub use telemetry::{
    JsonlSink, MemorySink, Telemetry, TelemetryEvent, TelemetryMode, TelemetrySink,
};
pub use trace::{Event, Trace};
pub use world::{ProcessStatus, World, WorldSnapshot};
