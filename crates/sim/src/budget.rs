//! The adversary's fault budget: the paper's `t` and `t'`.

use crate::{Round, SimError};

/// Tracks how many processes a *t-adversary* may still fail.
///
/// The engine — not the adversary implementation — owns the budget, so a
/// buggy or malicious adversary cannot overspend: interventions that exceed
/// the remaining budget are rejected with
/// [`SimError::BudgetExceeded`].
///
/// The paper writes `t` for the total budget and `t'` for what remains at a
/// given point of the execution (Corollary 3.4); [`FaultBudget::remaining`]
/// is `t'`.
///
/// # Examples
///
/// ```
/// use synran_sim::FaultBudget;
///
/// let mut budget = FaultBudget::new(5);
/// assert_eq!(budget.remaining(), 5);
/// budget.try_spend(2, synran_sim::Round::FIRST)?;
/// assert_eq!(budget.used(), 2);
/// assert_eq!(budget.remaining(), 3);
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBudget {
    total: usize,
    used: usize,
}

impl FaultBudget {
    /// Creates a budget allowing `total` failures over the whole execution.
    #[must_use]
    pub const fn new(total: usize) -> FaultBudget {
        FaultBudget { total, used: 0 }
    }

    /// The total allowance `t`.
    #[must_use]
    pub const fn total(&self) -> usize {
        self.total
    }

    /// Failures already charged.
    #[must_use]
    pub const fn used(&self) -> usize {
        self.used
    }

    /// Failures still available — the paper's `t'`.
    #[must_use]
    pub const fn remaining(&self) -> usize {
        self.total - self.used
    }

    /// Returns `true` if at least `k` more failures are affordable.
    #[must_use]
    pub const fn can_afford(&self, k: usize) -> bool {
        k <= self.remaining()
    }

    /// Charges `k` failures.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetExceeded`] (tagged with `round`) if fewer
    /// than `k` failures remain; the budget is unchanged on error.
    pub fn try_spend(&mut self, k: usize, round: Round) -> Result<(), SimError> {
        if !self.can_afford(k) {
            return Err(SimError::BudgetExceeded {
                round,
                requested: k,
                remaining: self.remaining(),
            });
        }
        self.used += k;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_within_budget() {
        let mut b = FaultBudget::new(10);
        b.try_spend(4, Round::FIRST).unwrap();
        b.try_spend(6, Round::new(2)).unwrap();
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.used(), 10);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn overspend_rejected_and_unchanged() {
        let mut b = FaultBudget::new(3);
        b.try_spend(2, Round::FIRST).unwrap();
        let err = b.try_spend(2, Round::new(2)).unwrap_err();
        assert_eq!(
            err,
            SimError::BudgetExceeded {
                round: Round::new(2),
                requested: 2,
                remaining: 1
            }
        );
        // Budget unchanged after the rejected attempt.
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    fn zero_budget_allows_zero_spend() {
        let mut b = FaultBudget::new(0);
        assert!(b.can_afford(0));
        b.try_spend(0, Round::FIRST).unwrap();
        assert!(!b.can_afford(1));
        assert!(b.try_spend(1, Round::FIRST).is_err());
    }

    #[test]
    fn can_afford_boundary() {
        let b = FaultBudget::new(5);
        assert!(b.can_afford(5));
        assert!(!b.can_afford(6));
    }
}
