//! The persistent worker pool's contract, end-to-end: dispatches re-use
//! parked threads instead of spawning, results stay byte-identical to
//! serial at every thread count, and copy-on-write snapshot forks are
//! observationally equivalent to deep-clone (`World::fork`) forks —
//! including when they inherit another fork's recycled scratch buffers.

use synran_sim::parallel::{self, par_map_pooled, WorkerPool};
use synran_sim::telemetry::Telemetry;
use synran_sim::testing::{CountDown, Echo};
use synran_sim::{Bit, Intervention, Passive, SimConfig, World};

/// Repeated dispatches on one pool spawn helpers once and re-use them
/// after that: `reused` overtakes `spawned` from the second batch on.
#[test]
fn pool_reuse_across_repeated_par_map_calls() {
    let pool = WorkerPool::new();
    let telemetry = Telemetry::off();
    let golden: Vec<u64> = (0..64).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
    for batch in 1..=6u64 {
        let got = par_map_pooled(&pool, &telemetry, 2, 64, |i| {
            (i as u64).wrapping_mul(0x9E37)
        });
        assert_eq!(got, golden, "batch {batch}");
        let stats = pool.stats();
        assert_eq!(stats.spawned, 1, "helper thread spawned once, lazily");
        assert_eq!(stats.reused, batch - 1, "every later batch re-uses it");
        if batch >= 2 {
            assert!(
                stats.reused >= stats.spawned,
                "steady state must re-use, not spawn"
            );
        }
    }
    assert_eq!(pool.threads_alive(), 1, "no thread churn across batches");
}

/// The determinism contract through the pool: byte-identity with the
/// serial map at thread counts below, at, and above the machine's cores.
#[test]
fn pooled_par_map_is_byte_identical_across_thread_counts() {
    let serial: Vec<u64> = (0..113)
        .map(|i| synran_sim::SimRng::new(0xFEED).derive(i as u64).next_u64())
        .collect();
    for threads in [1usize, 2, 8] {
        let got = parallel::par_map(threads, 113, |i| {
            synran_sim::SimRng::new(0xFEED).derive(i as u64).next_u64()
        });
        assert_eq!(got, serial, "threads={threads}");
    }
}

/// Builds a world paused mid-round (between Phase A and delivery), the
/// state valency estimation snapshots.
fn paused_world(n: usize, seed: u64) -> World<CountDown> {
    let mut world = World::new(SimConfig::new(n).seed(seed).max_rounds(500), |_| {
        CountDown::new(6, Bit::One)
    })
    .expect("config");
    // Advance a couple of full rounds so metrics, statuses, and scratch
    // buffers all carry history, then pause after Phase A.
    for _ in 0..2 {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }
    world.phase_a().expect("phase A");
    assert!(world.awaiting_delivery());
    world
}

/// Snapshot forks are byte-identical to deep-clone (`World::fork`) oracle
/// forks: same seed, same adversary, same report — bit for bit.
#[test]
fn snapshot_forks_match_deep_clone_oracle() {
    let world = paused_world(16, 77);
    let snapshot = world.snapshot();
    for seed in [1u64, 42, 0xDEAD_BEEF, u64::MAX] {
        let mut oracle = world.fork(seed);
        let mut fork = snapshot.fork(seed);
        let oracle_report = oracle.run(&mut Passive).expect("oracle run");
        let fork_report = fork.run(&mut Passive).expect("fork run");
        assert_eq!(
            format!("{fork_report:?}"),
            format!("{oracle_report:?}"),
            "seed={seed}: snapshot fork must equal the deep-clone fork"
        );
    }
}

/// A fork that inherits a *recycled* scratch computes the same execution
/// as one with a fresh scratch: retire a fork, then check the next fork
/// (which takes the warmed buffers) still matches the oracle.
#[test]
fn recycled_scratch_forks_stay_equivalent() {
    let world = paused_world(12, 5);
    let snapshot = world.snapshot();
    assert_eq!(snapshot.pooled_scratches(), 0);

    // Warm the pool: drive one fork to completion and retire it.
    let mut warm = snapshot.fork(999);
    warm.drive(&mut Passive).expect("drive");
    let _ = warm.into_report();
    assert_eq!(
        snapshot.pooled_scratches(),
        1,
        "into_report returns the scratch to the snapshot"
    );

    // The next fork takes the recycled scratch…
    let mut recycled = snapshot.fork(31337);
    assert_eq!(
        snapshot.pooled_scratches(),
        0,
        "fork took the pooled scratch"
    );
    let recycled_report = recycled.run(&mut Passive).expect("run");

    // …and must match a deep-clone oracle fork of the same seed exactly.
    let mut oracle = world.fork(31337);
    let oracle_report = oracle.run(&mut Passive).expect("oracle run");
    assert_eq!(
        format!("{recycled_report:?}"),
        format!("{oracle_report:?}"),
        "a warmed scratch must be observationally identical to a fresh one"
    );
}

/// `World::retire` recycles the scratch on abandoned forks (the
/// estimator's horizon-exceeded path) just like `into_report` does.
#[test]
fn retire_recycles_scratch_without_a_report() {
    let world = paused_world(8, 21);
    let snapshot = world.snapshot_bounded(50);
    let fork = snapshot.fork(7);
    fork.retire();
    assert_eq!(snapshot.pooled_scratches(), 1);
    // A second retired fork re-uses the same buffers: the pool does not
    // grow beyond what runs concurrently.
    let fork = snapshot.fork(8);
    assert_eq!(snapshot.pooled_scratches(), 0);
    fork.retire();
    assert_eq!(snapshot.pooled_scratches(), 1);
}

/// `snapshot_bounded` caps fork exploration exactly like `fork_bounded`.
#[test]
fn snapshot_bounded_matches_fork_bounded_horizon() {
    let world = paused_world(8, 3);
    // Echo-style quick decisions would finish before any horizon binds,
    // so use a world whose processes take many rounds.
    let mut never = World::new(SimConfig::new(8).seed(3).max_rounds(10_000), |pid| {
        Echo::new(Bit::from(pid.index() % 2 == 0))
    })
    .expect("config");
    never.phase_a().expect("phase A");
    drop(world);

    let snapshot = never.snapshot_bounded(0);
    let mut snap_fork = snapshot.fork(1);
    let mut oracle = never.fork_bounded(1, 0);
    let snap_err = snap_fork.drive(&mut Passive);
    let oracle_err = oracle.drive(&mut Passive);
    assert_eq!(
        format!("{snap_err:?}"),
        format!("{oracle_err:?}"),
        "horizon behaviour must match fork_bounded"
    );
}
