//! Determinism contract of the span-aggregation layer.
//!
//! Aggregation is a pure function of the span **multiset**: building a
//! tree from the same records in any order yields byte-identical folded
//! and rendered output; the JSONL write→read round trip loses nothing;
//! and the structural quantities (counter values, per-item span counts)
//! agree across worker thread counts {1, 2, 8} on a fixed-seed workload.
//! Raw nanosecond *durations* are of course wall-clock and differ run to
//! run — the contract covers everything derived from structure, plus
//! bit-stable re-aggregation of any one artifact.

use synran_sim::parallel::par_map_in;
use synran_sim::telemetry::aggregate::{wall_ns, worker_busy_ns};
use synran_sim::{JsonlSink, OwnedSpan, SpanTree, Telemetry, TelemetryMode, TelemetryStream};

/// A deterministic instrumented workload: every item records one
/// `cell.work` span with a nested `cell.inner` span, fanned out over
/// `threads` workers.
fn run_workload(threads: usize) -> Telemetry {
    let telemetry = Telemetry::new(TelemetryMode::Spans);
    let results = par_map_in(&telemetry, threads, 24, |i| {
        let _outer = telemetry.span("cell.work");
        let _inner = telemetry.span("cell.inner");
        // A tiny but non-trivial deterministic computation.
        (0..200u64).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
    });
    assert_eq!(results.len(), 24);
    telemetry.incr("cells.done", 24);
    telemetry
}

fn spans_of(telemetry: &Telemetry) -> Vec<OwnedSpan> {
    telemetry
        .snapshot()
        .spans
        .iter()
        .map(OwnedSpan::from)
        .collect()
}

#[test]
fn aggregation_is_record_order_independent() {
    for threads in [1, 2, 8] {
        let spans = spans_of(&run_workload(threads));
        let baseline = SpanTree::build(&spans);
        let folded = baseline.folded();
        let rendered = baseline.render_text();

        let mut rotated = spans.clone();
        for _ in 0..5 {
            rotated.rotate_left(7);
            let tree = SpanTree::build(&rotated);
            assert_eq!(tree, baseline, "threads = {threads}");
            assert_eq!(tree.folded(), folded, "threads = {threads}");
            assert_eq!(tree.render_text(), rendered, "threads = {threads}");
        }
        let mut reversed = spans.clone();
        reversed.reverse();
        assert_eq!(SpanTree::build(&reversed).folded(), folded);
    }
}

#[test]
fn jsonl_round_trip_preserves_the_tree_bit_for_bit() {
    for threads in [1, 2, 8] {
        let telemetry = run_workload(threads);
        let direct = SpanTree::build(&spans_of(&telemetry));

        // Write the registry as JSONL, read it back through the stream
        // parser, and re-aggregate.
        let mut sink = JsonlSink::new(Vec::new());
        telemetry.export(&mut sink);
        let bytes = sink.finish().expect("in-memory write");
        let text = String::from_utf8(bytes).expect("utf8 jsonl");
        let stream = TelemetryStream::parse(&text);
        assert_eq!(stream.malformed, 0, "threads = {threads}");
        assert_eq!(stream.unknown, 0, "threads = {threads}");
        assert_eq!(stream.counters.get("cells.done"), Some(&24));

        let round_tripped = stream.span_tree();
        assert_eq!(round_tripped, direct, "threads = {threads}");
        assert_eq!(round_tripped.folded(), direct.folded());
        assert_eq!(round_tripped.render_text(), direct.render_text());
    }
}

#[test]
fn structural_quantities_agree_across_thread_counts() {
    let reference = run_workload(1);
    let ref_phases = SpanTree::build(&spans_of(&reference)).phases();
    let count_of = |phases: &[(String, synran_sim::PhaseStat)], name: &str| {
        phases
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, s)| s.count)
    };

    for threads in [2, 8] {
        let telemetry = run_workload(threads);
        assert_eq!(
            telemetry.snapshot().counter("cells.done"),
            reference.snapshot().counter("cells.done"),
            "threads = {threads}"
        );
        let phases = SpanTree::build(&spans_of(&telemetry)).phases();
        // Per-item spans happen exactly once per item at every thread
        // count; only the scheduling spans (parallel.worker) may differ.
        for name in ["cell.work", "cell.inner"] {
            assert_eq!(
                count_of(&phases, name),
                count_of(&ref_phases, name),
                "span count of {name} at threads = {threads}"
            );
            assert_eq!(count_of(&phases, name), 24);
        }
    }
}

#[test]
fn folded_output_is_well_formed() {
    let spans = spans_of(&run_workload(2));
    let folded = SpanTree::build(&spans).folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack<space>value");
        assert!(!stack.is_empty());
        assert!(!stack.contains(' '), "stack has no spaces: {stack}");
        value.parse::<u64>().expect("self-ns value");
    }
    // Utilization helpers see the worker-attributed scheduling spans.
    let busy = worker_busy_ns(&spans);
    assert!(!busy.is_empty());
    assert!(wall_ns(&spans) > 0);
}
