//! Pins the telemetry JSONL wire format: exact field order, exact bytes.
//!
//! Downstream tooling (the tier-1 smoke test, notebook loaders) parses
//! these lines with nothing but a JSON decoder and string matching, so
//! the schema — field names, field *order*, one event per line — is a
//! contract. These fixtures fail if serialization drifts.

use synran_sim::telemetry::Histogram;
use synran_sim::{JsonlSink, MemorySink, Telemetry, TelemetryEvent, TelemetryMode};

/// Every event variant's exact line, field order included.
#[test]
fn event_lines_are_pinned() {
    let cases: Vec<(TelemetryEvent, &str)> = vec![
        (
            TelemetryEvent::Meta {
                key: "experiment".to_string(),
                value: "e3_lower_bound".to_string(),
            },
            r#"{"type":"meta","key":"experiment","value":"e3_lower_bound"}"#,
        ),
        (
            TelemetryEvent::Counter {
                name: "sim.kills".to_string(),
                value: 42,
            },
            r#"{"type":"counter","name":"sim.kills","value":42}"#,
        ),
        (
            TelemetryEvent::Histogram {
                name: "round.messages".to_string(),
                count: 3,
                sum: 12,
                min: 2,
                max: 6,
            },
            r#"{"type":"histogram","name":"round.messages","count":3,"sum":12,"min":2,"max":6}"#,
        ),
        (
            TelemetryEvent::Span {
                name: "world.drive".to_string(),
                worker: None,
                start_ns: 10,
                elapsed_ns: 250,
            },
            r#"{"type":"span","name":"world.drive","worker":null,"start_ns":10,"elapsed_ns":250}"#,
        ),
        (
            TelemetryEvent::Span {
                name: "parallel.worker".to_string(),
                worker: Some(3),
                start_ns: 0,
                elapsed_ns: 7,
            },
            r#"{"type":"span","name":"parallel.worker","worker":3,"start_ns":0,"elapsed_ns":7}"#,
        ),
        (
            TelemetryEvent::RoundKills {
                round: 5,
                kills: 9,
                cap: 8,
                over_cap: true,
            },
            r#"{"type":"round_kills","round":5,"kills":9,"cap":8,"over_cap":true}"#,
        ),
    ];
    for (event, expected) in cases {
        assert_eq!(event.to_jsonl(), expected);
    }
}

/// A registry export through `JsonlSink` produces exactly the expected
/// bytes: counters first, then histograms, both in name order, one event
/// per `\n`-terminated line.
#[test]
fn registry_export_fixture() {
    let telemetry = Telemetry::new(TelemetryMode::Counters);
    telemetry.incr("batch.runs", 2);
    telemetry.incr("alpha", 1);
    telemetry.incr("alpha", 4);
    telemetry.observe("round.kills", 5);
    telemetry.observe("round.kills", 7);
    let mut sink = JsonlSink::new(Vec::new());
    telemetry.export(&mut sink);
    let bytes = sink.finish().expect("no sink error");
    let text = String::from_utf8(bytes).expect("utf8");
    assert_eq!(
        text,
        concat!(
            r#"{"type":"counter","name":"alpha","value":5}"#,
            "\n",
            r#"{"type":"counter","name":"batch.runs","value":2}"#,
            "\n",
            r#"{"type":"histogram","name":"round.kills","count":2,"sum":12,"min":5,"max":7}"#,
            "\n",
        )
    );
}

/// Spans export after counters and histograms, in recording order, and
/// their wall-clock fields are the only non-reproducible values — pin the
/// structure, not the timings.
#[test]
fn spans_export_last_in_recording_order() {
    let telemetry = Telemetry::new(TelemetryMode::Spans);
    telemetry.incr("c", 1);
    {
        let _outer = telemetry.span("outer");
        let _inner = telemetry.worker_span("inner", 2);
        // inner drops first, so it is recorded first.
    }
    let mut sink = MemorySink::new();
    telemetry.export(&mut sink);
    let kinds: Vec<&str> = sink
        .events()
        .iter()
        .map(|e| match e {
            TelemetryEvent::Counter { .. } => "counter",
            TelemetryEvent::Histogram { .. } => "histogram",
            TelemetryEvent::Span { .. } => "span",
            _ => "other",
        })
        .collect();
    assert_eq!(kinds, ["counter", "span", "span"]);
    match &sink.events()[1] {
        TelemetryEvent::Span { name, worker, .. } => {
            assert_eq!(name, "inner");
            assert_eq!(*worker, Some(2));
        }
        other => panic!("expected span, got {other:?}"),
    }
    match &sink.events()[2] {
        TelemetryEvent::Span { name, worker, .. } => {
            assert_eq!(name, "outer");
            assert_eq!(*worker, None);
        }
        other => panic!("expected span, got {other:?}"),
    }
    // Every event still serializes to a single line.
    for event in sink.events() {
        let line = event.to_jsonl();
        assert!(!line.contains('\n'), "one event per line: {line}");
        assert!(
            line.starts_with("{\"type\":\""),
            "type field leads the line: {line}"
        );
    }
}

/// `Histogram` accessors used by consumers of `TelemetrySnapshot`.
#[test]
fn histogram_summary_is_exact() {
    let telemetry = Telemetry::new(TelemetryMode::Counters);
    for v in [4u64, 10, 1] {
        telemetry.observe("h", v);
    }
    let snap = telemetry.snapshot();
    let h: Histogram = snap.histogram("h").expect("recorded");
    assert_eq!((h.count, h.sum, h.min, h.max), (3, 15, 1, 10));
    assert!((h.mean() - 5.0).abs() < 1e-12);
}
