//! Verifies the pooled-scratch claim: once the inbox buffers have warmed
//! up, a steady-state round (`phase_a` + `deliver`) performs **zero** heap
//! allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The count
//! is kept per-thread so the test harness's own threads (which allocate
//! concurrently, e.g. for output capture) cannot perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use synran_sim::testing::CountDown;
use synran_sim::{Bit, Intervention, SimConfig, World};

thread_local! {
    /// Allocations + reallocations made by *this* thread.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: TLS may be unavailable during thread teardown.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Counts every allocation and reallocation the current thread routes
/// through the global allocator.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_allocate_nothing() {
    let n = 32;
    let rounds = 60u32;
    let mut world = World::new(SimConfig::new(n).seed(11), |_| {
        CountDown::new(rounds, Bit::One)
    })
    .expect("valid config");

    // Warm-up: the pooled inbox buffers grow to their steady-state
    // capacity during the first few broadcast rounds.
    for _ in 0..5 {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }

    let before = thread_allocs();
    for _ in 0..50 {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "expected zero allocations across 50 warm rounds of n={n} broadcast"
    );
}
