//! Verifies the pooled-scratch claim: once the inbox buffers have warmed
//! up, a steady-state round (`phase_a` + `deliver`) performs **zero** heap
//! allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The count
//! is kept per-thread so the test harness's own threads (which allocate
//! concurrently, e.g. for output capture) cannot perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use synran_sim::testing::{CountDown, Opaque};
use synran_sim::{Bit, Context, Inbox, Intervention, Process, SendPattern, SimConfig, World};

thread_local! {
    /// Allocations + reallocations made by *this* thread.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: TLS may be unavailable during thread teardown.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Counts every allocation and reallocation the current thread routes
/// through the global allocator.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `CountDown` with a payload that never bit-packs: the engine is forced
/// onto the scalar pair path. Reads only the inbox length, so any
/// allocation measured below is the engine's, not the process's.
#[derive(Debug, Clone)]
struct OpaqueCountDown {
    remaining: u32,
    last_inbox_len: usize,
}

impl Process for OpaqueCountDown {
    type Msg = Opaque<Bit>;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<Opaque<Bit>> {
        SendPattern::Broadcast(Opaque(Bit::One))
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<Opaque<Bit>>) {
        self.last_inbox_len = inbox.len();
        self.remaining = self.remaining.saturating_sub(1);
    }

    fn decision(&self) -> Option<Bit> {
        (self.remaining == 0).then_some(Bit::One)
    }

    fn halted(&self) -> bool {
        self.remaining == 0
    }
}

/// Runs 5 warm-up rounds then measures 50 steady-state rounds of `world`,
/// asserting the engine performed zero heap allocations.
fn assert_steady_state_alloc_free<P: Process>(world: &mut World<P>, label: &str) {
    // Warm-up: the pooled buffers (pair inboxes or bit planes) grow to
    // their steady-state capacity during the first few broadcast rounds.
    for _ in 0..5 {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }

    let before = thread_allocs();
    for _ in 0..50 {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }
    let after = thread_allocs();

    assert_eq!(
        after - before,
        0,
        "expected zero allocations across 50 warm {label} rounds"
    );
}

#[test]
fn steady_state_plane_rounds_allocate_nothing() {
    // `CountDown` broadcasts `Bit`s, which pack: these rounds ride the
    // bit-plane fast path.
    let n = 32;
    let mut world =
        World::new(SimConfig::new(n).seed(11), |_| CountDown::new(60, Bit::One)).expect("config");
    assert_steady_state_alloc_free(&mut world, "plane-path broadcast");
}

#[test]
fn steady_state_scalar_rounds_allocate_nothing() {
    // `Opaque` payloads never pack: the same rounds take the scalar pair
    // path, whose recycled `Vec` pools must stay allocation-free too.
    let n = 32;
    let mut world = World::new(SimConfig::new(n).seed(11), |_| OpaqueCountDown {
        remaining: 60,
        last_inbox_len: 0,
    })
    .expect("config");
    assert_steady_state_alloc_free(&mut world, "scalar-path broadcast");
}

#[test]
fn broadcast_bit_rounds_never_fall_back_to_the_scalar_path() {
    use synran_sim::telemetry::{Telemetry, TelemetryMode};
    let hub = Telemetry::new(TelemetryMode::Counters);
    let n = 16;
    let rounds = 25u32;
    let mut world = World::new(SimConfig::new(n).seed(3), |_| {
        CountDown::new(rounds, Bit::Zero)
    })
    .expect("config");
    world.set_telemetry(hub.clone());
    for _ in 0..rounds {
        world.phase_a().expect("phase A");
        world.deliver(Intervention::none()).expect("deliver");
    }
    let snap = hub.snapshot();
    assert_eq!(
        snap.counter("round.deliver.plane"),
        Some(u64::from(rounds)),
        "every broadcast-Bit round must engage the plane fast path"
    );
    assert_eq!(snap.counter("round.deliver.scalar"), None);
}
