//! Differential tests pinning the bit-plane fast path to the scalar path.
//!
//! The engine promises that routing broadcast rounds through word-packed
//! planes is *observationally invisible*: inbox contents, process
//! decisions, traces, metrics, and reports are bit-for-bit what the
//! scalar pair representation produces. These tests enforce that promise
//! with fixed-seed randomized cases over the awkward widths (`n < 64`,
//! `n` not a multiple of 64, word boundaries) and with whole-world
//! differential runs against [`Scalarized`] oracles.

use synran_sim::testing::{CoinCaller, CountDown, Scalarized};
use synran_sim::{
    Adversary, Bit, BitPlane, DeliveryFilter, Inbox, Intervention, Passive, Process, ProcessId,
    SimConfig, SimRng, World,
};

/// Widths that exercise every word-edge case: sub-word, word boundary,
/// one-past, and multi-word with a ragged tail.
const WIDTHS: [usize; 7] = [1, 5, 63, 64, 65, 100, 130];

/// Builds the pair-backed and plane-backed views of the same delivery
/// (senders ⊆ 0..n with per-sender bits) and returns both.
fn twin_inboxes(n: usize, rng: &mut SimRng) -> (Inbox<Bit>, Inbox<Bit>) {
    let mut sent = BitPlane::new(n);
    let mut ones = BitPlane::new(n);
    let mut pairs = Vec::new();
    for i in 0..n {
        if rng.index(3) == 0 {
            continue; // this sender stays silent
        }
        let bit = Bit::from(rng.index(2) == 1);
        sent.set(i);
        if bit.is_one() {
            ones.set(i);
        }
        pairs.push((ProcessId::new(i), bit));
    }
    (Inbox::from_messages(pairs), Inbox::from_plane(sent, ones))
}

#[test]
fn plane_and_pair_inboxes_are_observationally_equal_at_every_edge_width() {
    let mut rng = SimRng::new(0x9_1A4E);
    for n in WIDTHS {
        for case in 0..16 {
            let (pairs, plane) = twin_inboxes(n, &mut rng);
            assert_eq!(pairs, plane, "n={n} case={case}");
            assert_eq!(pairs.len(), plane.len(), "n={n} case={case}");
            assert_eq!(pairs.tally(), plane.tally(), "n={n} case={case}");
            assert!(
                pairs.iter().eq(plane.iter()),
                "n={n} case={case}: iteration order diverges"
            );
            // Per-sender lookups agree, in and out of range.
            for i in 0..n {
                assert_eq!(
                    pairs.from(ProcessId::new(i)),
                    plane.from(ProcessId::new(i)),
                    "n={n} case={case} sender={i}"
                );
            }
            assert_eq!(plane.from(ProcessId::new(n + 7)), None);
            assert_eq!(
                pairs.count_where(|m| m.is_one()),
                plane.count_where(|m| m.is_one()),
            );
        }
    }
}

#[test]
fn all_dead_round_yields_an_empty_inbox_on_both_reprs() {
    for n in WIDTHS {
        let pairs: Inbox<Bit> = Inbox::from_messages(Vec::new());
        let plane: Inbox<Bit> = Inbox::from_plane(BitPlane::new(n), BitPlane::new(n));
        assert_eq!(pairs, plane, "n={n}");
        assert!(plane.is_empty());
        assert_eq!(plane.tally(), (0, 0));
        assert_eq!(plane.iter().count(), 0);
    }
}

/// A deterministic scripted adversary: at round `r` (1-based), kill the
/// listed victims with the listed filters. Generic over the process type
/// so the same script drives a plain world and its scalarized twin.
struct Scripted {
    script: Vec<(u32, Vec<(usize, DeliveryFilter)>)>,
}

impl<P: Process> Adversary<P> for Scripted {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        let round = world.round().index();
        let mut iv = Intervention::new();
        for (r, kills) in &self.script {
            if *r == round {
                for (victim, filter) in kills {
                    iv = iv.kill(ProcessId::new(*victim), filter.clone());
                }
            }
        }
        iv
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

fn kill_script() -> Scripted {
    Scripted {
        script: vec![
            // One broadcast-surviving kill, one fully silent, one partial
            // (list), one prefix — every delivery-filter arm.
            (1, vec![(3, DeliveryFilter::All)]),
            (2, vec![(5, DeliveryFilter::None)]),
            (
                3,
                vec![(
                    1,
                    DeliveryFilter::To(vec![
                        ProcessId::new(0),
                        ProcessId::new(2),
                        ProcessId::new(6),
                    ]),
                )],
            ),
            (
                4,
                vec![
                    (7, DeliveryFilter::Prefix(4)),
                    (2, DeliveryFilter::Prefix(0)),
                ],
            ),
        ],
    }
}

#[test]
fn world_runs_identically_on_plane_and_scalar_paths_under_every_filter_kind() {
    use synran_sim::telemetry::{Telemetry, TelemetryMode};
    for n in [9, 40, 70] {
        let cfg = SimConfig::new(n).seed(0xD1FF).faults(6).trace(true);
        let plane_hub = Telemetry::new(TelemetryMode::Counters);
        let plain = {
            let mut w = World::new(cfg.clone(), |_| CountDown::new(8, Bit::One)).unwrap();
            w.set_telemetry(plane_hub.clone());
            w.run(&mut kill_script()).unwrap()
        };
        let scalar = {
            let mut w = World::new(cfg, |_| Scalarized(CountDown::new(8, Bit::One))).unwrap();
            w.run(&mut kill_script()).unwrap()
        };
        assert_eq!(
            format!("{plain:?}"),
            format!("{scalar:?}"),
            "n={n}: plane vs scalar report bytes diverge"
        );
        // Rounds with only All/None/Prefix/To-free broadcasts stay on the
        // fast path; the To/Prefix kills above don't evict it (they are
        // delivery filters, not send patterns).
        let snap = plane_hub.snapshot();
        assert_eq!(snap.counter("round.deliver.scalar"), None, "n={n}");
        assert!(
            snap.counter("round.deliver.plane").unwrap_or(0) >= 8,
            "n={n}"
        );
    }
}

#[test]
fn coin_streams_are_unperturbed_by_the_delivery_representation() {
    // CoinCaller draws one RNG bit per round in Phase A; if the plane path
    // consumed or reordered randomness, histories would diverge.
    for n in [7, 64, 96] {
        let run_plain = {
            let mut w = World::new(SimConfig::new(n).seed(0xC01), |_| CoinCaller::new(12)).unwrap();
            w.run(&mut Passive).unwrap();
            w.processes()
                .map(|(_, p, _)| p.history().to_vec())
                .collect::<Vec<_>>()
        };
        let run_scalar = {
            let mut w = World::new(SimConfig::new(n).seed(0xC01), |_| {
                Scalarized(CoinCaller::new(12))
            })
            .unwrap();
            w.run(&mut Passive).unwrap();
            w.processes()
                .map(|(_, p, _)| p.0.history().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run_plain, run_scalar, "n={n}");
    }
}
