//! Property test: `SynRanProcess::predict` is exactly the transition
//! `receive` applies — the contract the exact valency evaluator and the
//! full-information adversaries rely on.
//!
//! Cases are drawn from a fixed-seed [`SimRng`] rather than a
//! property-testing framework, so every CI run checks the same inputs and
//! failures reproduce by case index.

use synran_core::{CoinRule, PredictedStep, StageKind, SynRanMsg, SynRanProcess, ValueSet};
use synran_sim::{Bit, Context, Inbox, Process, ProcessId, Round, SimRng};

/// Builds an inbox with exactly `ones` Pref(1), `zeros` Pref(0), and
/// `known` Known messages.
fn inbox_with(ones: usize, zeros: usize, known: usize) -> Inbox<SynRanMsg> {
    let mut msgs = Vec::new();
    let mut sender = 0usize;
    for _ in 0..ones {
        msgs.push((ProcessId::new(sender), SynRanMsg::Pref(Bit::One)));
        sender += 1;
    }
    for _ in 0..zeros {
        msgs.push((ProcessId::new(sender), SynRanMsg::Pref(Bit::Zero)));
        sender += 1;
    }
    for _ in 0..known {
        msgs.push((
            ProcessId::new(sender),
            SynRanMsg::Known(ValueSet::single(Bit::One)),
        ));
        sender += 1;
    }
    Inbox::from_messages(msgs)
}

fn drive(process: &mut SynRanProcess, inbox: &Inbox<SynRanMsg>, seed: u64) {
    let mut rng = SimRng::new(seed);
    let mut ctx = Context::new(
        ProcessId::new(0),
        process_n(process),
        Round::FIRST,
        &mut rng,
    );
    process.receive(&mut ctx, inbox);
}

fn process_n(_p: &SynRanProcess) -> usize {
    // n is only used for the context; the value does not affect receive.
    64
}

#[test]
fn predict_matches_receive() {
    let mut gen = SimRng::new(0x92ED1C7);
    let mut tested = 0usize;
    for case in 0..256 {
        let n = 2 + gen.index(38);
        let input = gen.bit();
        let rule = if gen.bit().is_one() {
            CoinRule::OneSided
        } else {
            CoinRule::Symmetric
        };
        let history: Vec<(usize, usize, usize)> = (0..gen.index(5))
            .map(|_| (gen.index(40), gen.index(40), gen.index(4)))
            .collect();
        let ones = gen.index(40);
        let zeros = gen.index(40);
        let known = gen.index(4);
        let seed = gen.next_u64();

        let mut p = SynRanProcess::new(n, input, rule);
        // Random warm-up rounds (stop early if the process leaves the
        // probabilistic stage).
        for (i, &(o, z, k)) in history.iter().enumerate() {
            if p.stage() != StageKind::Probabilistic || p.decision().is_some() {
                break;
            }
            drive(&mut p, &inbox_with(o, z, k), seed.wrapping_add(i as u64));
        }
        if p.stage() != StageKind::Probabilistic || p.decision().is_some() {
            continue; // the former prop_assume
        }
        tested += 1;

        let n_r = ones + zeros + known;
        let predicted = p.predict(n_r, ones, zeros).expect("probabilistic stage");
        let before = p.clone();
        drive(&mut p, &inbox_with(ones, zeros, known), seed ^ 0xABCD);

        match predicted {
            PredictedStep::Handover => {
                assert_eq!(p.stage(), StageKind::Delay, "case {case}");
                assert_eq!(
                    p.preference(),
                    before.preference(),
                    "case {case}: b frozen at handover"
                );
            }
            PredictedStep::Stop(v) => {
                assert_eq!(p.decision(), Some(v), "case {case}");
                assert!(p.halted(), "case {case}");
            }
            PredictedStep::Propose { value, decided } => {
                assert_eq!(p.stage(), StageKind::Probabilistic, "case {case}");
                assert_eq!(p.preference(), value, "case {case}");
                assert_eq!(p.tentatively_decided(), decided, "case {case}");
                assert_eq!(p.decision(), None, "case {case}");
            }
            PredictedStep::FlipCoin => {
                assert_eq!(p.stage(), StageKind::Probabilistic, "case {case}");
                assert!(!p.tentatively_decided(), "case {case}");
                assert_eq!(p.decision(), None, "case {case}");
                // The coin is the only nondeterminism: same seed, same bit.
                let mut q = before.clone();
                drive(&mut q, &inbox_with(ones, zeros, known), seed ^ 0xABCD);
                assert_eq!(q.preference(), p.preference(), "case {case}");
            }
        }
        // The message-count history advanced exactly once.
        assert_eq!(p.last_n(), n_r, "case {case}");
    }
    assert!(tested >= 64, "too few cases survived warm-up: {tested}");
}

/// The one-sided rule is the only difference between the variants:
/// with zeros visible, both rules predict identically.
#[test]
fn variants_agree_when_zeros_visible() {
    let mut gen = SimRng::new(0xA62EE);
    for case in 0..256 {
        let n = 2 + gen.index(38);
        let ones = gen.index(40);
        let zeros = 1 + gen.index(39); // at least one zero
        let input = gen.bit();
        let a = SynRanProcess::new(n, input, CoinRule::OneSided);
        let b = SynRanProcess::new(n, input, CoinRule::Symmetric);
        let n_r = ones + zeros;
        assert_eq!(
            a.predict(n_r, ones, zeros),
            b.predict(n_r, ones, zeros),
            "case {case}"
        );
    }
}
