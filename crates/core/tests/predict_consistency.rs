//! Property test: `SynRanProcess::predict` is exactly the transition
//! `receive` applies — the contract the exact valency evaluator and the
//! full-information adversaries rely on.

use proptest::prelude::*;

use synran_core::{CoinRule, PredictedStep, StageKind, SynRanMsg, SynRanProcess, ValueSet};
use synran_sim::{Bit, Context, Inbox, Process, ProcessId, Round, SimRng};

/// Builds an inbox with exactly `ones` Pref(1), `zeros` Pref(0), and
/// `known` Known messages.
fn inbox_with(ones: usize, zeros: usize, known: usize) -> Inbox<SynRanMsg> {
    let mut msgs = Vec::new();
    let mut sender = 0usize;
    for _ in 0..ones {
        msgs.push((ProcessId::new(sender), SynRanMsg::Pref(Bit::One)));
        sender += 1;
    }
    for _ in 0..zeros {
        msgs.push((ProcessId::new(sender), SynRanMsg::Pref(Bit::Zero)));
        sender += 1;
    }
    for _ in 0..known {
        msgs.push((
            ProcessId::new(sender),
            SynRanMsg::Known(ValueSet::single(Bit::One)),
        ));
        sender += 1;
    }
    Inbox::from_messages(msgs)
}

fn drive(process: &mut SynRanProcess, inbox: &Inbox<SynRanMsg>, seed: u64) {
    let mut rng = SimRng::new(seed);
    let mut ctx = Context::new(ProcessId::new(0), process_n(process), Round::FIRST, &mut rng);
    process.receive(&mut ctx, inbox);
}

fn process_n(_p: &SynRanProcess) -> usize {
    // n is only used for the context; the value does not affect receive.
    64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn predict_matches_receive(
        n in 2usize..40,
        input in any::<bool>(),
        rule_one_sided in any::<bool>(),
        history in proptest::collection::vec((0usize..40, 0usize..40, 0usize..4), 0..5),
        ones in 0usize..40,
        zeros in 0usize..40,
        known in 0usize..4,
        seed in any::<u64>(),
    ) {
        let rule = if rule_one_sided { CoinRule::OneSided } else { CoinRule::Symmetric };
        let mut p = SynRanProcess::new(n, Bit::from(input), rule);

        // Random warm-up rounds (stop early if the process leaves the
        // probabilistic stage).
        for (i, &(o, z, k)) in history.iter().enumerate() {
            if p.stage() != StageKind::Probabilistic || p.decision().is_some() {
                break;
            }
            drive(&mut p, &inbox_with(o, z, k), seed.wrapping_add(i as u64));
        }
        prop_assume!(p.stage() == StageKind::Probabilistic && p.decision().is_none());

        let n_r = ones + zeros + known;
        let predicted = p.predict(n_r, ones, zeros).expect("probabilistic stage");
        let before = p.clone();
        drive(&mut p, &inbox_with(ones, zeros, known), seed ^ 0xABCD);

        match predicted {
            PredictedStep::Handover => {
                prop_assert_eq!(p.stage(), StageKind::Delay);
                prop_assert_eq!(p.preference(), before.preference(), "b frozen at handover");
            }
            PredictedStep::Stop(v) => {
                prop_assert_eq!(p.decision(), Some(v));
                prop_assert!(p.halted());
            }
            PredictedStep::Propose { value, decided } => {
                prop_assert_eq!(p.stage(), StageKind::Probabilistic);
                prop_assert_eq!(p.preference(), value);
                prop_assert_eq!(p.tentatively_decided(), decided);
                prop_assert_eq!(p.decision(), None);
            }
            PredictedStep::FlipCoin => {
                prop_assert_eq!(p.stage(), StageKind::Probabilistic);
                prop_assert!(!p.tentatively_decided());
                prop_assert_eq!(p.decision(), None);
                // The coin is the only nondeterminism: same seed, same bit.
                let mut q = before.clone();
                drive(&mut q, &inbox_with(ones, zeros, known), seed ^ 0xABCD);
                prop_assert_eq!(q.preference(), p.preference());
            }
        }
        // The message-count history advanced exactly once.
        prop_assert_eq!(p.last_n(), n_r);
    }

    /// The one-sided rule is the only difference between the variants:
    /// with zeros visible, both rules predict identically.
    #[test]
    fn variants_agree_when_zeros_visible(
        n in 2usize..40,
        ones in 0usize..40,
        zeros in 1usize..40, // at least one zero
        input in any::<bool>(),
    ) {
        let a = SynRanProcess::new(n, Bit::from(input), CoinRule::OneSided);
        let b = SynRanProcess::new(n, Bit::from(input), CoinRule::Symmetric);
        let n_r = ones + zeros;
        prop_assert_eq!(a.predict(n_r, ones, zeros), b.predict(n_r, ones, zeros));
    }
}
