//! SynRan and flooding rides the engine's bit-plane fast path (their
//! messages pack into single bits); these tests pin the protocols'
//! observable behaviour — threshold proposals, decisions, round counts,
//! whole reports — to the scalar pair path via [`Scalarized`] oracles.

use synran_core::{ConsensusProtocol, FloodingConsensus, SynRan};
use synran_sim::testing::Scalarized;
use synran_sim::{Bit, Passive, SimConfig, World};

/// Runs `protocol` plain and scalarized from identical seeds and asserts
/// the full run reports match byte for byte.
fn assert_plane_scalar_parity<P: ConsensusProtocol>(protocol: &P, n: usize, seed: u64) {
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 3 == 0)).collect();
    let cfg = SimConfig::new(n).seed(seed).max_rounds(10_000).trace(true);
    let plain = {
        let mut w = World::new(cfg.clone(), |pid| {
            protocol.spawn(pid, n, inputs[pid.index()])
        })
        .unwrap();
        w.run(&mut Passive).unwrap()
    };
    let scalar = {
        let mut w = World::new(cfg, |pid| {
            Scalarized(protocol.spawn(pid, n, inputs[pid.index()]))
        })
        .unwrap();
        w.run(&mut Passive).unwrap()
    };
    assert_eq!(
        format!("{plain:?}"),
        format!("{scalar:?}"),
        "n={n} seed={seed}: plane vs scalar run reports diverge"
    );
}

#[test]
fn synran_threshold_decisions_match_the_scalar_oracle() {
    // The probabilistic stage's O-vs-N threshold comparisons are popcounts
    // on the plane path and pair scans on the scalar path; any off-by-one
    // in the tallies would flip a proposal and change the whole run.
    for n in [10, 63, 64, 70] {
        for seed in [1, 7, 1234] {
            assert_plane_scalar_parity(&SynRan::new(), n, seed);
            assert_plane_scalar_parity(&SynRan::symmetric(), n, seed);
        }
    }
}

#[test]
fn flooding_matches_the_scalar_oracle() {
    // Flooding's singleton rounds pack; rounds carrying {0,1} fall back.
    // Both must agree with the all-scalar oracle.
    for n in [9, 65] {
        for seed in [3, 99] {
            assert_plane_scalar_parity(&FloodingConsensus::for_faults(2), n, seed);
        }
    }
}
