//! `LeaderConsensus` — a CMS-style random-leader protocol (§1.2 context).
//!
//! The paper's §1.2 notes that Chor, Merritt & Shmoys [CMS89] reach
//! consensus in `O(1)` expected rounds against **non-adaptive** fail-stop
//! adversaries — so Theorem 1's `Ω(t/√(n·log n))` genuinely needs
//! adaptivity. This protocol makes that landscape measurable. It requires
//! `t < n/2` (like the protocols of that line of work) and proceeds in
//! two-round phases:
//!
//! * **R1 (estimate)** — broadcast the current estimate with a fresh
//!   random priority. A value held by a strict majority of *all* `n`
//!   processes becomes the phase's **candidate** (at most one value can
//!   ever qualify, so two processes never lock conflicting candidates).
//! * **R2 (candidate)** — broadcast the candidate (or ⊥) plus the
//!   estimate and another fresh priority. Seeing any candidate `v`
//!   adopts `est := v`; seeing **`≥ n − t`** candidate-`v` messages
//!   decides `v`. With all-⊥ candidates, adopt the estimate of the
//!   highest-priority message — the **random leader**.
//! * **Announcement** — a decided process broadcasts `Decide(v)` once and
//!   halts; any process hearing it decides and re-announces, so a single
//!   surviving announcement finishes everyone.
//!
//! Correctness for any fail-stop adversary with `t < n/2` (sketch, each
//! step matching an assertion in the test suite):
//!
//! 1. *One candidate per phase*: candidate `v` needs a strict majority of
//!    all `n` processes to **hold** `v` (a sender's value is fixed before
//!    delivery filtering), so candidates `v ≠ w` cannot coexist.
//! 2. *Deciding infects everyone*: a decider saw `≥ n − t` candidate-`v`
//!    senders; at most `t` processes ever fail, so every other process
//!    received `≥ n − 2t ≥ 1` of those messages in the same round and
//!    adopted `est = v`. From then on only `v` can be locked or decided.
//! 3. *Decisions stay reachable amid crashes*: senders alive at a round's
//!    start number `≥ n − (budget spent)`, and spent + dying ≤ t, so a
//!    unanimous population always delivers `≥ n − t` candidate messages —
//!    the protocol decides **while failures continue** (no quiescence
//!    wait; this is exactly what a SynRan-style stability rule cannot do,
//!    and why this protocol — unlike SynRan — is limited to `t < n/2`).
//! 4. *O(1) expected phases vs a static adversary*: the leader is the
//!    maximum of fresh random priorities, unknowable when the failure
//!    schedule was fixed; unless the schedule happens to kill that exact
//!    process mid-broadcast (probability ≤ kills/alive), every process
//!    adopts the same estimate and the next phase decides.
//! 5. *Θ(t) rounds vs the adaptive adversary*: priorities are Phase-A
//!    coins, visible to the full-information adversary **before
//!    delivery**; killing the few top-priority processes mid-send and
//!    splitting their last messages keeps the estimates divided at ~2
//!    kills per phase (see `synran_adversary::LeaderHunter` and E9).

use synran_sim::{Bit, Context, Inbox, PlaneMsg, Process, ProcessId, SendPattern};

use crate::ConsensusProtocol;

/// The protocol configuration: the fault bound `t` it is sized for.
///
/// # Examples
///
/// ```
/// use synran_core::{check_consensus, LeaderConsensus};
/// use synran_sim::{Bit, Passive, SimConfig};
///
/// let n = 12;
/// let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
/// let verdict = check_consensus(
///     &LeaderConsensus::for_faults(5),
///     &inputs,
///     SimConfig::new(n).faults(5).seed(3),
///     &mut Passive,
/// )?;
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderConsensus {
    t: usize,
}

impl LeaderConsensus {
    /// Creates the protocol sized for up to `t` failures.
    #[must_use]
    pub fn for_faults(t: usize) -> LeaderConsensus {
        LeaderConsensus { t }
    }

    /// The fault bound the decide threshold `n − t` uses.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }
}

impl ConsensusProtocol for LeaderConsensus {
    type Proc = LeaderProcess;

    fn spawn(&self, _pid: ProcessId, n: usize, input: Bit) -> LeaderProcess {
        assert!(
            2 * self.t < n,
            "LeaderConsensus requires t < n/2 (t = {}, n = {n})",
            self.t
        );
        LeaderProcess::new(n, self.t, input)
    }

    fn name(&self) -> &str {
        "leader"
    }
}

/// Messages LeaderConsensus exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderMsg {
    /// R1: the sender's estimate and a fresh leader priority.
    Est {
        /// The sender's current estimate.
        value: Bit,
        /// Fresh random priority (a Phase-A coin).
        priority: u64,
    },
    /// R2: the sender's phase candidate (`None` is the paper-style ⊥),
    /// its estimate as the leader-adoption fallback, and a fresh priority.
    Cand {
        /// The locked candidate, if R1 showed a strict majority.
        candidate: Option<Bit>,
        /// The sender's estimate — what leader adoption adopts.
        fallback: Bit,
        /// Fresh random priority.
        priority: u64,
    },
    /// A decided process's final broadcast.
    Decide(Bit),
}

/// Leader-election messages carry a 64-bit priority alongside the value,
/// so none of them fit in a single delivery bit; every round takes the
/// engine's scalar pair path.
impl PlaneMsg for LeaderMsg {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundKind {
    Est,
    Cand,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Announce {
    /// Not decided yet.
    No,
    /// Decided; the `Decide` broadcast goes out next round.
    Pending,
    /// The announcement was sent; halt after this round.
    Sent,
}

/// One participant in LeaderConsensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderProcess {
    n: usize,
    t: usize,
    est: Bit,
    candidate: Option<Bit>,
    round_kind: RoundKind,
    decision: Option<Bit>,
    announce: Announce,
}

impl LeaderProcess {
    /// Creates a process with the given input.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `t ≥ n/2`.
    #[must_use]
    pub fn new(n: usize, t: usize, input: Bit) -> LeaderProcess {
        assert!(n > 0, "LeaderConsensus needs at least one process");
        assert!(2 * t < n, "LeaderConsensus requires t < n/2");
        LeaderProcess {
            n,
            t,
            est: input,
            candidate: None,
            round_kind: RoundKind::Est,
            decision: None,
            announce: Announce::No,
        }
    }

    /// The current estimate.
    #[must_use]
    pub fn estimate(&self) -> Bit {
        self.est
    }

    /// Whether the next round is an estimate (R1) round.
    #[must_use]
    pub fn in_estimate_round(&self) -> bool {
        self.round_kind == RoundKind::Est
    }

    fn on_decide(&mut self, value: Bit) {
        if self.decision.is_none() {
            self.decision = Some(value);
            self.announce = Announce::Pending;
        }
        self.est = value;
    }
}

impl Process for LeaderProcess {
    type Msg = LeaderMsg;

    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<LeaderMsg> {
        match self.announce {
            Announce::Pending => {
                self.announce = Announce::Sent;
                return SendPattern::Broadcast(LeaderMsg::Decide(
                    self.decision.expect("pending announce implies decision"),
                ));
            }
            Announce::Sent => return SendPattern::Silent,
            Announce::No => {}
        }
        let priority = ctx.rng().next_u64();
        SendPattern::Broadcast(match self.round_kind {
            RoundKind::Est => LeaderMsg::Est {
                value: self.est,
                priority,
            },
            RoundKind::Cand => LeaderMsg::Cand {
                candidate: self.candidate,
                fallback: self.est,
                priority,
            },
        })
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<LeaderMsg>) {
        if self.announce == Announce::Sent {
            return; // halting after the announcement round
        }
        // A surviving announcement ends the game for its hearers.
        if let Some(LeaderMsg::Decide(v)) =
            inbox.messages().find(|m| matches!(m, LeaderMsg::Decide(_)))
        {
            self.on_decide(v);
            return;
        }
        if self.announce == Announce::Pending {
            return; // already decided; just waiting to announce
        }
        match self.round_kind {
            RoundKind::Est => {
                let mut counts = [0usize; 2];
                for msg in inbox.messages() {
                    if let LeaderMsg::Est { value, .. } = msg {
                        counts[usize::from(value)] += 1;
                    }
                }
                // A strict majority of all n processes: at most one value
                // can ever satisfy this, whatever each receiver saw.
                self.candidate = if 2 * counts[1] > self.n {
                    Some(Bit::One)
                } else if 2 * counts[0] > self.n {
                    Some(Bit::Zero)
                } else {
                    None
                };
                self.round_kind = RoundKind::Cand;
            }
            RoundKind::Cand => {
                let mut counts = [0usize; 2];
                let mut leader: Option<(u64, ProcessId, Bit)> = None;
                for (sender, msg) in inbox.iter() {
                    if let LeaderMsg::Cand {
                        candidate,
                        fallback,
                        priority,
                    } = msg
                    {
                        if let Some(v) = candidate {
                            counts[usize::from(v)] += 1;
                        }
                        if leader.is_none_or(|l| (l.0, l.1) < (priority, sender)) {
                            leader = Some((priority, sender, fallback));
                        }
                    }
                }
                // Step 1 of the proof says both cannot be positive; stay
                // deterministic even if an impossible state ever arose.
                let locked = if counts[1] >= counts[0] && counts[1] > 0 {
                    Some((Bit::One, counts[1]))
                } else if counts[0] > 0 {
                    Some((Bit::Zero, counts[0]))
                } else {
                    None
                };
                match locked {
                    Some((v, count)) => {
                        self.est = v;
                        if count >= self.n - self.t {
                            self.on_decide(v);
                        }
                    }
                    None => {
                        // All-⊥: adopt the random leader's estimate.
                        if let Some((_, _, fallback)) = leader {
                            self.est = fallback;
                        }
                    }
                }
                self.candidate = None;
                self.round_kind = RoundKind::Est;
            }
        }
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.announce == Announce::Sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_consensus;
    use synran_sim::{Adversary, DeliveryFilter, Intervention, Passive, SimConfig, World};

    fn split_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| Bit::from(i % 2 == 0)).collect()
    }

    #[test]
    fn unanimous_inputs_decide_in_one_phase() {
        for v in [Bit::Zero, Bit::One] {
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(4),
                &[v; 9],
                SimConfig::new(9).faults(4).seed(1),
                &mut Passive,
            )
            .unwrap();
            assert!(verdict.is_correct(), "{:?}", verdict.violations());
            assert_eq!(verdict.report().unanimous_decision(), Some(v));
            // R1 + R2 + announcement round.
            assert_eq!(verdict.rounds(), 3);
        }
    }

    #[test]
    fn split_inputs_converge_in_constant_phases() {
        for seed in 0..20 {
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(9),
                &split_inputs(20),
                SimConfig::new(20).faults(9).seed(seed),
                &mut Passive,
            )
            .unwrap();
            assert!(verdict.is_correct(), "seed {seed}");
            assert!(
                verdict.rounds() <= 7,
                "seed {seed}: leader adoption converges in O(1) phases, took {}",
                verdict.rounds()
            );
        }
    }

    #[test]
    fn decides_amid_ongoing_crashes() {
        // The property SynRan's stability rule cannot offer: steady kills
        // every round do NOT postpone the decision.
        struct Steady;
        impl Adversary<LeaderProcess> for Steady {
            fn intervene(&mut self, world: &World<LeaderProcess>) -> Intervention {
                if world.budget().remaining() > 0 && world.alive_count() > 1 {
                    Intervention::kill_all_silent([world.alive_ids().next().expect("alive")])
                } else {
                    Intervention::none()
                }
            }
        }
        for seed in 0..10 {
            let n = 21;
            let t = 10;
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed).max_rounds(10_000),
                &mut Steady,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
            assert!(
                verdict.rounds() <= 12,
                "seed {seed}: decisions must not wait for quiescence, took {}",
                verdict.rounds()
            );
        }
    }

    #[test]
    fn announcement_chain_survives_announcer_kills() {
        // Kill every announcer mid-send, delivering to a single process:
        // the chain must still percolate and end the run.
        struct AnnounceCutter;
        impl Adversary<LeaderProcess> for AnnounceCutter {
            fn intervene(&mut self, world: &World<LeaderProcess>) -> Intervention {
                let mut iv = Intervention::new();
                let mut budget = world.budget().remaining();
                let confidant = world.alive_ids().last();
                for pid in world.alive_ids() {
                    if budget == 0 || world.alive_count() <= iv.kills().len() + 1 {
                        break;
                    }
                    if let Some(SendPattern::Broadcast(LeaderMsg::Decide(_))) = world.outbox(pid) {
                        if Some(pid) != confidant {
                            iv = iv.kill(pid, DeliveryFilter::To(confidant.into_iter().collect()));
                            budget -= 1;
                        }
                    }
                }
                iv
            }
        }
        for seed in 0..8 {
            let n = 15;
            let t = 7;
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed).max_rounds(10_000),
                &mut AnnounceCutter,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn validity_under_partial_delivery_attacks() {
        struct HalfCutter;
        impl Adversary<LeaderProcess> for HalfCutter {
            fn intervene(&mut self, world: &World<LeaderProcess>) -> Intervention {
                if world.round().index() > 3 || world.budget().remaining() == 0 {
                    return Intervention::none();
                }
                let half: Vec<_> = world.alive_ids().step_by(2).collect();
                match world.alive_ids().last() {
                    Some(victim) if world.alive_count() > 1 => {
                        Intervention::new().kill(victim, DeliveryFilter::To(half))
                    }
                    _ => Intervention::none(),
                }
            }
        }
        for v in [Bit::Zero, Bit::One] {
            for seed in 0..5 {
                let n = 13;
                let verdict = check_consensus(
                    &LeaderConsensus::for_faults(6),
                    &vec![v; n],
                    SimConfig::new(n).faults(6).seed(seed).max_rounds(10_000),
                    &mut HalfCutter,
                )
                .unwrap();
                assert!(verdict.is_correct(), "{:?}", verdict.violations());
                assert_eq!(verdict.report().unanimous_decision(), Some(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "t < n/2")]
    fn oversized_fault_bound_rejected() {
        let _ = LeaderConsensus::for_faults(5).spawn(ProcessId::new(0), 10, Bit::One);
    }

    #[test]
    fn accessors() {
        let p = LeaderProcess::new(7, 3, Bit::One);
        assert_eq!(p.estimate(), Bit::One);
        assert!(p.in_estimate_round());
        assert_eq!(p.decision(), None);
        assert!(!p.halted());
        let protocol = LeaderConsensus::for_faults(3);
        assert_eq!(protocol.name(), "leader");
        assert_eq!(protocol.t(), 3);
    }
}
