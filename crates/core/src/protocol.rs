//! The consensus-protocol abstraction shared by runners and experiments.

use synran_sim::{Bit, Process, ProcessId};

/// A family of consensus processes: given a system size and an input bit,
/// produces the process each participant runs.
///
/// A `ConsensusProtocol` is the *recipe*; the [`Process`](synran_sim::Process)
/// instances it spawns are the running state machines. Processes must be
/// `Clone` so full-information adversaries can fork executions and explore
/// futures (see `synran-adversary`).
///
/// # Examples
///
/// ```
/// use synran_core::{ConsensusProtocol, FloodingConsensus};
/// use synran_sim::{Bit, ProcessId};
///
/// let protocol = FloodingConsensus::with_rounds(3);
/// let proc = protocol.spawn(ProcessId::new(0), 4, Bit::One);
/// let _ = proc; // a ready-to-run process
/// ```
pub trait ConsensusProtocol {
    /// The process type participants run.
    type Proc: Process + Clone;

    /// Creates the process `pid` runs in a system of `n` processes with
    /// input `input`.
    fn spawn(&self, pid: ProcessId, n: usize, input: Bit) -> Self::Proc;

    /// Short name used in experiment tables.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    // A minimal protocol implementation to pin the trait's shape.
    #[derive(Debug)]
    struct EchoProtocol;

    impl ConsensusProtocol for EchoProtocol {
        type Proc = synran_sim::testing::Echo;

        fn spawn(&self, _pid: ProcessId, _n: usize, input: Bit) -> Self::Proc {
            synran_sim::testing::Echo::new(input)
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn trait_is_usable_with_generic_runners() {
        fn spawn_all<P: ConsensusProtocol>(p: &P, n: usize) -> Vec<P::Proc> {
            ProcessId::all(n)
                .map(|pid| p.spawn(pid, n, Bit::Zero))
                .collect()
        }
        let procs = spawn_all(&EchoProtocol, 3);
        assert_eq!(procs.len(), 3);
        assert_eq!(EchoProtocol.name(), "echo");
    }
}
