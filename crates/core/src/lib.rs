//! # synran-core — the protocols of Bar-Joseph & Ben-Or (PODC 1998)
//!
//! The consensus protocols of *"A Tight Lower Bound for Randomized
//! Synchronous Consensus"*, built on the [`synran_sim`] substrate:
//!
//! * [`SynRan`] — the paper's §4 protocol: Ben-Or-style randomized
//!   consensus with a **one-side-biased coin**, an early-stopping stability
//!   rule, and a handover to deterministic flooding once fewer than
//!   `√(n/log n)` processes survive. Tolerates any `t ≤ n` fail-stop
//!   faults and reaches agreement in expected `Θ(t/√(n·log(2+t/√n)))`
//!   rounds — matching the paper's lower bound.
//! * [`SynRan::symmetric`] — the ablation with a plain fair coin, used to
//!   demonstrate *why* the one-sided rule matters.
//! * [`FloodingConsensus`] — the classic deterministic `t+1`-round
//!   protocol: both the baseline the paper's introduction compares against
//!   and SynRan's deterministic stage.
//!
//! Plus the harness around them: the [`ConsensusProtocol`] factory trait,
//! the Agreement/Validity/Termination [`checker`](check_consensus), and a
//! seeded [batch runner](run_batch).
//!
//! ## Quick start
//!
//! ```
//! use synran_core::{check_consensus, SynRan};
//! use synran_sim::{Bit, Passive, SimConfig};
//!
//! let inputs: Vec<Bit> = (0..16).map(|i| Bit::from(i % 2 == 0)).collect();
//! let verdict = check_consensus(
//!     &SynRan::new(),
//!     &inputs,
//!     SimConfig::new(16).seed(42),
//!     &mut Passive,
//! )?;
//! assert!(verdict.is_correct());
//! # Ok::<(), synran_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod checker;
mod flooding;
mod leader;
mod math;
mod protocol;
mod runner;
mod synran;
mod value_set;

pub use checker::{check_consensus, check_consensus_with, evaluate, ConsensusVerdict};
pub use flooding::{FloodingConsensus, FloodingCore, FloodingProcess};
pub use leader::{LeaderConsensus, LeaderMsg, LeaderProcess};
pub use math::{
    deterministic_stage_rounds, deterministic_threshold, ln_clamped, per_round_kill_budget,
};
pub use protocol::ConsensusProtocol;
pub use runner::{run_batch, run_batch_with, BatchOutcome, InputAssignment};
pub use synran::{
    CoinRule, PredictedStep, StageKind, SynRan, SynRanMsg, SynRanProcess, Thresholds,
};
pub use value_set::ValueSet;
