//! Small numeric helpers shared by the protocols.
//!
//! The paper writes `log` without a base; all its bounds are asymptotic, so
//! the base only shifts constants. This crate uses the natural logarithm
//! throughout, clamped away from zero so tiny systems (n = 1, 2) stay
//! well-defined.

/// `ln n`, clamped to at least 0.5 so ratios like `n / ln n` are defined
/// and monotone for every `n ≥ 1`.
#[must_use]
pub fn ln_clamped(n: usize) -> f64 {
    (n as f64).ln().max(0.5)
}

/// The paper's `√(n / log n)` — the live-process threshold below which
/// SynRan switches to its deterministic stage, and the length of that
/// stage.
///
/// # Examples
///
/// ```
/// let th = synran_core::deterministic_threshold(1000);
/// assert!((th - (1000.0f64 / 1000.0f64.ln()).sqrt()).abs() < 1e-9);
/// ```
#[must_use]
pub fn deterministic_threshold(n: usize) -> f64 {
    (n as f64 / ln_clamped(n)).sqrt()
}

/// Number of flooding rounds SynRan's deterministic stage runs:
/// `⌈√(n / log n)⌉ + 2`.
///
/// The paper runs exactly `√(n/log n)` rounds. We add two slack rounds to
/// absorb the one-round skew that partial-delivery kills can introduce
/// between processes entering the stage (see DESIGN.md §2); the stage
/// remains `O(√(n / log n))`, so every bound in the paper is unaffected.
#[must_use]
pub fn deterministic_stage_rounds(n: usize) -> u32 {
    deterministic_threshold(n).ceil() as u32 + 2
}

/// The paper's lower-bound kill rate `4·√(n·log n)` (Lemma 3.1): how many
/// processes per round the adversary budgets to keep an execution
/// null-valent or bivalent.
#[must_use]
pub fn per_round_kill_budget(n: usize) -> f64 {
    4.0 * ((n as f64) * ln_clamped(n)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_clamped_is_monotone_and_positive() {
        let mut prev = 0.0;
        for n in [1usize, 2, 3, 10, 100, 10_000] {
            let v = ln_clamped(n);
            assert!(v >= 0.5);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn thresholds_are_sublinear() {
        for n in [4usize, 64, 1024, 65_536] {
            let th = deterministic_threshold(n);
            assert!(th > 0.0);
            assert!(th < n as f64, "threshold must be below n");
            // √(n/ln n) grows, but slower than √n.
            assert!(th <= (n as f64).sqrt());
        }
    }

    #[test]
    fn stage_rounds_cover_the_alive_count() {
        // When the stage begins, fewer than √(n/ln n) processes are alive;
        // flooding needs (alive − 1) + 1 = alive rounds in the worst case,
        // and we run ⌈√(n/ln n)⌉ + 2 ≥ alive + 1.
        for n in [2usize, 10, 100, 5000] {
            let alive_max = deterministic_threshold(n).ceil() as u32;
            assert!(deterministic_stage_rounds(n) > alive_max);
        }
    }

    #[test]
    fn kill_budget_matches_formula() {
        let n = 400usize;
        let expect = 4.0 * ((400.0f64) * 400.0f64.ln()).sqrt();
        assert!((per_round_kill_budget(n) - expect).abs() < 1e-9);
    }

    #[test]
    fn tiny_systems_are_defined() {
        assert!(deterministic_threshold(1).is_finite());
        assert!(deterministic_stage_rounds(1) >= 3);
        assert!(per_round_kill_budget(1) > 0.0);
    }
}
