//! Deterministic flooding-set consensus.
//!
//! The textbook fail-stop consensus protocol ([Lyn96] §6.2): every round,
//! broadcast the set of values you have seen and union in everything you
//! receive; after `R` rounds decide the minimum known value. With at most
//! `f` crashes, `R = f + 1` rounds guarantee a *clean* round (one with no
//! crash), after which all alive processes hold identical sets forever.
//!
//! This protocol plays two roles in the workspace:
//!
//! 1. the **deterministic baseline** of the paper's introduction — the
//!    `t + 1`-round protocol any randomized protocol is racing against;
//! 2. the **deterministic stage** of SynRan (§4), run once fewer than
//!    `√(n/log n)` processes survive — [`FloodingCore`] is the shared
//!    engine.

use synran_sim::{Bit, Context, Inbox, Process, ProcessId, SendPattern};

use crate::{ConsensusProtocol, ValueSet};

/// The round-by-round state of a flooding execution: the known-value set
/// and the remaining round count.
///
/// # Examples
///
/// ```
/// use synran_core::{FloodingCore, ValueSet};
/// use synran_sim::Bit;
///
/// let mut core = FloodingCore::new(ValueSet::single(Bit::One), 2);
/// core.absorb([ValueSet::single(Bit::Zero)]);
/// core.absorb([]);
/// assert!(core.done());
/// assert_eq!(core.decide(), Some(Bit::Zero)); // min rule
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodingCore {
    known: ValueSet,
    rounds_left: u32,
}

impl FloodingCore {
    /// Starts flooding from `initial` for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty — flooding must start from at least the
    /// process's own value, or validity is unprovable.
    #[must_use]
    pub fn new(initial: ValueSet, rounds: u32) -> FloodingCore {
        assert!(!initial.is_empty(), "flooding must start with a value");
        FloodingCore {
            known: initial,
            rounds_left: rounds,
        }
    }

    /// The set to broadcast this round.
    #[must_use]
    pub fn outgoing(&self) -> ValueSet {
        self.known
    }

    /// Consumes one round's received sets and advances the round counter.
    pub fn absorb<I: IntoIterator<Item = ValueSet>>(&mut self, received: I) {
        for s in received {
            self.known.union_with(s);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
    }

    /// `true` once all rounds have run.
    #[must_use]
    pub fn done(&self) -> bool {
        self.rounds_left == 0
    }

    /// The decision — the minimum known value — once [`done`](Self::done).
    /// Returns `None` while rounds remain.
    #[must_use]
    pub fn decide(&self) -> Option<Bit> {
        self.done().then(|| {
            self.known
                .min()
                .expect("known set is never empty by construction")
        })
    }

    /// The values known so far.
    #[must_use]
    pub fn known(&self) -> ValueSet {
        self.known
    }
}

/// The flooding-set consensus protocol, fixed to a round count.
///
/// For a system that must tolerate `t` crashes, use
/// [`FloodingConsensus::for_faults`] (`t + 1` rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodingConsensus {
    rounds: u32,
}

impl FloodingConsensus {
    /// A flooding protocol that runs exactly `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    #[must_use]
    pub fn with_rounds(rounds: u32) -> FloodingConsensus {
        assert!(rounds > 0, "flooding needs at least one round");
        FloodingConsensus { rounds }
    }

    /// The classic `t + 1`-round instantiation tolerating `t` crashes.
    #[must_use]
    pub fn for_faults(t: usize) -> FloodingConsensus {
        FloodingConsensus {
            rounds: t as u32 + 1,
        }
    }

    /// The configured round count.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

impl ConsensusProtocol for FloodingConsensus {
    type Proc = FloodingProcess;

    fn spawn(&self, _pid: ProcessId, _n: usize, input: Bit) -> FloodingProcess {
        FloodingProcess {
            core: FloodingCore::new(ValueSet::single(input), self.rounds),
            decision: None,
        }
    }

    fn name(&self) -> &str {
        "flooding"
    }
}

/// One participant in flooding-set consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodingProcess {
    core: FloodingCore,
    decision: Option<Bit>,
}

impl FloodingProcess {
    /// The values this process currently knows.
    #[must_use]
    pub fn known(&self) -> ValueSet {
        self.core.known()
    }
}

impl Process for FloodingProcess {
    type Msg = ValueSet;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<ValueSet> {
        SendPattern::Broadcast(self.core.outgoing())
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<ValueSet>) {
        self.core.absorb(inbox.messages());
        if self.core.done() {
            self.decision = self.core.decide();
        }
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.decision.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_sim::{Adversary, DeliveryFilter, Intervention, Passive, SimConfig, World};

    fn run_flooding(
        n: usize,
        t: usize,
        inputs: &[Bit],
        adversary: &mut impl Adversary<FloodingProcess>,
        seed: u64,
    ) -> synran_sim::RunReport {
        let protocol = FloodingConsensus::for_faults(t);
        let mut world = World::new(SimConfig::new(n).faults(t).seed(seed), |pid| {
            protocol.spawn(pid, n, inputs[pid.index()])
        })
        .unwrap();
        world.run(adversary).unwrap()
    }

    #[test]
    fn core_counts_rounds_and_unions() {
        let mut core = FloodingCore::new(ValueSet::single(Bit::One), 3);
        assert!(!core.done());
        assert_eq!(core.decide(), None);
        core.absorb([ValueSet::single(Bit::One)]);
        core.absorb([ValueSet::single(Bit::Zero), ValueSet::single(Bit::One)]);
        core.absorb([]);
        assert!(core.done());
        assert_eq!(core.known(), ValueSet::both());
        assert_eq!(core.decide(), Some(Bit::Zero));
    }

    #[test]
    #[should_panic(expected = "start with a value")]
    fn core_rejects_empty_start() {
        let _ = FloodingCore::new(ValueSet::empty(), 1);
    }

    #[test]
    fn fault_free_agreement_on_min() {
        let inputs = [Bit::One, Bit::Zero, Bit::One, Bit::One];
        let report = run_flooding(4, 0, &inputs, &mut Passive, 1);
        assert_eq!(report.rounds(), 1); // t = 0 ⇒ one round
        assert_eq!(report.unanimous_decision(), Some(Bit::Zero));
    }

    #[test]
    fn validity_unanimous_inputs() {
        for v in [Bit::Zero, Bit::One] {
            let inputs = [v; 5];
            let report = run_flooding(5, 2, &inputs, &mut Passive, 2);
            assert_eq!(report.unanimous_decision(), Some(v));
        }
    }

    #[test]
    fn agreement_survives_worst_case_partial_crash_chain() {
        // The classic bad schedule for flooding: the only holder of value 0
        // crashes each round after whispering to exactly one process. With
        // t + 1 rounds the chain runs out of crashes and a clean round
        // equalises the sets.
        struct Whisper {
            next_victim: usize,
        }
        impl Adversary<FloodingProcess> for Whisper {
            fn intervene(&mut self, world: &World<FloodingProcess>) -> Intervention {
                // Find an alive process that knows 0 and kill it, letting
                // only the next process in line hear it.
                let holder = world
                    .alive_ids()
                    .find(|&pid| world.process(pid).known().contains(Bit::Zero));
                let Some(victim) = holder else {
                    return Intervention::none();
                };
                if world.budget().remaining() == 0 {
                    return Intervention::none();
                }
                self.next_victim += 1;
                let confidant = world
                    .alive_ids()
                    .filter(|&p| p != victim)
                    .nth(self.next_victim % world.alive_count().saturating_sub(1).max(1));
                match confidant {
                    Some(c) => Intervention::new().kill(victim, DeliveryFilter::To(vec![c])),
                    None => Intervention::none(),
                }
            }
        }

        let n = 6;
        let t = 3;
        let mut inputs = [Bit::One; 6];
        inputs[0] = Bit::Zero;
        let report = run_flooding(n, t, &inputs, &mut Whisper { next_victim: 0 }, 3);
        // Whatever the survivors decide, they must agree.
        assert!(report.unanimous_decision().is_some(), "agreement violated");
        assert_eq!(report.rounds(), t as u32 + 1);
    }

    #[test]
    fn runs_exactly_t_plus_one_rounds() {
        for t in [0usize, 1, 4, 7] {
            let inputs = vec![Bit::One; 8];
            let report = run_flooding(8, t, &inputs, &mut Passive, 4);
            assert_eq!(report.rounds(), t as u32 + 1);
        }
    }

    #[test]
    fn protocol_metadata() {
        let p = FloodingConsensus::for_faults(5);
        assert_eq!(p.rounds(), 6);
        assert_eq!(p.name(), "flooding");
        assert_eq!(FloodingConsensus::with_rounds(3).rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = FloodingConsensus::with_rounds(0);
    }
}
