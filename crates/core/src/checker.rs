//! Correctness checking: Agreement, Validity, Termination.
//!
//! A `t`-resilient consensus protocol must satisfy (paper §3.1):
//!
//! * **Agreement** — all non-faulty processes decide the same value;
//! * **Validity** — if all inputs are `v`, the only possible decision is `v`;
//! * **Termination** — all non-faulty processes decide.
//!
//! The checker runs a protocol under an adversary and evaluates all three
//! on the observed execution, returning diagnostics instead of panicking so
//! experiment harnesses and property tests can aggregate.

use synran_sim::{Adversary, Bit, RunReport, SimConfig, SimError, Telemetry, World};

use crate::ConsensusProtocol;

/// The outcome of checking one execution.
#[derive(Debug, Clone)]
pub struct ConsensusVerdict {
    agreement: bool,
    validity: bool,
    termination: bool,
    violations: Vec<String>,
    report: RunReport,
}

impl ConsensusVerdict {
    /// Did all non-faulty deciders agree?
    #[must_use]
    pub fn agreement(&self) -> bool {
        self.agreement
    }

    /// Were unanimous inputs decided as that input?
    /// (Vacuously `true` when inputs were mixed.)
    #[must_use]
    pub fn validity(&self) -> bool {
        self.validity
    }

    /// Did every non-faulty process decide before the run ended?
    #[must_use]
    pub fn termination(&self) -> bool {
        self.termination
    }

    /// All three conditions at once.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.agreement && self.validity && self.termination
    }

    /// Human-readable descriptions of each violation found.
    #[must_use]
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The underlying execution report.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Rounds the execution took.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.report.rounds()
    }
}

/// Runs `protocol` on `inputs` under `adversary` and checks the three
/// consensus conditions on the resulting execution.
///
/// # Errors
///
/// Propagates engine errors ([`SimError`]), including
/// [`SimError::MaxRoundsExceeded`] when the run outlives `cfg`'s limit —
/// callers that treat a round-limit overrun as a termination *violation*
/// rather than an error can map it explicitly.
///
/// # Panics
///
/// Panics if `inputs.len() != cfg.n()`.
///
/// # Examples
///
/// ```
/// use synran_core::{check_consensus, SynRan};
/// use synran_sim::{Bit, Passive, SimConfig};
///
/// let verdict = check_consensus(
///     &SynRan::new(),
///     &[Bit::One; 8],
///     SimConfig::new(8).seed(5),
///     &mut Passive,
/// )?;
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
pub fn check_consensus<P, A>(
    protocol: &P,
    inputs: &[Bit],
    cfg: SimConfig,
    adversary: &mut A,
) -> Result<ConsensusVerdict, SimError>
where
    P: ConsensusProtocol,
    A: Adversary<P::Proc>,
{
    check_consensus_with(protocol, inputs, cfg, adversary, &Telemetry::off())
}

/// [`check_consensus`] with a telemetry handle attached to the world, so
/// the run records engine counters (and phase spans in span mode).
///
/// Telemetry is observe-only: the verdict and its report are byte-identical
/// to [`check_consensus`] for every handle.
///
/// # Errors
///
/// Propagates engine errors exactly as [`check_consensus`] does.
///
/// # Panics
///
/// Panics if `inputs.len() != cfg.n()`.
pub fn check_consensus_with<P, A>(
    protocol: &P,
    inputs: &[Bit],
    cfg: SimConfig,
    adversary: &mut A,
    telemetry: &Telemetry,
) -> Result<ConsensusVerdict, SimError>
where
    P: ConsensusProtocol,
    A: Adversary<P::Proc>,
{
    assert_eq!(inputs.len(), cfg.n(), "one input per process");
    let n = cfg.n();
    let mut world = World::new(cfg, |pid| protocol.spawn(pid, n, inputs[pid.index()]))?;
    world.set_telemetry(telemetry.clone());
    // The world is discarded here, so consume it into the report instead
    // of cloning the metrics and trace out of it.
    world.drive(adversary)?;
    Ok(evaluate(inputs, world.into_report()))
}

/// Evaluates the consensus conditions on an existing report.
#[must_use]
pub fn evaluate(inputs: &[Bit], report: RunReport) -> ConsensusVerdict {
    let mut violations = Vec::new();

    // Termination: every non-faulty process decided.
    let undecided: Vec<_> = report
        .non_faulty()
        .filter(|&pid| report.decision_of(pid).is_none())
        .collect();
    let termination = undecided.is_empty();
    if !termination {
        violations.push(format!(
            "termination: {} non-faulty process(es) never decided (first: {})",
            undecided.len(),
            undecided[0]
        ));
    }

    // Agreement: all non-faulty deciders agree.
    let decided_values: Vec<_> = report
        .non_faulty()
        .filter_map(|pid| report.decision_of(pid).map(|v| (pid, v)))
        .collect();
    let mut decided_values = decided_values.into_iter();
    let agreement = match decided_values.next() {
        None => true, // nobody decided (vacuous; termination already flags it)
        Some((first_pid, first)) => {
            let mut ok = true;
            for (pid, v) in decided_values {
                if v != first {
                    violations.push(format!(
                        "agreement: {first_pid} decided {first} but {pid} decided {v}"
                    ));
                    ok = false;
                    break;
                }
            }
            ok
        }
    };

    // Validity: unanimous input v ⇒ every decision is v.
    let unanimous_input = inputs
        .split_first()
        .and_then(|(first, rest)| rest.iter().all(|b| b == first).then_some(*first));
    let validity = match unanimous_input {
        None => true,
        Some(v) => {
            let mut ok = true;
            for pid in report.non_faulty() {
                if let Some(d) = report.decision_of(pid) {
                    if d != v {
                        violations.push(format!(
                            "validity: all inputs were {v} but {pid} decided {d}"
                        ));
                        ok = false;
                        break;
                    }
                }
            }
            ok
        }
    };

    ConsensusVerdict {
        agreement,
        validity,
        termination,
        violations,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FloodingConsensus, SynRan};
    use synran_sim::{Intervention, Passive, Process, ProcessId, World};

    #[test]
    fn correct_run_passes_all_conditions() {
        let inputs = [Bit::One, Bit::Zero, Bit::One, Bit::Zero, Bit::One];
        let verdict = check_consensus(
            &FloodingConsensus::for_faults(2),
            &inputs,
            SimConfig::new(5).faults(2).seed(1),
            &mut Passive,
        )
        .unwrap();
        assert!(
            verdict.is_correct(),
            "violations: {:?}",
            verdict.violations()
        );
        assert!(verdict.rounds() >= 1);
    }

    #[test]
    fn synran_checked_under_killing_adversary() {
        struct SteadyKiller;
        impl<P: Process> synran_sim::Adversary<P> for SteadyKiller {
            fn intervene(&mut self, world: &World<P>) -> Intervention {
                if world.budget().remaining() > 0 && world.alive_count() > 1 {
                    Intervention::kill_all_silent([world
                        .alive_ids()
                        .next()
                        .expect("alive_count > 1")])
                } else {
                    Intervention::none()
                }
            }
        }
        for seed in 0..10 {
            let inputs: Vec<Bit> = (0..16).map(|i| Bit::from(i % 2 == 0)).collect();
            let verdict = check_consensus(
                &SynRan::new(),
                &inputs,
                SimConfig::new(16).faults(8).seed(seed),
                &mut SteadyKiller,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn evaluate_flags_disagreement() {
        // Fabricate a report via a protocol that decides its own input.
        #[derive(Debug)]
        struct Selfish;
        impl ConsensusProtocol for Selfish {
            type Proc = synran_sim::testing::Echo;
            fn spawn(&self, _pid: ProcessId, _n: usize, input: Bit) -> Self::Proc {
                synran_sim::testing::Echo::new(input)
            }
            fn name(&self) -> &str {
                "selfish"
            }
        }
        let inputs = [Bit::Zero, Bit::One];
        let verdict =
            check_consensus(&Selfish, &inputs, SimConfig::new(2).seed(0), &mut Passive).unwrap();
        assert!(!verdict.agreement());
        assert!(verdict.termination());
        assert!(verdict.validity(), "inputs were mixed; validity is vacuous");
        assert!(!verdict.is_correct());
        assert!(verdict.violations()[0].contains("agreement"));
    }

    #[test]
    fn evaluate_flags_validity_violation() {
        // "Decide the opposite of your input" violates validity on
        // unanimous inputs.
        #[derive(Debug, Clone)]
        struct Contrarian(Bit, bool);
        impl Process for Contrarian {
            type Msg = Bit;
            fn send(&mut self, _: &mut synran_sim::Context<'_>) -> synran_sim::SendPattern<Bit> {
                synran_sim::SendPattern::Silent
            }
            fn receive(&mut self, _: &mut synran_sim::Context<'_>, _: &synran_sim::Inbox<Bit>) {
                self.1 = true;
            }
            fn decision(&self) -> Option<Bit> {
                self.1.then(|| self.0.flip())
            }
            fn halted(&self) -> bool {
                self.1
            }
        }
        #[derive(Debug)]
        struct ContrarianProtocol;
        impl ConsensusProtocol for ContrarianProtocol {
            type Proc = Contrarian;
            fn spawn(&self, _pid: ProcessId, _n: usize, input: Bit) -> Contrarian {
                Contrarian(input, false)
            }
            fn name(&self) -> &str {
                "contrarian"
            }
        }
        let verdict = check_consensus(
            &ContrarianProtocol,
            &[Bit::One; 3],
            SimConfig::new(3).seed(0),
            &mut Passive,
        )
        .unwrap();
        assert!(!verdict.validity());
        assert!(verdict.agreement(), "they all decided 0 together");
        assert!(verdict.violations().iter().any(|v| v.contains("validity")));
    }

    #[test]
    #[should_panic(expected = "one input per process")]
    fn input_arity_checked() {
        let _ = check_consensus(
            &SynRan::new(),
            &[Bit::One; 3],
            SimConfig::new(4).seed(0),
            &mut Passive,
        );
    }
}
