//! Batch execution: many seeded runs of a protocol under an adversary.
//!
//! The experiment harnesses measure *expected* round counts, so they need
//! many independent executions per configuration. [`run_batch`] drives
//! them, checks every run for consensus violations, and returns the raw
//! per-run observations for `synran-analysis` to summarise.

use synran_sim::{parallel, Adversary, Bit, SimConfig, SimError, SimRng, Telemetry};

use crate::checker::{check_consensus_with, ConsensusVerdict};
use crate::ConsensusProtocol;

/// How inputs are assigned across processes in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputAssignment {
    /// Every process gets the same bit.
    Unanimous(Bit),
    /// The first `ones` processes get 1, the rest 0.
    Split {
        /// Number of processes with input 1.
        ones: usize,
    },
    /// Every process draws an independent fair coin (per-run).
    Random,
}

impl InputAssignment {
    /// Materialises the input vector for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if a [`InputAssignment::Split`] requests more ones than `n`.
    #[must_use]
    pub fn materialize(&self, n: usize, rng: &mut SimRng) -> Vec<Bit> {
        match *self {
            InputAssignment::Unanimous(v) => vec![v; n],
            InputAssignment::Split { ones } => {
                assert!(ones <= n, "cannot assign {ones} ones to {n} processes");
                (0..n).map(|i| Bit::from(i < ones)).collect()
            }
            InputAssignment::Random => (0..n).map(|_| rng.bit()).collect(),
        }
    }

    /// An even split (⌊n/2⌋ ones) — the adversary's favourite starting
    /// point.
    #[must_use]
    pub fn even_split(n: usize) -> InputAssignment {
        InputAssignment::Split { ones: n / 2 }
    }
}

/// The aggregated observations of one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    rounds: Vec<u32>,
    kills: Vec<usize>,
    incorrect: Vec<(u64, Vec<String>)>,
    timeouts: usize,
}

impl BatchOutcome {
    /// Round counts of the completed runs, in seed order.
    #[must_use]
    pub fn rounds(&self) -> &[u32] {
        &self.rounds
    }

    /// Adversary kills per completed run, in seed order.
    #[must_use]
    pub fn kills(&self) -> &[usize] {
        &self.kills
    }

    /// `(seed, violations)` for every run that violated a consensus
    /// condition. Empty on a healthy protocol.
    #[must_use]
    pub fn incorrect(&self) -> &[(u64, Vec<String>)] {
        &self.incorrect
    }

    /// Runs aborted by the round limit (counted as non-terminating, not as
    /// errors).
    #[must_use]
    pub fn timeouts(&self) -> usize {
        self.timeouts
    }

    /// Mean rounds across completed runs.
    ///
    /// # Panics
    ///
    /// Panics if no run completed.
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        assert!(!self.rounds.is_empty(), "no completed runs");
        self.rounds.iter().map(|&r| f64::from(r)).sum::<f64>() / self.rounds.len() as f64
    }

    /// Largest observed round count.
    #[must_use]
    pub fn max_rounds(&self) -> Option<u32> {
        self.rounds.iter().copied().max()
    }

    /// `true` when every run completed and satisfied all three consensus
    /// conditions.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.incorrect.is_empty() && self.timeouts == 0
    }
}

/// Runs `runs` seeded executions of `protocol` under fresh adversaries and
/// collects round counts, kill counts, and any consensus violations.
///
/// `make_adversary` is called once per run with the run's seed so stateful
/// adversaries start fresh; `base_cfg`'s seed is re-derived per run.
///
/// Runs execute on [`base_cfg.threads()`](SimConfig::threads) workers
/// from the persistent pool behind [`synran_sim::parallel`] (spawned once
/// per process, re-used across batches — repeated batches pay no thread
/// spawn cost). Every run's seed is a pure function of
/// `(base_seed, run_index)` and the outcome is folded in run order, so
/// the batch is **bit-for-bit identical for every thread count**.
///
/// # Errors
///
/// Propagates engine errors other than round-limit overruns, which are
/// tallied as [`BatchOutcome::timeouts`]; with several failing runs, the
/// error of the lowest run index is returned regardless of thread count.
pub fn run_batch<P, A>(
    protocol: &P,
    assignment: InputAssignment,
    base_cfg: &SimConfig,
    runs: usize,
    base_seed: u64,
    make_adversary: impl Fn(u64) -> A + Sync,
) -> Result<BatchOutcome, SimError>
where
    P: ConsensusProtocol + Sync,
    A: Adversary<P::Proc>,
{
    run_batch_with(
        protocol,
        assignment,
        base_cfg,
        runs,
        base_seed,
        &Telemetry::off(),
        make_adversary,
    )
}

/// [`run_batch`] with a telemetry handle: every run's world records into
/// it, the fan-out gets per-worker spans, and the batch itself contributes
/// a `batch.run_batch` span, `batch.runs` / `batch.timeouts` /
/// `batch.violations` counters, and `batch.rounds` / `batch.kills`
/// histograms (accumulated in run order during the deterministic fold).
///
/// Telemetry is observe-only: the outcome is byte-identical to
/// [`run_batch`] for every handle and thread count.
///
/// # Errors
///
/// Propagates engine errors exactly as [`run_batch`] does.
pub fn run_batch_with<P, A>(
    protocol: &P,
    assignment: InputAssignment,
    base_cfg: &SimConfig,
    runs: usize,
    base_seed: u64,
    telemetry: &Telemetry,
    make_adversary: impl Fn(u64) -> A + Sync,
) -> Result<BatchOutcome, SimError>
where
    P: ConsensusProtocol + Sync,
    A: Adversary<P::Proc>,
{
    let _span = telemetry.span("batch.run_batch");
    let results = parallel::try_par_map_in(telemetry, base_cfg.threads_value(), runs, |i| {
        let seed = SimRng::new(base_seed).derive(i as u64).next_u64();
        let mut input_rng = SimRng::new(seed).derive(0xD1CE);
        let inputs = assignment.materialize(base_cfg.n(), &mut input_rng);
        let cfg = base_cfg.clone().seed(seed);
        let mut adversary = make_adversary(seed);
        match check_consensus_with(protocol, &inputs, cfg, &mut adversary, telemetry) {
            Ok(verdict) => Ok(Some((seed, verdict))),
            Err(SimError::MaxRoundsExceeded { .. }) => Ok(None),
            Err(other) => Err(other),
        }
    })?;
    let mut outcome = BatchOutcome {
        rounds: Vec::with_capacity(runs),
        kills: Vec::with_capacity(runs),
        incorrect: Vec::new(),
        timeouts: 0,
    };
    // Fold in run order, not completion order, to keep seed-order outputs
    // (and deterministic batch histograms).
    for result in &results {
        match result {
            Some((seed, verdict)) => {
                record(&mut outcome, *seed, verdict);
                telemetry.observe("batch.rounds", u64::from(verdict.rounds()));
                telemetry.observe(
                    "batch.kills",
                    verdict.report().metrics().total_kills() as u64,
                );
            }
            None => outcome.timeouts += 1,
        }
    }
    telemetry.incr("batch.runs", runs as u64);
    telemetry.incr("batch.timeouts", outcome.timeouts as u64);
    telemetry.incr("batch.violations", outcome.incorrect.len() as u64);
    Ok(outcome)
}

fn record(outcome: &mut BatchOutcome, seed: u64, verdict: &ConsensusVerdict) {
    outcome.rounds.push(verdict.rounds());
    outcome.kills.push(verdict.report().metrics().total_kills());
    if !verdict.is_correct() {
        outcome
            .incorrect
            .push((seed, verdict.violations().to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FloodingConsensus, SynRan};
    use synran_sim::Passive;

    #[test]
    fn input_assignment_shapes() {
        let mut rng = SimRng::new(1);
        let u = InputAssignment::Unanimous(Bit::One).materialize(4, &mut rng);
        assert_eq!(u, vec![Bit::One; 4]);
        let s = InputAssignment::Split { ones: 2 }.materialize(5, &mut rng);
        assert_eq!(s, vec![Bit::One, Bit::One, Bit::Zero, Bit::Zero, Bit::Zero]);
        let r = InputAssignment::Random.materialize(64, &mut rng);
        let ones = r.iter().filter(|b| b.is_one()).count();
        assert!(ones > 10 && ones < 54, "implausibly skewed: {ones}");
        assert_eq!(
            InputAssignment::even_split(9),
            InputAssignment::Split { ones: 4 }
        );
    }

    #[test]
    #[should_panic(expected = "cannot assign")]
    fn oversized_split_rejected() {
        let mut rng = SimRng::new(0);
        let _ = InputAssignment::Split { ones: 6 }.materialize(5, &mut rng);
    }

    #[test]
    fn batch_of_flooding_is_deterministic_rounds() {
        let outcome = run_batch(
            &FloodingConsensus::for_faults(3),
            InputAssignment::Random,
            &SimConfig::new(8).faults(3),
            10,
            99,
            |_| Passive,
        )
        .unwrap();
        assert!(outcome.all_correct());
        assert!(outcome.rounds().iter().all(|&r| r == 4));
        assert_eq!(outcome.mean_rounds(), 4.0);
        assert_eq!(outcome.max_rounds(), Some(4));
        assert!(outcome.kills().iter().all(|&k| k == 0));
    }

    #[test]
    fn batch_of_synran_all_correct() {
        let outcome = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(12),
            &SimConfig::new(12),
            25,
            7,
            |_| Passive,
        )
        .unwrap();
        assert!(
            outcome.all_correct(),
            "violations: {:?}",
            outcome.incorrect()
        );
        assert_eq!(outcome.rounds().len(), 25);
        // Fault-free SynRan converges fast.
        assert!(outcome.mean_rounds() < 20.0);
    }

    #[test]
    fn seeds_differ_across_runs() {
        // Two batches with different base seeds produce different
        // executions; the same base seed reproduces exactly.
        let run = |base: u64| {
            run_batch(
                &SynRan::new(),
                InputAssignment::Random,
                &SimConfig::new(10),
                8,
                base,
                |_| Passive,
            )
            .unwrap()
            .rounds()
            .to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
