//! The set of bit values a process has seen — flooding's message payload.

use std::fmt;

use synran_sim::{Bit, PlaneMsg};

/// A subset of `{0, 1}`: which consensus values a process knows exist.
///
/// This is the payload of flooding-set consensus and of SynRan's
/// deterministic stage. Kept as two flags rather than a generic set
/// because the value domain is exactly one bit.
///
/// # Examples
///
/// ```
/// use synran_core::ValueSet;
/// use synran_sim::Bit;
///
/// let mut v = ValueSet::single(Bit::One);
/// v.insert(Bit::Zero);
/// assert_eq!(v.min(), Some(Bit::Zero));
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ValueSet {
    has_zero: bool,
    has_one: bool,
}

impl ValueSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> ValueSet {
        ValueSet {
            has_zero: false,
            has_one: false,
        }
    }

    /// The singleton `{value}`.
    #[must_use]
    pub const fn single(value: Bit) -> ValueSet {
        match value {
            Bit::Zero => ValueSet {
                has_zero: true,
                has_one: false,
            },
            Bit::One => ValueSet {
                has_zero: false,
                has_one: true,
            },
        }
    }

    /// The full set `{0, 1}`.
    #[must_use]
    pub const fn both() -> ValueSet {
        ValueSet {
            has_zero: true,
            has_one: true,
        }
    }

    /// Adds a value.
    pub fn insert(&mut self, value: Bit) {
        match value {
            Bit::Zero => self.has_zero = true,
            Bit::One => self.has_one = true,
        }
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: ValueSet) {
        self.has_zero |= other.has_zero;
        self.has_one |= other.has_one;
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(&self, value: Bit) -> bool {
        match value {
            Bit::Zero => self.has_zero,
            Bit::One => self.has_one,
        }
    }

    /// Number of values present (0, 1, or 2).
    #[must_use]
    pub const fn len(&self) -> usize {
        self.has_zero as usize + self.has_one as usize
    }

    /// `true` if no value is present.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        !self.has_zero && !self.has_one
    }

    /// The smallest value present — flooding's decision rule.
    #[must_use]
    pub const fn min(&self) -> Option<Bit> {
        if self.has_zero {
            Some(Bit::Zero)
        } else if self.has_one {
            Some(Bit::One)
        } else {
            None
        }
    }
}

impl From<Bit> for ValueSet {
    fn from(b: Bit) -> ValueSet {
        ValueSet::single(b)
    }
}

impl PlaneMsg for ValueSet {
    /// Singletons pack to their one value; the empty and full sets do
    /// not. This keeps flooding's early rounds — where every process still
    /// broadcasts the singleton of its input — on the engine's bit-plane
    /// fast path, and satisfies the round-trip law because [`unpack`]
    /// always reproduces the singleton that packed.
    ///
    /// [`unpack`]: PlaneMsg::unpack
    fn pack(&self) -> Option<Bit> {
        match self.len() {
            1 => self.min(),
            _ => None,
        }
    }

    fn unpack(bit: Bit) -> Option<ValueSet> {
        Some(ValueSet::single(bit))
    }
}

impl FromIterator<Bit> for ValueSet {
    fn from_iter<I: IntoIterator<Item = Bit>>(iter: I) -> ValueSet {
        let mut s = ValueSet::empty();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.has_zero, self.has_one) {
            (false, false) => write!(f, "{{}}"),
            (true, false) => write!(f, "{{0}}"),
            (false, true) => write!(f, "{{1}}"),
            (true, true) => write!(f, "{{0,1}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        assert!(ValueSet::empty().is_empty());
        assert_eq!(ValueSet::empty().len(), 0);
        let z = ValueSet::single(Bit::Zero);
        assert!(z.contains(Bit::Zero));
        assert!(!z.contains(Bit::One));
        assert_eq!(ValueSet::both().len(), 2);
        assert_eq!(ValueSet::from(Bit::One), ValueSet::single(Bit::One));
    }

    #[test]
    fn min_prefers_zero() {
        assert_eq!(ValueSet::empty().min(), None);
        assert_eq!(ValueSet::single(Bit::One).min(), Some(Bit::One));
        assert_eq!(ValueSet::both().min(), Some(Bit::Zero));
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let sets = [
            ValueSet::empty(),
            ValueSet::single(Bit::Zero),
            ValueSet::single(Bit::One),
            ValueSet::both(),
        ];
        for a in sets {
            for b in sets {
                let mut ab = a;
                ab.union_with(b);
                let mut ba = b;
                ba.union_with(a);
                assert_eq!(ab, ba);
                let mut aa = ab;
                aa.union_with(b);
                assert_eq!(aa, ab);
            }
        }
    }

    #[test]
    fn from_iterator_collects() {
        let s: ValueSet = [Bit::One, Bit::One, Bit::Zero].into_iter().collect();
        assert_eq!(s, ValueSet::both());
        let empty: ValueSet = std::iter::empty().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueSet::empty().to_string(), "{}");
        assert_eq!(ValueSet::single(Bit::Zero).to_string(), "{0}");
        assert_eq!(ValueSet::single(Bit::One).to_string(), "{1}");
        assert_eq!(ValueSet::both().to_string(), "{0,1}");
    }
}
