//! The paper's protocol: `SynRan` (§4), plus its symmetric-coin ablation.
//!
//! SynRan is a Ben-Or-style randomized synchronous consensus protocol,
//! hardened against the *adaptive* fail-stop adversary by a one-side-biased
//! coin rule. Per round each process broadcasts its preference `b_i`
//! (including to itself) and classifies the replies against the **previous**
//! round's message count `N^{r−1}`:
//!
//! ```text
//! O^r > 7·N^{r−1}/10   →  b = 1, decided = true
//! O^r > 6·N^{r−1}/10   →  b = 1
//! Z^r = 0              →  b = 1          (the one-side-biased coin)
//! O^r < 4·N^{r−1}/10   →  b = 0, decided = true
//! O^r < 5·N^{r−1}/10   →  b = 0
//! otherwise            →  b = fair coin
//! ```
//!
//! A process that holds `decided` checks the *stability* rule
//! `N^{r−3} − N^r ≤ N^{r−2}/10` — "few processes died recently" — and only
//! then irrevocably stops (Lemma 4.2 turns that into global agreement:
//! stalling it costs the adversary a tenth of the survivors every four
//! rounds). When fewer than `√(n/log n)` messages arrive, the process
//! sends one more plain round and switches to deterministic flooding for
//! the remaining (by then tiny) population (Lemma 4.3).
//!
//! The expected round count under **any** fail-stop `t`-adversary is
//! `O(t/√(n·log n))` for `t = Ω(n)` (Theorem 2), and
//! `Θ(t/√(n·log(2+t/√n)))` over the whole range `t < n` (Theorem 3) —
//! matching the paper's lower bound.

use synran_sim::{Bit, Context, Inbox, PlaneMsg, Process, ProcessId, SendPattern};

use crate::math::{deterministic_stage_rounds, deterministic_threshold};
use crate::{ConsensusProtocol, FloodingCore, ValueSet};

/// Which final-else coin rule the protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinRule {
    /// The paper's rule: `Z^r = 0 → b = 1` before falling through to a
    /// fair coin. Biasing this collective coin toward 0 is impossible
    /// (hides cannot create a zero), so the adversary must spend failures.
    OneSided,
    /// Ablation: the `Z^r = 0` branch removed, leaving Ben-Or's plain fair
    /// coin. Used by experiment E5 to isolate the design choice.
    Symmetric,
}

/// The protocol's threshold constants, as twentieths of the comparison
/// base `N^{r−1}` (resp. `N^{r−2}` for the stability rule).
///
/// The paper's values are `{14, 12, 10, 8}/20` (= 7/10, 6/10, 5/10, 4/10)
/// with a stability margin of `2/20` (= 1/10). They are not arbitrary:
/// Lemma 4.2's agreement argument needs
/// `decide_one − propose_one ≥ stability` (a decider's evidence must
/// survive the deaths the stability rule tolerates, so every other process
/// still crosses the propose line). Experiment E10 demonstrates that
/// narrowing that gap below the stability margin lets an adversary break
/// Agreement outright.
///
/// # Examples
///
/// ```
/// use synran_core::Thresholds;
///
/// let paper = Thresholds::paper();
/// assert_eq!(paper.decide_one(), 14);
/// assert!(paper.respects_lemma_4_2());
/// let narrowed = Thresholds::new(13, 12, 10, 8, 2);
/// assert!(!narrowed.respects_lemma_4_2()); // gap 1 < stability 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    decide_one: u32,
    propose_one: u32,
    propose_zero: u32,
    decide_zero: u32,
    stability: u32,
}

impl Thresholds {
    /// The paper's constants: decide-1 at 7/10, propose-1 at 6/10,
    /// propose-0 at 5/10, decide-0 at 4/10, stability margin 1/10.
    #[must_use]
    pub const fn paper() -> Thresholds {
        Thresholds {
            decide_one: 14,
            propose_one: 12,
            propose_zero: 10,
            decide_zero: 8,
            stability: 2,
        }
    }

    /// Custom constants, in twentieths.
    ///
    /// # Panics
    ///
    /// Panics unless `decide_one ≥ propose_one ≥ propose_zero ≥
    /// decide_zero` and all lie in `1..=20` — orderings the protocol's
    /// branch structure requires. (It deliberately does **not** require
    /// [`respects_lemma_4_2`](Self::respects_lemma_4_2): building unsafe
    /// variants is E10's whole point.)
    #[must_use]
    pub fn new(
        decide_one: u32,
        propose_one: u32,
        propose_zero: u32,
        decide_zero: u32,
        stability: u32,
    ) -> Thresholds {
        assert!(
            decide_one >= propose_one && propose_one >= propose_zero && propose_zero >= decide_zero,
            "thresholds must be ordered decide_one ≥ propose_one ≥ propose_zero ≥ decide_zero"
        );
        assert!(
            (1..=20).contains(&decide_zero) && decide_one <= 20,
            "thresholds are twentieths in 1..=20"
        );
        Thresholds {
            decide_one,
            propose_one,
            propose_zero,
            decide_zero,
            stability,
        }
    }

    /// Decide-1 numerator (per 20).
    #[must_use]
    pub fn decide_one(&self) -> u32 {
        self.decide_one
    }

    /// Propose-1 numerator (per 20).
    #[must_use]
    pub fn propose_one(&self) -> u32 {
        self.propose_one
    }

    /// Propose-0 numerator (per 20).
    #[must_use]
    pub fn propose_zero(&self) -> u32 {
        self.propose_zero
    }

    /// Decide-0 numerator (per 20).
    #[must_use]
    pub fn decide_zero(&self) -> u32 {
        self.decide_zero
    }

    /// Stability-margin numerator (per 20).
    #[must_use]
    pub fn stability(&self) -> u32 {
        self.stability
    }

    /// Whether these constants satisfy the margin Lemma 4.2's proof
    /// needs on *both* sides:
    /// `decide_one − propose_one ≥ stability` and
    /// `propose_zero − decide_zero ≥ stability`.
    #[must_use]
    pub fn respects_lemma_4_2(&self) -> bool {
        self.decide_one - self.propose_one >= self.stability
            && self.propose_zero - self.decide_zero >= self.stability
    }
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds::paper()
    }
}

/// The SynRan protocol configuration.
///
/// # Examples
///
/// ```
/// use synran_core::{ConsensusProtocol, SynRan};
/// use synran_sim::{Bit, Passive, ProcessId, SimConfig, World};
///
/// let protocol = SynRan::new();
/// let n = 16;
/// let mut world = World::new(SimConfig::new(n).seed(3), |pid| {
///     protocol.spawn(pid, n, Bit::from(pid.index() % 2 == 0))
/// })?;
/// let report = world.run(&mut Passive)?;
/// assert!(report.unanimous_decision().is_some());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynRan {
    rule: CoinRule,
    thresholds: Thresholds,
}

impl SynRan {
    /// The paper's protocol, with the one-side-biased coin.
    #[must_use]
    pub fn new() -> SynRan {
        SynRan {
            rule: CoinRule::OneSided,
            thresholds: Thresholds::paper(),
        }
    }

    /// The symmetric-coin ablation (plain Ben-Or coin).
    #[must_use]
    pub fn symmetric() -> SynRan {
        SynRan {
            rule: CoinRule::Symmetric,
            thresholds: Thresholds::paper(),
        }
    }

    /// The paper's coin rule with custom threshold constants — the knob
    /// experiment E10 turns to show the paper's margins are tight.
    #[must_use]
    pub fn with_thresholds(thresholds: Thresholds) -> SynRan {
        SynRan {
            rule: CoinRule::OneSided,
            thresholds,
        }
    }

    /// The coin rule in use.
    #[must_use]
    pub fn rule(&self) -> CoinRule {
        self.rule
    }

    /// The threshold constants in use.
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }
}

impl Default for SynRan {
    fn default() -> SynRan {
        SynRan::new()
    }
}

impl ConsensusProtocol for SynRan {
    type Proc = SynRanProcess;

    fn spawn(&self, _pid: ProcessId, n: usize, input: Bit) -> SynRanProcess {
        SynRanProcess::with_thresholds(n, input, self.rule, self.thresholds)
    }

    fn name(&self) -> &str {
        match (self.rule, self.thresholds == Thresholds::paper()) {
            (CoinRule::OneSided, true) => "synran",
            (CoinRule::OneSided, false) => "synran-custom",
            (CoinRule::Symmetric, _) => "synran-sym",
        }
    }
}

/// Messages SynRan exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynRanMsg {
    /// Probabilistic stage (and the handover delay round): the sender's
    /// current preference `b`.
    Pref(Bit),
    /// Deterministic stage: the sender's flooding set.
    Known(ValueSet),
}

impl PlaneMsg for SynRanMsg {
    /// `Pref(b)` packs to `b`, so probabilistic-stage rounds — the
    /// dominant, every-round broadcast of preferences — ride the engine's
    /// bit-plane fast path. `Known(S)` never packs: any round carrying a
    /// flooding set takes the scalar pair path.
    fn pack(&self) -> Option<Bit> {
        match self {
            SynRanMsg::Pref(b) => Some(*b),
            SynRanMsg::Known(_) => None,
        }
    }

    fn unpack(bit: Bit) -> Option<SynRanMsg> {
        Some(SynRanMsg::Pref(bit))
    }
}

/// The action a SynRan process will take on receiving given counts — the
/// paper's WHILE-loop body as data. See [`SynRanProcess::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictedStep {
    /// `N^r < √(n/log n)`: switch to the handover delay round.
    Handover,
    /// The stability rule fired: STOP, deciding the contained value.
    Stop(Bit),
    /// A threshold branch: set `b` to `value` (and the tentative `decided`
    /// flag accordingly).
    Propose {
        /// The new preference.
        value: Bit,
        /// Whether the tentative `decided` flag is set.
        decided: bool,
    },
    /// The final ELSE: flip a fair coin.
    FlipCoin,
}

/// Which stage of the protocol a process is in — exposed so
/// full-information adversaries and experiments can inspect executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// The randomized threshold/coin stage.
    Probabilistic,
    /// The one-round handover delay before deterministic flooding.
    Delay,
    /// Deterministic flooding among the survivors.
    Deterministic,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Stage {
    Probabilistic,
    Delay,
    Deterministic(FloodingCore),
}

/// One participant in SynRan.
///
/// All state is observable (it must be — the adversary has full
/// information): [`preference`](Self::preference),
/// [`tentatively_decided`](Self::tentatively_decided),
/// [`stage`](Self::stage), and [`last_n`](Self::last_n).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynRanProcess {
    n: usize,
    rule: CoinRule,
    thresholds: Thresholds,
    b: Bit,
    decided: bool,
    decision: Option<Bit>,
    /// `n_hist[j]` is `N^{j−1}`: message counts with the paper's
    /// `N^{−1} = N^{0} = n` convention at indices 0 and 1.
    n_hist: Vec<usize>,
    stage: Stage,
}

impl SynRanProcess {
    /// Creates a process with the given input in a system of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, input: Bit, rule: CoinRule) -> SynRanProcess {
        SynRanProcess::with_thresholds(n, input, rule, Thresholds::paper())
    }

    /// Creates a process with custom threshold constants (see
    /// [`Thresholds`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_thresholds(
        n: usize,
        input: Bit,
        rule: CoinRule,
        thresholds: Thresholds,
    ) -> SynRanProcess {
        assert!(n > 0, "SynRan needs at least one process");
        SynRanProcess {
            n,
            rule,
            thresholds,
            b: input,
            decided: false,
            decision: None,
            n_hist: vec![n, n],
            stage: Stage::Probabilistic,
        }
    }

    /// The current preference `b_i`.
    #[must_use]
    pub fn preference(&self) -> Bit {
        self.b
    }

    /// Which coin rule this process runs (the adversary has full
    /// information, including the protocol variant).
    #[must_use]
    pub fn rule(&self) -> CoinRule {
        self.rule
    }

    /// The threshold constants this process compares against (full
    /// information again — boundary attacks aim exactly at these).
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The paper's (revocable) `decided` flag — *not* the irrevocable
    /// decision, which is [`Process::decision`].
    #[must_use]
    pub fn tentatively_decided(&self) -> bool {
        self.decided
    }

    /// Which stage the process is in.
    #[must_use]
    pub fn stage(&self) -> StageKind {
        match self.stage {
            Stage::Probabilistic => StageKind::Probabilistic,
            Stage::Delay => StageKind::Delay,
            Stage::Deterministic(_) => StageKind::Deterministic,
        }
    }

    /// The most recent round's message count `N^r` (equals `n` before the
    /// first round completes).
    #[must_use]
    pub fn last_n(&self) -> usize {
        *self.n_hist.last().expect("history starts non-empty")
    }

    /// `N^j` with the convention `N^{−1} = N^{0} = n`; values before
    /// round −1 are clamped to `n`.
    fn n_at(&self, j: i64) -> usize {
        if j < -1 {
            self.n
        } else {
            self.n_hist[(j + 1) as usize]
        }
    }

    /// Predicts what this process will do when it receives a
    /// probabilistic-stage round with `n_r` messages, `o_r` ones, and
    /// `z_r` zeros — without mutating anything.
    ///
    /// This is the paper's WHILE-loop body as a pure function of the
    /// counts; [`Process::receive`] applies exactly this prediction. It
    /// exists so full-information adversaries (which see everything) and
    /// the exact valency evaluator can enumerate transitions — in
    /// particular, [`PredictedStep::FlipCoin`] identifies precisely the
    /// processes whose next state is random.
    ///
    /// Returns `None` if the process is not in the probabilistic stage.
    #[must_use]
    pub fn predict(&self, n_r: usize, o_r: usize, z_r: usize) -> Option<PredictedStep> {
        if !matches!(self.stage, Stage::Probabilistic) {
            return None;
        }
        // The history as it will look once n_r is pushed.
        let r = self.n_hist.len() as i64 - 1;
        if (n_r as f64) < deterministic_threshold(self.n) {
            return Some(PredictedStep::Handover);
        }
        let th = &self.thresholds;
        if self.decided {
            let diff = self.n_at(r - 3).saturating_sub(n_r);
            // The paper's 10·diff ≤ N^{r−2}, generalised to the margin
            // constant: 20·diff ≤ stability·N^{r−2}.
            if 20 * diff as u64 <= u64::from(th.stability) * self.n_at(r - 2) as u64 {
                return Some(PredictedStep::Stop(self.b));
            }
        }
        let base = self.n_at(r - 1) as u64;
        let o = 20 * o_r as u64;
        // The propose-1 branch and the one-sided Z = 0 branch produce the
        // same step by design — they are distinct lines of the paper's
        // listing.
        #[allow(clippy::if_same_then_else)]
        Some(if o > u64::from(th.decide_one) * base {
            PredictedStep::Propose {
                value: Bit::One,
                decided: true,
            }
        } else if o > u64::from(th.propose_one) * base {
            PredictedStep::Propose {
                value: Bit::One,
                decided: false,
            }
        } else if self.rule == CoinRule::OneSided && z_r == 0 {
            PredictedStep::Propose {
                value: Bit::One,
                decided: false,
            }
        } else if o < u64::from(th.decide_zero) * base {
            PredictedStep::Propose {
                value: Bit::Zero,
                decided: true,
            }
        } else if o < u64::from(th.propose_zero) * base {
            PredictedStep::Propose {
                value: Bit::Zero,
                decided: false,
            }
        } else {
            PredictedStep::FlipCoin
        })
    }

    /// Handles one probabilistic-stage inbox (the body of the paper's
    /// WHILE loop), by applying [`predict`](Self::predict).
    fn probabilistic_step(&mut self, ctx: &mut Context<'_>, inbox: &Inbox<SynRanMsg>) {
        let n_r = inbox.len();
        // Pref(b) packs to b, so the round tally is exactly (Z^r, O^r):
        // on a plane-backed inbox both are popcounts. Known messages mean
        // their senders already reached the deterministic stage; they
        // count toward N (they are messages) but carry no single
        // preference — and they never pack, so the tally skips them.
        let (z_r, o_r) = inbox.tally();
        let step = self
            .predict(n_r, o_r, z_r)
            .expect("probabilistic_step runs only in the probabilistic stage");
        self.n_hist.push(n_r);
        match step {
            PredictedStep::Handover => self.stage = Stage::Delay,
            PredictedStep::Stop(value) => self.decision = Some(value),
            PredictedStep::Propose { value, decided } => {
                self.b = value;
                self.decided = decided;
            }
            PredictedStep::FlipCoin => {
                self.decided = false;
                self.b = ctx.rng().bit();
            }
        }
    }

    /// Ends the handover delay round: seed the flooding set with our own
    /// preference plus everything heard during the delay (harmless — every
    /// received value is a genuine proposal — and it absorbs the one-round
    /// skew between processes entering the stage).
    fn delay_step(&mut self, inbox: &Inbox<SynRanMsg>) {
        let mut known = ValueSet::single(self.b);
        // Preferences heard during the delay arrive as packed bits — the
        // tally says which values occurred without decoding any message.
        let (zeros, ones) = inbox.tally();
        if zeros > 0 {
            known.insert(Bit::Zero);
        }
        if ones > 0 {
            known.insert(Bit::One);
        }
        // Known(S) sets never pack; only those need a real decode walk.
        for (_, msg) in inbox.unpackable() {
            if let SynRanMsg::Known(set) = msg {
                known.union_with(*set);
            }
        }
        self.stage =
            Stage::Deterministic(FloodingCore::new(known, deterministic_stage_rounds(self.n)));
    }
}

impl Process for SynRanProcess {
    type Msg = SynRanMsg;

    fn send(&mut self, _ctx: &mut Context<'_>) -> SendPattern<SynRanMsg> {
        match &self.stage {
            Stage::Probabilistic | Stage::Delay => SendPattern::Broadcast(SynRanMsg::Pref(self.b)),
            Stage::Deterministic(core) => SendPattern::Broadcast(SynRanMsg::Known(core.outgoing())),
        }
    }

    fn receive(&mut self, ctx: &mut Context<'_>, inbox: &Inbox<SynRanMsg>) {
        match &mut self.stage {
            Stage::Probabilistic => self.probabilistic_step(ctx, inbox),
            Stage::Delay => self.delay_step(inbox),
            Stage::Deterministic(core) => {
                core.absorb(inbox.messages().map(|m| match m {
                    SynRanMsg::Pref(bit) => ValueSet::single(bit),
                    SynRanMsg::Known(set) => set,
                }));
                if core.done() {
                    self.decision = core.decide();
                }
            }
        }
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.decision.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_sim::{
        Adversary, Intervention, Passive, ProcessId, RunReport, SimConfig, SimError, World,
    };

    fn run_synran(
        protocol: SynRan,
        n: usize,
        t: usize,
        inputs: impl Fn(usize) -> Bit,
        adversary: &mut impl Adversary<SynRanProcess>,
        seed: u64,
    ) -> Result<RunReport, SimError> {
        let mut world = World::new(SimConfig::new(n).faults(t).seed(seed), |pid| {
            protocol.spawn(pid, n, inputs(pid.index()))
        })?;
        world.run(adversary)
    }

    #[test]
    fn unanimous_one_decides_in_two_rounds() {
        // Round 1: everyone sees n ones → decide 1. Round 2: stability
        // holds trivially → STOP.
        let report = run_synran(SynRan::new(), 9, 0, |_| Bit::One, &mut Passive, 1).unwrap();
        assert_eq!(report.unanimous_decision(), Some(Bit::One));
        assert_eq!(report.rounds(), 2);
    }

    #[test]
    fn unanimous_zero_decides_in_two_rounds() {
        let report = run_synran(SynRan::new(), 9, 0, |_| Bit::Zero, &mut Passive, 1).unwrap();
        assert_eq!(report.unanimous_decision(), Some(Bit::Zero));
        assert_eq!(report.rounds(), 2);
    }

    #[test]
    fn split_inputs_reach_agreement_fault_free() {
        for seed in 0..20 {
            let report = run_synran(
                SynRan::new(),
                21,
                0,
                |i| Bit::from(i % 2 == 0),
                &mut Passive,
                seed,
            )
            .unwrap();
            assert!(
                report.unanimous_decision().is_some(),
                "seed {seed}: no agreement"
            );
        }
    }

    #[test]
    fn symmetric_variant_reaches_agreement_fault_free() {
        for seed in 0..20 {
            let report = run_synran(
                SynRan::symmetric(),
                21,
                0,
                |i| Bit::from(i % 3 == 0),
                &mut Passive,
                seed,
            )
            .unwrap();
            assert!(report.unanimous_decision().is_some());
        }
    }

    #[test]
    fn massive_first_round_kill_triggers_deterministic_stage() {
        // Kill all but 2 of 16 in round 1: survivors see N < √(n/ln n) and
        // hand over to flooding.
        struct FirstRoundMassacre;
        impl Adversary<SynRanProcess> for FirstRoundMassacre {
            fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
                if world.round().index() == 1 {
                    let victims: Vec<ProcessId> = world.alive_ids().skip(2).collect();
                    Intervention::kill_all_silent(victims)
                } else {
                    Intervention::none()
                }
            }
        }
        let report = run_synran(
            SynRan::new(),
            16,
            14,
            |i| Bit::from(i % 2 == 0),
            &mut FirstRoundMassacre,
            7,
        )
        .unwrap();
        assert!(report.unanimous_decision().is_some());
        assert_eq!(report.failed_count(), 14);
    }

    #[test]
    fn validity_holds_under_random_kills() {
        struct RandomKiller;
        impl Adversary<SynRanProcess> for RandomKiller {
            fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
                // Deterministically kill one process per round while budget
                // remains.
                if world.budget().remaining() > 0 {
                    match world.alive_ids().last() {
                        Some(v) => Intervention::kill_all_silent([v]),
                        None => Intervention::none(),
                    }
                } else {
                    Intervention::none()
                }
            }
        }
        for v in [Bit::Zero, Bit::One] {
            let report = run_synran(SynRan::new(), 12, 6, |_| v, &mut RandomKiller, 11).unwrap();
            assert_eq!(report.unanimous_decision(), Some(v), "validity violated");
        }
    }

    #[test]
    fn process_accessors_reflect_state() {
        let mut p = SynRanProcess::new(8, Bit::One, CoinRule::OneSided);
        assert_eq!(p.preference(), Bit::One);
        assert!(!p.tentatively_decided());
        assert_eq!(p.stage(), StageKind::Probabilistic);
        assert_eq!(p.last_n(), 8);
        assert_eq!(p.decision(), None);
        assert!(!p.halted());
        // Hand-drive one round with an all-ones inbox.
        let mut rng = synran_sim::SimRng::new(0);
        let mut ctx = Context::new(ProcessId::new(0), 8, synran_sim::Round::FIRST, &mut rng);
        let out = p.send(&mut ctx);
        assert_eq!(out, SendPattern::Broadcast(SynRanMsg::Pref(Bit::One)));
        let inbox: Inbox<SynRanMsg> = ProcessId::all(8)
            .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
            .collect();
        p.receive(&mut ctx, &inbox);
        assert!(p.tentatively_decided());
        assert_eq!(p.last_n(), 8);
        assert_eq!(p.decision(), None, "tentative ≠ irrevocable");
    }

    #[test]
    fn one_sided_rule_fires_on_all_ones_minority() {
        // N^r = 4 of base 8 ones: 10·4 !> 6·8, but Z = 0 → propose 1 under
        // the paper's rule.
        let mut p = SynRanProcess::new(8, Bit::One, CoinRule::OneSided);
        let mut rng = synran_sim::SimRng::new(0);
        let mut ctx = Context::new(ProcessId::new(0), 8, synran_sim::Round::FIRST, &mut rng);
        let inbox: Inbox<SynRanMsg> = ProcessId::all(4)
            .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
            .collect();
        p.receive(&mut ctx, &inbox);
        assert_eq!(p.preference(), Bit::One);
        assert!(!p.tentatively_decided());
        // The count 4 is below √(64/ln 8)? √(8/2.08) ≈ 1.96 — no, 4 ≥ 1.96,
        // so we stay probabilistic.
        assert_eq!(p.stage(), StageKind::Probabilistic);
    }

    #[test]
    fn stop_requires_stability() {
        // A process that tentatively decided must NOT stop if a tenth of
        // the population vanished since.
        let mut p = SynRanProcess::new(100, Bit::One, CoinRule::OneSided);
        let mut rng = synran_sim::SimRng::new(0);
        let mut ctx = Context::new(ProcessId::new(0), 100, synran_sim::Round::FIRST, &mut rng);
        // Round 1: 100 ones → decide 1 tentatively.
        let inbox: Inbox<SynRanMsg> = ProcessId::all(100)
            .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
            .collect();
        p.receive(&mut ctx, &inbox);
        assert!(p.tentatively_decided());
        // Round 2: only 80 messages arrive — diff = N^{-1} − N^2 = 20 > N^0/10.
        let inbox: Inbox<SynRanMsg> = ProcessId::all(80)
            .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
            .collect();
        p.receive(&mut ctx, &inbox);
        assert_eq!(p.decision(), None, "must not stop while unstable");
        // It re-decided 1 tentatively (80 ones > 7·100/10 fails: 800 > 700 ✓)
        assert!(p.tentatively_decided());
        // Round 3: stable 80 again — diff = N^0 − N^3 = 100−80 = 20 > N^1/10=10.
        let inbox: Inbox<SynRanMsg> = ProcessId::all(80)
            .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
            .collect();
        p.receive(&mut ctx, &inbox);
        assert_eq!(p.decision(), None);
        // Round 4: diff = N^1 − N^4 = 100−80 = 20 > N^2/10 = 8 — still no.
        // Round 5: diff = N^2 − N^5 = 80−80 = 0 ≤ N^3/10 — STOP.
        for expect_stop in [false, true] {
            let inbox: Inbox<SynRanMsg> = ProcessId::all(80)
                .map(|pid| (pid, SynRanMsg::Pref(Bit::One)))
                .collect();
            p.receive(&mut ctx, &inbox);
            assert_eq!(p.decision().is_some(), expect_stop);
        }
        assert_eq!(p.decision(), Some(Bit::One));
        assert!(p.halted());
    }

    #[test]
    fn protocol_names_distinguish_variants() {
        assert_eq!(SynRan::new().name(), "synran");
        assert_eq!(SynRan::symmetric().name(), "synran-sym");
        assert_eq!(SynRan::default().rule(), CoinRule::OneSided);
        assert_eq!(SynRan::symmetric().rule(), CoinRule::Symmetric);
    }

    #[test]
    fn single_process_system_decides_own_input() {
        let report = run_synran(SynRan::new(), 1, 0, |_| Bit::One, &mut Passive, 0).unwrap();
        assert_eq!(report.unanimous_decision(), Some(Bit::One));
    }
}
