//! The §3.4 message-walk: the paper's bivalent-state strategy, step by
//! step.
//!
//! In a bivalent state the paper's adversary first checks whether passing
//! **all** messages keeps the execution bivalent or null-valent — if so it
//! does nothing. Otherwise the round would become univalent (say
//! 1-valent), and the adversary walks the minimising strategy one step at
//! a time: fail a process *but send all its messages*, then cut its
//! messages **one receiver at a time**, inspecting the state after every
//! step (the paper's cases 1–3 in §3.4):
//!
//! 1. reaching a bivalent/null-valent state → stop failing, stay there;
//! 2. if failing the next process would flip 1-valent → 0-valent, don't —
//!    the flip itself witnesses bivalence;
//! 3. if cutting the next *message* flips the valence, keep the cut and
//!    stop — the receiver-failure argument shows the state is not
//!    univalent.
//!
//! This adversary is the finest-grained (and most expensive) realisation
//! of the lower bound in the workspace: every step of the walk costs a
//! valency estimate — all of which run on the lockstep cohort engine
//! ([`synran_sim::parallel::cohort`]) through [`estimate_valency`], so the
//! walk inherits the cohort's early retirement and shared-snapshot wins
//! with no change to its own logic or results (the cohort is byte-identical
//! to the per-fork path). Use
//! [`LowerBoundAdversary`](crate::LowerBoundAdversary)
//! for experiments at scale; use this to *watch the proof work* at small
//! `n` (see `examples/message_walk.rs`).

use synran_core::{StageKind, SynRanProcess};
use synran_sim::{
    Adversary, Bit, DeliveryFilter, Intervention, ProcessId, SimError, SimRng, World,
};

use crate::{estimate_valency, ProbeSet, ValencyEstimate};

/// The step-by-step §3.4 adversary for SynRan-family protocols.
#[derive(Debug)]
pub struct MessageWalker {
    per_round_cap: usize,
    samples: usize,
    horizon: u32,
    probes: ProbeSet<SynRanProcess>,
    seeder: SimRng,
    /// States with uncertainty at or above this are "still open" — the
    /// walk stops there.
    open_threshold: f64,
}

impl MessageWalker {
    /// Creates a walker failing at most `per_round_cap` processes per
    /// round, probing with `samples` forks over a `horizon`-round
    /// look-ahead.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn new(per_round_cap: usize, samples: usize, horizon: u32, seed: u64) -> MessageWalker {
        assert!(samples > 0, "need at least one sample per probe");
        MessageWalker {
            per_round_cap,
            samples,
            horizon,
            probes: ProbeSet::synran(per_round_cap),
            seeder: SimRng::new(seed).derive(0x3A1C),
            open_threshold: 0.35,
        }
    }

    fn estimate_after(
        &mut self,
        world: &World<SynRanProcess>,
        intervention: &Intervention,
    ) -> Result<ValencyEstimate, SimError> {
        let seed = self.seeder.next_u64();
        let mut fork = world.fork_bounded(seed, self.horizon);
        fork.deliver(intervention.clone())?;
        estimate_valency(
            &fork,
            &self.probes,
            self.samples,
            self.horizon,
            seed ^ 0x5EED,
        )
    }

    /// The walk's victim order: processes preferring the value the state
    /// is collapsing toward (killing their messages pulls back).
    fn victim_order(world: &World<SynRanProcess>, toward: Bit) -> Vec<ProcessId> {
        world
            .alive_ids()
            .filter(|&pid| {
                let p = world.process(pid);
                matches!(p.stage(), StageKind::Probabilistic | StageKind::Delay)
                    && p.preference() == toward
            })
            .collect()
    }
}

impl Adversary<SynRanProcess> for MessageWalker {
    fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
        let cap = self
            .per_round_cap
            .min(world.budget().remaining())
            .min(world.alive_count().saturating_sub(1));
        if cap == 0 {
            return Intervention::none();
        }

        // Step 0: would passing every message keep the state open?
        let Ok(baseline) = self.estimate_after(world, &Intervention::none()) else {
            return Intervention::none();
        };
        if baseline.uncertainty() >= self.open_threshold {
            return Intervention::none();
        }
        // The state is collapsing; which way?
        let toward = if baseline.min_p1() > 0.5 {
            Bit::One
        } else {
            Bit::Zero
        };
        let receivers: Vec<ProcessId> = world.alive_ids().collect();
        let victims = Self::victim_order(world, toward);

        // Walk: fail victims one at a time; for each victim cut messages
        // receiver by receiver, checking the estimated state after every
        // step and keeping the first intervention that re-opens it.
        let mut committed = Intervention::none();
        let mut best_score = baseline.uncertainty();
        for (v_idx, &victim) in victims.iter().enumerate().take(cap) {
            // Case 2 first: fail the victim but send all its messages.
            let mut step = committed.clone().kill(victim, DeliveryFilter::All);
            if let Ok(est) = self.estimate_after(world, &step) {
                if est.uncertainty() >= self.open_threshold {
                    return step;
                }
                best_score = best_score.max(est.uncertainty());
            }
            // Case 3: cut the victim's messages one receiver at a time
            // (coarsened to halving steps to bound the estimate count).
            let mut cut = 0usize;
            while cut < receivers.len() {
                cut = (cut + receivers.len().div_ceil(4)).min(receivers.len());
                let keep: Vec<ProcessId> = receivers[cut..].to_vec();
                step = committed.clone().kill(
                    victim,
                    if keep.is_empty() {
                        DeliveryFilter::None
                    } else {
                        DeliveryFilter::To(keep)
                    },
                );
                match self.estimate_after(world, &step) {
                    Ok(est) if est.uncertainty() >= self.open_threshold => return step,
                    Ok(est) => best_score = best_score.max(est.uncertainty()),
                    Err(_) => break,
                }
            }
            // Fully silenced and still univalent: commit this kill and
            // walk the next victim (the paper continues its strategy).
            committed = committed.kill(victim, DeliveryFilter::None);
            if v_idx + 1 >= cap {
                break;
            }
        }
        // No step re-opened the state; play the best committed prefix
        // (the paper's §3.5: ride the univalent state, still minimising).
        committed
    }

    fn name(&self) -> &str {
        "message-walker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, SynRan};
    use synran_sim::{Passive, SimConfig};

    fn split_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| Bit::from(i % 2 == 0)).collect()
    }

    #[test]
    fn safety_holds_under_the_walk() {
        for seed in 0..4u64 {
            let n = 10;
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n),
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut MessageWalker::new(3, 2, 25, seed),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn walker_outlasts_passive_play() {
        let n = 12;
        let mut passive_total = 0u32;
        let mut walked_total = 0u32;
        for seed in 0..5u64 {
            let cfg = SimConfig::new(n)
                .faults(n - 1)
                .seed(seed)
                .max_rounds(50_000);
            let v1 = check_consensus(&SynRan::new(), &split_inputs(n), cfg.clone(), &mut Passive)
                .unwrap();
            passive_total += v1.rounds();
            let v2 = check_consensus(
                &SynRan::new(),
                &split_inputs(n),
                cfg,
                &mut MessageWalker::new(4, 3, 30, seed),
            )
            .unwrap();
            assert!(v2.is_correct());
            walked_total += v2.rounds();
        }
        assert!(
            walked_total > passive_total,
            "walker ({walked_total}) should outlast passive ({passive_total})"
        );
    }

    #[test]
    fn respects_cap_and_budget() {
        let n = 10;
        let verdict = check_consensus(
            &SynRan::new(),
            &split_inputs(n),
            SimConfig::new(n).faults(4).seed(7).max_rounds(50_000),
            &mut MessageWalker::new(2, 2, 20, 7),
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert!(verdict.report().metrics().total_kills() <= 4);
        assert!(verdict
            .report()
            .metrics()
            .kills_per_round()
            .iter()
            .all(|&(_, k)| k <= 2));
    }
}
