//! The boundary attack: Lemma 4.2's arithmetic, weaponised.
//!
//! Lemma 4.2 proves Agreement from a numeric margin: a process stops with
//! `v` only after seeing evidence past the decide line **and** observing
//! that at most `stability·N/20` processes died recently — which forces
//! every other process's view past the propose line for `v`. The attack
//! below constructs exactly the execution the proof excludes, on either
//! side:
//!
//! 1. **Round 1** — engineer a *witness* whose view crosses the decide
//!    line while everyone else's view stays in the coin band, using a few
//!    mid-send kills with witness-only (or everyone-but-witness) delivery;
//! 2. **Round 2** — do nothing: if the round-1 kills fit inside the
//!    stability margin, the witness **stops**;
//! 3. **Round 3** — silently erase the witness's side of the vote; the
//!    survivors converge to the other value — Agreement is violated.
//!
//! With the paper's constants the plan is **infeasible** on both sides:
//! step 1 needs `≥ (decide − propose)·n/20` kills while step 2 tolerates
//! only `stability·n/20`, and the gaps equal the margin exactly. Narrow
//! either gap below the margin
//! ([`Thresholds::respects_lemma_4_2`] false) and the attack succeeds.
//! Experiment E10 reports both columns.

use synran_core::{StageKind, SynRanProcess, Thresholds};
use synran_sim::{Adversary, Bit, DeliveryFilter, Intervention, ProcessId, World};

/// The Lemma 4.2 boundary attack for SynRan-family protocols.
///
/// For the attack's preconditions, start the system with
/// [`BoundaryAttack::ideal_ones`] processes holding input 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryAttack {
    target: Bit,
}

impl BoundaryAttack {
    /// The attack on the decide-**1** margin (`decide_one − propose_one`).
    #[must_use]
    pub fn new() -> BoundaryAttack {
        BoundaryAttack { target: Bit::One }
    }

    /// The attack on the chosen side's margin: the witness is made to
    /// decide `target` early while the survivors are steered to the
    /// opposite value.
    #[must_use]
    pub fn targeting(target: Bit) -> BoundaryAttack {
        BoundaryAttack { target }
    }

    /// The number of 1-inputs that sets up this attack:
    ///
    /// * targeting 1 — just above the decide-1 line
    ///   (`⌊decide_one·n/20⌋ + 1`), so the witness can decide while a few
    ///   kills push everyone else into the coin band;
    /// * targeting 0 — inside the coin band, so a few *hidden* 1-votes
    ///   drop the witness's view below the decide-0 line while everyone
    ///   else keeps coin-flipping.
    #[must_use]
    pub fn ideal_ones(n: usize, thresholds: Thresholds, target: Bit) -> usize {
        match target {
            Bit::One => (thresholds.decide_one() as usize * n / 20 + 1).min(n),
            Bit::Zero => {
                // The bottom of the coin band: the fewest 1-votes the
                // witness must lose, so the round-1 kills still fit the
                // stability margin.
                thresholds.propose_zero() as usize * n / 20
            }
        }
    }

    fn round_one(&self, world: &World<SynRanProcess>, ones: &[ProcessId]) -> Intervention {
        let n = world.n();
        let budget = world.budget().remaining();
        let Some(&sample) = world.alive_ids().collect::<Vec<_>>().first() else {
            return Intervention::none();
        };
        let th = world.process(sample).thresholds();
        match self.target {
            Bit::One => {
                // Witness sees everything; others lose k1 one-votes.
                let Some(&witness) = ones.first() else {
                    return Intervention::none();
                };
                let coin_band_top = th.propose_one() as usize * n / 20;
                let k1 = ones.len().saturating_sub(coin_band_top);
                if k1 == 0 || k1 > budget || k1 + 1 >= ones.len() {
                    return Intervention::none();
                }
                let mut iv = Intervention::new();
                for &victim in ones.iter().rev().take(k1) {
                    iv = iv.kill(victim, DeliveryFilter::To(vec![witness]));
                }
                iv
            }
            Bit::Zero => {
                // Witness loses k1 one-votes; everyone else sees them.
                let witness = match world
                    .alive_ids()
                    .find(|&pid| world.process(pid).preference() == Bit::Zero)
                {
                    Some(w) => w,
                    None => return Intervention::none(),
                };
                // Largest witness view still below the decide-0 line:
                // 20·o < decide_zero·n.
                let max_witness_ones = (th.decide_zero() as usize * n).saturating_sub(1) / 20;
                let k1 = ones.len().saturating_sub(max_witness_ones);
                if k1 == 0 || k1 > budget || k1 >= ones.len() {
                    return Intervention::none();
                }
                let everyone_else: Vec<ProcessId> =
                    world.alive_ids().filter(|&p| p != witness).collect();
                let mut iv = Intervention::new();
                for &victim in ones.iter().rev().take(k1) {
                    if victim == witness {
                        continue;
                    }
                    iv = iv.kill(victim, DeliveryFilter::To(everyone_else.clone()));
                }
                iv
            }
        }
    }
}

impl Default for BoundaryAttack {
    fn default() -> BoundaryAttack {
        BoundaryAttack::new()
    }
}

impl Adversary<SynRanProcess> for BoundaryAttack {
    fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
        let budget = world.budget().remaining();
        if budget == 0 || world.alive_count() <= 1 {
            return Intervention::none();
        }
        let ones: Vec<ProcessId> = world
            .alive_ids()
            .filter(|&pid| {
                let p = world.process(pid);
                p.stage() == StageKind::Probabilistic && p.preference() == Bit::One
            })
            .collect();

        match world.round().index() {
            1 => self.round_one(world, &ones),
            2 => Intervention::none(), // quiet: let the witness's stability check pass
            3 => {
                // Erase the witness's side; survivors drift the other way.
                let side: Vec<ProcessId> = match self.target {
                    Bit::One => ones,
                    Bit::Zero => world
                        .alive_ids()
                        .filter(|&pid| {
                            let p = world.process(pid);
                            p.stage() == StageKind::Probabilistic && p.preference() == Bit::Zero
                        })
                        .collect(),
                };
                let spare_alive = world.alive_count().saturating_sub(1);
                let k = side.len().min(budget).min(spare_alive);
                if k == 0 {
                    return Intervention::none();
                }
                Intervention::kill_all_silent(side[..k].iter().copied())
            }
            _ => Intervention::none(),
        }
    }

    fn name(&self) -> &str {
        match self.target {
            Bit::One => "boundary-1",
            Bit::Zero => "boundary-0",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, SynRan};
    use synran_sim::{SimConfig, SimRng};

    fn attack_runs(
        thresholds: Thresholds,
        target: Bit,
        n: usize,
        runs: u64,
        base_seed: u64,
    ) -> usize {
        let protocol = SynRan::with_thresholds(thresholds);
        let ones = BoundaryAttack::ideal_ones(n, thresholds, target);
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < ones)).collect();
        let mut violations = 0;
        for r in 0..runs {
            let seed = SimRng::new(base_seed).derive(r).next_u64();
            let verdict = check_consensus(
                &protocol,
                &inputs,
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut BoundaryAttack::targeting(target),
            )
            .unwrap();
            if !verdict.is_correct() {
                assert!(
                    verdict.violations().iter().any(|v| v.contains("agreement")),
                    "expected an agreement violation, got {:?}",
                    verdict.violations()
                );
                violations += 1;
            }
        }
        violations
    }

    #[test]
    fn paper_thresholds_resist_both_sides() {
        assert!(Thresholds::paper().respects_lemma_4_2());
        for target in Bit::BOTH {
            let violations = attack_runs(Thresholds::paper(), target, 40, 30, 1);
            assert_eq!(
                violations, 0,
                "Lemma 4.2's margin must make the {target}-side attack infeasible"
            );
        }
    }

    #[test]
    fn narrowed_one_gap_breaks_agreement() {
        // decide_one − propose_one = 1 < stability = 2.
        let narrowed = Thresholds::new(13, 12, 10, 8, 2);
        assert!(!narrowed.respects_lemma_4_2());
        let violations = attack_runs(narrowed, Bit::One, 40, 30, 2);
        assert!(violations > 0, "the 1-side boundary attack should succeed");
    }

    #[test]
    fn narrowed_zero_gap_breaks_agreement() {
        // propose_zero − decide_zero = 1 < stability = 2.
        let narrowed = Thresholds::new(14, 12, 10, 9, 2);
        assert!(!narrowed.respects_lemma_4_2());
        let violations = attack_runs(narrowed, Bit::Zero, 40, 30, 3);
        assert!(violations > 0, "the 0-side boundary attack should succeed");
    }

    #[test]
    fn ideal_ones_sits_just_above_the_decide_line() {
        let th = Thresholds::paper();
        let n = 40;
        let ones = BoundaryAttack::ideal_ones(n, th, Bit::One);
        assert_eq!(ones, 29); // ⌊14·40/20⌋ + 1
        assert!(20 * ones > th.decide_one() as usize * n);
        assert!(20 * (ones - 1) <= th.decide_one() as usize * n);
        // The 0-side setup sits mid coin band.
        let zeros_setup = BoundaryAttack::ideal_ones(n, th, Bit::Zero);
        assert_eq!(zeros_setup, 20); // 10·40/20: the coin band bottom
    }
}
