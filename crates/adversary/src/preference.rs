//! Preference-targeting adversaries for SynRan-family protocols.

use synran_core::SynRanProcess;
use synran_sim::{Adversary, Bit, BitPlane, Intervention, World};

/// Kills up to `per_round` alive processes whose current preference is
/// `target` — full information put to its most direct use.
///
/// Killing 1-preferrers drags the visible vote toward 0; killing
/// 0-preferrers drags it toward 1 (and, against the paper's one-sided coin
/// rule, *helps* the protocol converge — which is the point of the rule).
/// These are the reference probes the valency estimator uses for
/// `min r(α)` / `max r(α)`.
///
/// # Examples
///
/// ```
/// use synran_adversary::PreferenceKiller;
/// use synran_core::{check_consensus, SynRan};
/// use synran_sim::{Bit, SimConfig};
///
/// let inputs: Vec<Bit> = (0..10).map(|i| Bit::from(i < 5)).collect();
/// let verdict = check_consensus(
///     &SynRan::new(),
///     &inputs,
///     SimConfig::new(10).faults(5).seed(2),
///     &mut PreferenceKiller::new(Bit::One, 2),
/// )?;
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreferenceKiller {
    target: Bit,
    per_round: usize,
}

impl PreferenceKiller {
    /// Creates a killer of processes preferring `target`, up to
    /// `per_round` victims per round.
    #[must_use]
    pub fn new(target: Bit, per_round: usize) -> PreferenceKiller {
        PreferenceKiller { target, per_round }
    }

    /// The targeted preference.
    #[must_use]
    pub fn target(&self) -> Bit {
        self.target
    }
}

impl Adversary<SynRanProcess> for PreferenceKiller {
    fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
        let alive = world.alive_count();
        // Keep a survivor; a wiped-out system trivially "agrees".
        let k = self
            .per_round
            .min(world.budget().remaining())
            .min(alive.saturating_sub(1));
        if k == 0 {
            return Intervention::none();
        }
        // Mark every alive process preferring the target on a plane, then
        // take the lowest `k` set bits — identical victims, in identical
        // (ascending) order, to the old per-id filter scan.
        let matching = BitPlane::from_fn(world.config().n(), |i| {
            self.target == world.process(synran_sim::ProcessId::new(i)).preference()
        });
        let mut victims = matching;
        victims.intersect_with(world.alive_mask());
        Intervention::kill_all_silent(victims.ids().take(k))
    }

    fn name(&self) -> &str {
        match self.target {
            Bit::Zero => "kill-zeros",
            Bit::One => "kill-ones",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, SynRan};
    use synran_sim::SimConfig;

    fn split_inputs(n: usize, ones: usize) -> Vec<Bit> {
        (0..n).map(|i| Bit::from(i < ones)).collect()
    }

    #[test]
    fn killing_all_ones_forces_zero() {
        // With enough per-round firepower to erase every 1-vote at once,
        // everyone sees O = 0 < 4·N/10 and decides 0.
        let runs = 20;
        for seed in 0..runs {
            let n = 20;
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n, n / 2),
                SimConfig::new(n).faults(n - 1).seed(seed),
                &mut PreferenceKiller::new(Bit::One, n),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
            assert_eq!(
                verdict.report().unanimous_decision(),
                Some(Bit::Zero),
                "seed {seed}: killing every 1-preferrer must force 0"
            );
        }
    }

    #[test]
    fn killing_all_zeros_feeds_the_one_sided_rule() {
        // Erasing every visible 0 triggers `Z = 0 → 1`: the protocol
        // converges to 1 — the paper's point about one-sided bias.
        let runs = 20;
        for seed in 100..100 + runs {
            let n = 20;
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n, n / 2),
                SimConfig::new(n).faults(n - 1).seed(seed),
                &mut PreferenceKiller::new(Bit::Zero, n),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
            assert_eq!(
                verdict.report().unanimous_decision(),
                Some(Bit::One),
                "seed {seed}: killing every 0-preferrer must force 1"
            );
        }
    }

    #[test]
    fn trickle_killing_barely_biases() {
        // A rate-limited preference killer cannot outpace the coin flips
        // that replenish the targeted side: runs still terminate correctly.
        for seed in 0..10 {
            let n = 20;
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n, n / 2),
                SimConfig::new(n).faults(n / 2).seed(seed),
                &mut PreferenceKiller::new(Bit::Zero, 2),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn respects_budget_and_leaves_survivor() {
        let n = 8;
        let verdict = check_consensus(
            &SynRan::new(),
            &split_inputs(n, n),
            SimConfig::new(n).faults(n).seed(7),
            &mut PreferenceKiller::new(Bit::One, n),
        )
        .unwrap();
        assert!(verdict.report().non_faulty().count() >= 1);
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
    }

    #[test]
    fn name_reflects_target() {
        let k = PreferenceKiller::new(Bit::Zero, 1);
        assert_eq!(Adversary::<SynRanProcess>::name(&k), "kill-zeros");
        assert_eq!(k.target(), Bit::Zero);
    }
}
