//! The adaptive attack on leader-based consensus: shoot the leader.
//!
//! [`LeaderConsensus`](synran_core::LeaderConsensus) converges in `O(1)`
//! expected phases against a *non-adaptive* adversary (experiment E9 —
//! the CMS89 effect the paper cites in §1.2). The full-information
//! adaptive adversary, however, sees every fresh leader priority in
//! Phase A, *before delivery*. This hunter exploits that, per round:
//!
//! * **announcement rounds** — kill every `Decide` announcer mid-send
//!   (zero delivery), cutting the decision chain;
//! * **estimate rounds (R1)** — if either value is held by a strict
//!   majority, kill just enough of its holders that no receiver can count
//!   past `n/2`: no candidate can lock;
//! * **candidate rounds (R2)** — with all-⊥ candidates every process will
//!   adopt the *random leader's* estimate. Kill the handful of processes
//!   whose priorities outrank the other side's best, delivering their
//!   dying messages to only half the survivors: that half adopts one
//!   value, the other half adopts the other — the estimates stay split at
//!   an expected ~2 kills per phase (the geometric number of leaders
//!   above the opposing side's maximum).
//!
//! The result is a `Θ(t)`-round stall from `O(1)`-per-round spending —
//! leader protocols are *cheaper to stall than SynRan*, which costs the
//! adversary `~√(p·log p)` per round (Lemma 4.6). That contrast is the
//! paper's §1.2 landscape, measured.

use synran_core::{LeaderMsg, LeaderProcess};
use synran_sim::{Adversary, Bit, DeliveryFilter, Intervention, ProcessId, SendPattern, World};

/// One sender's visible Phase-A state in an R2 round.
#[derive(Debug, Clone, Copy)]
struct Voter {
    pid: ProcessId,
    fallback: Bit,
    priority: u64,
}

/// The adaptive leader-killing adversary for
/// [`LeaderConsensus`](synran_core::LeaderConsensus).
///
/// # Examples
///
/// ```
/// use synran_adversary::LeaderHunter;
/// use synran_core::{check_consensus, LeaderConsensus};
/// use synran_sim::{Bit, SimConfig};
///
/// let n = 17;
/// let t = 8;
/// let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
/// let verdict = check_consensus(
///     &LeaderConsensus::for_faults(t),
///     &inputs,
///     SimConfig::new(n).faults(t).seed(1).max_rounds(100_000),
///     &mut LeaderHunter::new(),
/// )?;
/// assert!(verdict.is_correct()); // safety survives; latency does not
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaderHunter;

impl LeaderHunter {
    /// Creates the hunter.
    #[must_use]
    pub fn new() -> LeaderHunter {
        LeaderHunter
    }

    fn cut_announcers(world: &World<LeaderProcess>, cap: usize) -> Option<Intervention> {
        let announcers: Vec<ProcessId> = world
            .alive_ids()
            .filter(|&pid| {
                matches!(
                    world.outbox(pid),
                    Some(SendPattern::Broadcast(LeaderMsg::Decide(_)))
                )
            })
            .collect();
        if announcers.is_empty() {
            return None;
        }
        if announcers.len() > cap || announcers.len() >= world.alive_count() {
            // Cannot silence them all; cutting some only delays by a
            // round while the chain grows — save the budget.
            return Some(Intervention::none());
        }
        Some(Intervention::kill_all_silent(announcers))
    }

    fn block_locks(world: &World<LeaderProcess>, cap: usize) -> Intervention {
        let n = world.n();
        let mut holders: [Vec<ProcessId>; 2] = [Vec::new(), Vec::new()];
        for pid in world.alive_ids() {
            if let Some(SendPattern::Broadcast(LeaderMsg::Est { value, .. })) = world.outbox(pid) {
                holders[usize::from(*value)].push(pid);
            }
        }
        let mut victims: Vec<ProcessId> = Vec::new();
        for side in &holders {
            if 2 * side.len() > n {
                // Reduce the side's sender count to ⌊n/2⌋ so no receiver
                // can observe a strict majority.
                victims.extend(&side[..side.len() - n / 2]);
            }
        }
        if victims.is_empty() || victims.len() > cap || victims.len() >= world.alive_count() {
            return Intervention::none();
        }
        Intervention::kill_all_silent(victims)
    }

    fn split_leaders(world: &World<LeaderProcess>, cap: usize) -> Intervention {
        let n = world.n();
        let mut voters: Vec<Voter> = Vec::new();
        let mut locked: [Vec<ProcessId>; 2] = [Vec::new(), Vec::new()];
        for pid in world.alive_ids() {
            if let Some(SendPattern::Broadcast(LeaderMsg::Cand {
                candidate,
                fallback,
                priority,
            })) = world.outbox(pid)
            {
                if let Some(v) = candidate {
                    locked[usize::from(*v)].push(pid);
                }
                voters.push(Voter {
                    pid,
                    fallback: *fallback,
                    priority: *priority,
                });
            }
        }
        // A lock escaped R1 blocking: keep the decide threshold n − t out
        // of reach if affordable (the protocol's t is unknown to us only
        // nominally — the engine budget IS t).
        for side in &locked {
            if side.is_empty() {
                continue;
            }
            let t = world.budget().total();
            let deny = side.len().saturating_sub((n - t).saturating_sub(1));
            if deny > 0 && deny <= cap && deny < world.alive_count() {
                return Intervention::kill_all_silent(side[..deny].iter().copied());
            }
            return Intervention::none();
        }
        // All-⊥ round: split the leader view.
        let top = |b: Bit| {
            voters
                .iter()
                .filter(|v| v.fallback == b)
                .map(|v| v.priority)
                .max()
        };
        let (Some(top1), Some(top0)) = (top(Bit::One), top(Bit::Zero)) else {
            return Intervention::none(); // unanimity: nothing to split
        };
        let losing_top = top1.min(top0);
        let mut victims: Vec<ProcessId> = voters
            .iter()
            .filter(|v| v.priority > losing_top)
            .map(|v| v.pid)
            .collect();
        victims.sort();
        if victims.is_empty() || victims.len() > cap {
            return Intervention::none();
        }
        let survivors: Vec<ProcessId> = world
            .alive_ids()
            .filter(|pid| !victims.contains(pid))
            .collect();
        if survivors.len() < 2 {
            return Intervention::none();
        }
        let group_a: Vec<ProcessId> = survivors.iter().copied().step_by(2).collect();
        let mut iv = Intervention::new();
        for victim in victims {
            iv = iv.kill(victim, DeliveryFilter::To(group_a.clone()));
        }
        iv
    }
}

impl Adversary<LeaderProcess> for LeaderHunter {
    fn intervene(&mut self, world: &World<LeaderProcess>) -> Intervention {
        let cap = world
            .budget()
            .remaining()
            .min(world.alive_count().saturating_sub(1));
        if cap == 0 {
            return Intervention::none();
        }
        if let Some(iv) = Self::cut_announcers(world, cap) {
            return iv;
        }
        // Peek one outbox to see which phase round this is.
        let kind = world.alive_ids().find_map(|pid| match world.outbox(pid) {
            Some(SendPattern::Broadcast(LeaderMsg::Est { .. })) => Some(true),
            Some(SendPattern::Broadcast(LeaderMsg::Cand { .. })) => Some(false),
            _ => None,
        });
        match kind {
            Some(true) => Self::block_locks(world, cap),
            Some(false) => Self::split_leaders(world, cap),
            None => Intervention::none(),
        }
    }

    fn name(&self) -> &str {
        "leader-hunter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oblivious;
    use synran_core::{check_consensus, LeaderConsensus};
    use synran_sim::SimConfig;

    fn split_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| Bit::from(i % 2 == 0)).collect()
    }

    #[test]
    fn safety_holds_under_the_hunt() {
        for seed in 0..10u64 {
            let n = 21;
            let t = 10;
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed).max_rounds(100_000),
                &mut LeaderHunter::new(),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn adaptive_hunting_beats_static_schedules_badly() {
        // The E9 headline in test form: the protocol that shrugs off
        // pre-committed kills stalls for far longer when the killer can
        // see the leader coins before delivery.
        let n = 25;
        let t = 12;
        let runs = 10u64;
        let mut static_total = 0u32;
        let mut adaptive_total = 0u32;
        for seed in 0..runs {
            let cfg = SimConfig::new(n).faults(t).seed(seed).max_rounds(100_000);
            let mut oblivious = Oblivious::new(n, 1, 60, seed);
            let v1 = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                cfg.clone(),
                &mut oblivious,
            )
            .unwrap();
            assert!(v1.is_correct());
            static_total += v1.rounds();
            let v2 = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                cfg,
                &mut LeaderHunter::new(),
            )
            .unwrap();
            assert!(v2.is_correct(), "seed {seed}: {:?}", v2.violations());
            adaptive_total += v2.rounds();
        }
        assert!(
            adaptive_total > static_total * 2,
            "hunter ({adaptive_total}) should far outlast static ({static_total})"
        );
    }

    #[test]
    fn hunter_spends_little_per_stalled_round() {
        let n = 33;
        let t = 16;
        let verdict = check_consensus(
            &LeaderConsensus::for_faults(t),
            &split_inputs(n),
            SimConfig::new(n).faults(t).seed(3).max_rounds(100_000),
            &mut LeaderHunter::new(),
        )
        .unwrap();
        assert!(verdict.is_correct());
        let kills = verdict.report().metrics().total_kills() as f64;
        let rounds = f64::from(verdict.rounds());
        assert!(
            rounds > 10.0,
            "the hunt should stall well past passive play: {rounds}"
        );
        assert!(
            kills / rounds < 4.0,
            "hunting should be cheap: {kills} kills over {rounds} rounds"
        );
    }

    #[test]
    fn gives_up_on_unanimity() {
        let n = 13;
        let verdict = check_consensus(
            &LeaderConsensus::for_faults(6),
            &vec![Bit::One; n],
            SimConfig::new(n).faults(6).seed(4).max_rounds(10_000),
            &mut LeaderHunter::new(),
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert_eq!(verdict.report().unanimous_decision(), Some(Bit::One));
    }
}
