//! Protocol-agnostic baseline adversaries.

use synran_sim::{Adversary, Intervention, Process, ProcessId, SimRng, World};

/// Kills up to `per_round` uniformly random alive processes each round
/// until the budget runs out. Messages of victims are fully suppressed.
///
/// The "dumb but busy" baseline: it spends the same budget as smarter
/// adversaries without adaptivity, which is exactly what experiments E4/E5
/// contrast against.
///
/// # Examples
///
/// ```
/// use synran_adversary::RandomKiller;
/// use synran_core::{check_consensus, SynRan};
/// use synran_sim::{Bit, SimConfig};
///
/// let mut adversary = RandomKiller::new(2, 9);
/// let verdict = check_consensus(
///     &SynRan::new(),
///     &[Bit::One; 12],
///     SimConfig::new(12).faults(6).seed(1),
///     &mut adversary,
/// )?;
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomKiller {
    per_round: usize,
    rng: SimRng,
}

impl RandomKiller {
    /// Creates a killer taking up to `per_round` victims per round, with
    /// its own deterministic randomness stream.
    #[must_use]
    pub fn new(per_round: usize, seed: u64) -> RandomKiller {
        RandomKiller {
            per_round,
            rng: SimRng::new(seed).derive(0x4B11),
        }
    }
}

impl<P: Process> Adversary<P> for RandomKiller {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        let alive: Vec<ProcessId> = world.alive_ids().collect();
        let k = self
            .per_round
            .min(world.budget().remaining())
            .min(alive.len());
        if k == 0 {
            return Intervention::none();
        }
        let victims = self
            .rng
            .sample_indices(alive.len(), k)
            .into_iter()
            .map(|i| alive[i]);
        Intervention::kill_all_silent(victims)
    }

    fn name(&self) -> &str {
        "random-killer"
    }
}

/// Spends the entire fault budget in the very first round.
///
/// The front-loaded extreme: tests protocols' handling of a sudden
/// population collapse (SynRan's deterministic-stage handover in
/// particular).
#[derive(Debug, Clone)]
pub struct Storm {
    rng: SimRng,
}

impl Storm {
    /// Creates a storm adversary with its own randomness stream.
    #[must_use]
    pub fn new(seed: u64) -> Storm {
        Storm {
            rng: SimRng::new(seed).derive(0x5702),
        }
    }
}

impl<P: Process> Adversary<P> for Storm {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        if world.round().index() != 1 {
            return Intervention::none();
        }
        let alive: Vec<ProcessId> = world.alive_ids().collect();
        // Never kill everyone: leave at least one process so the execution
        // has a survivor to decide.
        let k = world
            .budget()
            .remaining()
            .min(alive.len().saturating_sub(1));
        if k == 0 {
            return Intervention::none();
        }
        let victims = self
            .rng
            .sample_indices(alive.len(), k)
            .into_iter()
            .map(|i| alive[i]);
        Intervention::kill_all_silent(victims)
    }

    fn name(&self) -> &str {
        "storm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, ConsensusProtocol, FloodingConsensus, SynRan};
    use synran_sim::{Bit, SimConfig};

    #[test]
    fn random_killer_respects_rate_and_budget() {
        let n = 20;
        let t = 7;
        let protocol = FloodingConsensus::for_faults(t);
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
        let verdict = check_consensus(
            &protocol,
            &inputs,
            SimConfig::new(n).faults(t).seed(3),
            &mut RandomKiller::new(3, 3),
        )
        .unwrap();
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
        let metrics = verdict.report().metrics();
        assert!(metrics.total_kills() <= t);
        assert!(metrics.kills_per_round().iter().all(|&(_, k)| k <= 3));
    }

    #[test]
    fn storm_strikes_once() {
        let n = 16;
        let t = 14;
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < 8)).collect();
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(t).seed(4),
            &mut Storm::new(4),
        )
        .unwrap();
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
        let kills = verdict.report().metrics().kills_per_round();
        assert_eq!(kills.len(), 1, "storm kills only in round 1");
        assert_eq!(kills[0].0, synran_sim::Round::FIRST);
        assert_eq!(kills[0].1, 14);
    }

    #[test]
    fn storm_leaves_a_survivor() {
        // Even with budget == n, at least one process survives.
        let n = 6;
        let inputs = vec![Bit::One; n];
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(n).seed(5),
            &mut Storm::new(5),
        )
        .unwrap();
        assert!(verdict.report().non_faulty().count() >= 1);
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
    }

    #[test]
    fn adversaries_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let n = 14;
            let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
            let protocol = SynRan::new();
            let _ = protocol.name();
            check_consensus(
                &protocol,
                &inputs,
                SimConfig::new(n).faults(7).seed(seed),
                &mut RandomKiller::new(2, seed),
            )
            .unwrap()
            .rounds()
        };
        assert_eq!(run(11), run(11));
    }
}
