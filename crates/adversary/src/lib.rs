//! # synran-adversary — the lower-bound machinery (§3)
//!
//! Part of the [`synran`](https://github.com/synran/synran) reproduction of
//! *Bar-Joseph & Ben-Or, "A Tight Lower Bound for Randomized Synchronous
//! Consensus" (PODC 1998)*.
//!
//! The paper's Theorem 1 adversary is full-information, adaptive, and
//! computationally unbounded; it keeps any consensus protocol in bivalent
//! or null-valent states for `Ω(t/√(n·log n))` rounds by spending at most
//! `4√(n·log n) + 1` kills per round. This crate provides:
//!
//! * **probabilistic valency** ([`estimate_valency`], [`classify`],
//!   [`Valence`]) — the §3.2 state classification, estimated by forking
//!   executions and resuming them under reference [`ProbeSet`]s;
//! * **the lower-bound adversary** ([`LowerBoundAdversary`]) — per round,
//!   scores candidate interventions by the openness of the resulting state
//!   and plays the one that keeps both decisions reachable;
//! * **[`find_adversarial_input`]** — Lemma 3.5's initial-state chain
//!   argument, operationalised as a binary search for the flip point;
//! * **structural attacks** ([`Balancer`] — the coin-band stalling attack
//!   matching Lemma 4.6's cost accounting, [`PreferenceKiller`]) and
//!   **baselines** ([`RandomKiller`], [`Storm`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod balancer;
mod boundary;
mod exact;
mod leader_hunter;
mod lower_bound;
mod oblivious;
mod preference;
mod simple;
mod valency;
mod walker;

pub use balancer::Balancer;
pub use boundary::BoundaryAttack;
pub use exact::{ExactError, ExactEvaluator, ExactRange};
pub use leader_hunter::LeaderHunter;
pub use lower_bound::{find_adversarial_input, LowerBoundAdversary};
pub use oblivious::Oblivious;
pub use preference::PreferenceKiller;
pub use simple::{RandomKiller, Storm};
pub use valency::{
    classify, classify_with, estimate_valency, estimate_valency_fork, BoxedAdversary, ProbeSet,
    Valence, ValencyEstimate,
};
pub use walker::MessageWalker;
