//! The §3 lower-bound adversary: keep the execution bi- or null-valent.
//!
//! The paper's Theorem 1 adversary works round by round: from a bivalent
//! or null-valent state, it finds an intervention of at most
//! `4√(n·log n) + 1` kills after which the state is *still* bivalent or
//! null-valent (Lemma 3.1 for null-valent states via the coin-game bias of
//! §2; the step-by-step message-failing walk of §3.4 for bivalent ones),
//! so with high probability the protocol cannot decide until the fault
//! budget is exhausted — `Ω(t/√(n·log n))` rounds.
//!
//! The unbounded adversary *knows* each candidate's resulting valency.
//! This implementation estimates it: per round it proposes a small set of
//! candidate interventions (do nothing; trim the vote into the coin band;
//! mass-target either preference; the delivery-splitting rescue), scores
//! each by forking the world and measuring
//! [`uncertainty`](crate::ValencyEstimate::uncertainty) under the probe
//! family, and plays the candidate that keeps the future most open. See
//! DESIGN.md's substitution table for why this preserves the forced-rounds
//! shape.

use synran_core::{per_round_kill_budget, StageKind, SynRan, SynRanProcess};
use synran_sim::{
    Adversary, Bit, BitPlane, Intervention, Passive, SimConfig, SimError, SimRng, World,
};

use crate::{estimate_valency, Balancer, ProbeSet};

/// The valency-guided lower-bound adversary for SynRan-family protocols.
///
/// # Examples
///
/// ```no_run
/// use synran_adversary::LowerBoundAdversary;
/// use synran_core::{check_consensus, SynRan};
/// use synran_sim::{Bit, SimConfig};
///
/// let n = 32;
/// let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
/// let verdict = check_consensus(
///     &SynRan::new(),
///     &inputs,
///     SimConfig::new(n).faults(n - 1).seed(1).max_rounds(100_000),
///     &mut LowerBoundAdversary::for_system(n, 1),
/// )?;
/// assert!(verdict.is_correct()); // safety holds; rounds are forced up
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct LowerBoundAdversary {
    per_round_cap: usize,
    samples: usize,
    horizon: u32,
    probes: ProbeSet<SynRanProcess>,
    seeder: SimRng,
}

impl LowerBoundAdversary {
    /// The paper's parameterisation for a system of `n` processes:
    /// per-round cap `⌈4√(n·log n)⌉ + 1`, with probe costs tuned for
    /// experiment-scale runs.
    #[must_use]
    pub fn for_system(n: usize, seed: u64) -> LowerBoundAdversary {
        let cap = per_round_kill_budget(n).ceil() as usize + 1;
        LowerBoundAdversary::with_params(cap, 4, 3 * (n as f64).sqrt() as u32 + 20, seed)
    }

    /// Full control over the estimator: per-round kill cap, forks per
    /// probe, and the look-ahead horizon in rounds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn with_params(
        per_round_cap: usize,
        samples: usize,
        horizon: u32,
        seed: u64,
    ) -> LowerBoundAdversary {
        assert!(samples > 0, "need at least one sample per probe");
        LowerBoundAdversary {
            per_round_cap,
            samples,
            horizon,
            probes: ProbeSet::synran(per_round_cap),
            seeder: SimRng::new(seed).derive(0x10E7),
        }
    }

    /// The per-round kill cap.
    #[must_use]
    pub fn per_round_cap(&self) -> usize {
        self.per_round_cap
    }

    /// Candidate interventions in *preference order*: the structural
    /// stalling move first, doing nothing last. Scoring must beat an
    /// earlier candidate by a clear margin to displace it, so estimator
    /// noise degrades toward the structurally sound play rather than
    /// toward inaction.
    fn candidates(&self, world: &World<SynRanProcess>) -> Vec<Intervention> {
        let cap = self
            .per_round_cap
            .min(world.budget().remaining())
            .min(world.alive_count().saturating_sub(1));
        if cap == 0 {
            return vec![Intervention::none()];
        }

        let n = world.config().n();
        let mut ones = BitPlane::new(n);
        let mut zeros = BitPlane::new(n);
        for pid in world.alive_ids() {
            let p = world.process(pid);
            if matches!(p.stage(), StageKind::Probabilistic | StageKind::Delay) {
                match p.preference() {
                    Bit::One => ones.set(pid.index()),
                    Bit::Zero => zeros.set(pid.index()),
                }
            }
        }

        // The domain-smart move first: whatever the coin-band balancer
        // would do with the same cap.
        let mut out = vec![Balancer::with_cap(cap).intervene(world)];

        // Mass-target each preference, at two intensities: the lowest `k`
        // set bits of each preference plane.
        for group in [&ones, &zeros] {
            for k in [cap / 2, cap] {
                let k = k.min(group.count_ones());
                if k == 0 {
                    continue;
                }
                let iv = Intervention::kill_all_silent(group.ids().take(k));
                if !out.contains(&iv) {
                    out.push(iv);
                }
            }
        }
        if !out.contains(&Intervention::none()) {
            out.push(Intervention::none());
        }
        out
    }
}

impl Adversary<SynRanProcess> for LowerBoundAdversary {
    fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
        let candidates = self.candidates(world);
        if candidates.len() == 1 {
            return candidates.into_iter().next().expect("none candidate");
        }
        let mut best: Option<(f64, usize, Intervention)> = None;
        for (i, candidate) in candidates.into_iter().enumerate() {
            let probe_seed = self
                .seeder
                .derive(world.round().index().into())
                .derive(i as u64);
            // Evaluate the candidate on a fork: apply it, then measure how
            // open the resulting state is.
            let mut fork = world.fork_bounded(probe_seed.clone().next_u64(), self.horizon);
            if fork.deliver(candidate.clone()).is_err() {
                continue; // e.g. a stale candidate that exceeds the budget
            }
            let Ok(est) = estimate_valency(
                &fork,
                &self.probes,
                self.samples,
                self.horizon,
                probe_seed.clone().next_u64() ^ 0x5EED,
            ) else {
                continue;
            };
            let kills = candidate.kills().len();
            let score = est.uncertainty();
            // A later candidate must beat the incumbent by a clear margin:
            // with few samples the estimates are noisy, and on a near-tie
            // the earlier (structurally stronger) move should stand.
            let better = match &best {
                None => true,
                Some((bs, _, _)) => score > bs + 0.125,
            };
            if better {
                best = Some((score, kills, candidate));
            }
            // Uncertainty is capped at 1.0, so once the incumbent scores
            // ≥ 0.875 no later candidate can clear the +0.125 margin —
            // skip the remaining forks and estimates outright. Sound
            // because scoring is side-effect-free (`seeder.derive` is
            // non-mutating), so skipped candidates leave no state behind.
            if matches!(&best, Some((bs, _, _)) if *bs >= 1.0 - 0.125) {
                break;
            }
        }
        best.map(|(_, _, iv)| iv).unwrap_or_else(Intervention::none)
    }

    fn name(&self) -> &str {
        "lower-bound"
    }
}

/// Lemma 3.5 operationally: find an input vector whose initial state is
/// *not* univalent, by binary-searching the chain of split inputs
/// `0^n, 10^{n−1}, …, 1^n` for the flip point of the passive-play outcome.
///
/// Adjacent inputs in the chain differ in a single process's input —
/// exactly the chain the paper's proof walks.
///
/// # Errors
///
/// Propagates engine errors from the probing runs.
pub fn find_adversarial_input(
    protocol: &SynRan,
    cfg: &SimConfig,
    samples: usize,
    seed: u64,
) -> Result<Vec<Bit>, SimError> {
    use synran_core::ConsensusProtocol;
    let n = cfg.n();
    let p1_of = |ones: usize, salt: u64| -> Result<f64, SimError> {
        let mut sum = 0.0;
        for s in 0..samples {
            let run_seed = SimRng::new(seed).derive(salt).derive(s as u64).next_u64();
            let mut world = World::new(cfg.clone().seed(run_seed), |pid| {
                protocol.spawn(pid, n, Bit::from(pid.index() < ones))
            })?;
            let report = world.run(&mut Passive)?;
            let first = report.non_faulty().find_map(|pid| report.decision_of(pid));
            if first == Some(Bit::One) {
                sum += 1.0;
            }
        }
        Ok(sum / samples as f64)
    };

    // Validity pins the endpoints: ones = 0 decides 0, ones = n decides 1.
    // Binary-search the smallest `ones` whose passive outcome tips past ½.
    let mut lo = 0usize; // p1 ≈ 0 here
    let mut hi = n; // p1 ≈ 1 here
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if p1_of(mid, mid as u64)? >= 0.5 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok((0..n).map(|i| Bit::from(i < hi)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, ConsensusProtocol};

    #[test]
    fn forces_more_rounds_than_passive() {
        let n = 16;
        let protocol = SynRan::new();
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
        let mut passive_rounds = 0u32;
        let mut forced_rounds = 0u32;
        for seed in 0..4 {
            let cfg = SimConfig::new(n)
                .faults(n - 1)
                .seed(seed)
                .max_rounds(50_000);
            let v1 = check_consensus(&protocol, &inputs, cfg.clone(), &mut Passive).unwrap();
            assert!(v1.is_correct());
            passive_rounds += v1.rounds();
            let mut lb = LowerBoundAdversary::with_params(6, 2, 40, seed);
            let v2 = check_consensus(&protocol, &inputs, cfg, &mut lb).unwrap();
            assert!(v2.is_correct(), "seed {seed}: {:?}", v2.violations());
            forced_rounds += v2.rounds();
        }
        assert!(
            forced_rounds > passive_rounds,
            "lower-bound adversary ({forced_rounds}) should outlast passive ({passive_rounds})"
        );
    }

    #[test]
    fn respects_per_round_cap() {
        let n = 12;
        let protocol = SynRan::new();
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
        let mut lb = LowerBoundAdversary::with_params(2, 2, 30, 5);
        assert_eq!(lb.per_round_cap(), 2);
        let verdict = check_consensus(
            &protocol,
            &inputs,
            SimConfig::new(n).faults(n - 1).seed(5).max_rounds(50_000),
            &mut lb,
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert!(verdict
            .report()
            .metrics()
            .kills_per_round()
            .iter()
            .all(|&(_, k)| k <= 2));
    }

    #[test]
    fn for_system_uses_paper_cap() {
        let lb = LowerBoundAdversary::for_system(100, 0);
        let expected = per_round_kill_budget(100).ceil() as usize + 1;
        assert_eq!(lb.per_round_cap(), expected);
    }

    #[test]
    fn adversarial_input_is_near_the_flip_point() {
        let protocol = SynRan::new();
        let cfg = SimConfig::new(10).max_rounds(5_000);
        let inputs = find_adversarial_input(&protocol, &cfg, 3, 7).unwrap();
        assert_eq!(inputs.len(), 10);
        let ones = inputs.iter().filter(|b| b.is_one()).count();
        // Fault-free SynRan's passive flip point sits near the middle band.
        assert!((2..=8).contains(&ones), "flip at {ones}");
        // The chain property: the returned input is a prefix-split.
        for w in inputs.windows(2) {
            assert!(w[0] >= w[1], "must be ones-then-zeros");
        }
    }

    /// Scores every candidate with no short-circuit — the exhaustive loop
    /// `intervene` ran before the ≥ 0.875 early break landed. The break is
    /// exact (uncertainty is capped at 1.0, the margin is +0.125), so the
    /// two must pick identical interventions.
    fn intervene_exhaustive(
        lb: &LowerBoundAdversary,
        world: &World<SynRanProcess>,
    ) -> Intervention {
        let candidates = lb.candidates(world);
        if candidates.len() == 1 {
            return candidates.into_iter().next().expect("none candidate");
        }
        let mut best: Option<(f64, Intervention)> = None;
        for (i, candidate) in candidates.into_iter().enumerate() {
            let probe_seed = lb
                .seeder
                .derive(world.round().index().into())
                .derive(i as u64);
            let mut fork = world.fork_bounded(probe_seed.clone().next_u64(), lb.horizon);
            if fork.deliver(candidate.clone()).is_err() {
                continue;
            }
            let Ok(est) = estimate_valency(
                &fork,
                &lb.probes,
                lb.samples,
                lb.horizon,
                probe_seed.clone().next_u64() ^ 0x5EED,
            ) else {
                continue;
            };
            let score = est.uncertainty();
            let better = match &best {
                None => true,
                Some((bs, _)) => score > bs + 0.125,
            };
            if better {
                best = Some((score, candidate));
            }
        }
        best.map(|(_, iv)| iv).unwrap_or_else(Intervention::none)
    }

    #[test]
    fn short_circuit_preserves_chosen_interventions() {
        // Regression for the ≥ 0.875 early break: on E3-fixture-style
        // worlds (even-split inputs, paper-scale kill caps, the E3 run
        // seeds), the chosen intervention must match exhaustive scoring
        // at several rounds of depth.
        let n = 16;
        let protocol = SynRan::new();
        for seed in 0..4u64 {
            let mut world = World::new(
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
            )
            .unwrap();
            let mut lb = LowerBoundAdversary::with_params(6, 2, 40, seed);
            for _ in 0..3 {
                if world.finished() {
                    break;
                }
                world.phase_a().unwrap();
                let exhaustive = intervene_exhaustive(&lb, &world);
                let chosen = lb.intervene(&world);
                assert_eq!(chosen, exhaustive, "seed {seed}, round {:?}", world.round());
                world.deliver(chosen).unwrap();
            }
        }
    }

    #[test]
    fn candidate_list_contains_none_and_respects_dedup() {
        let n = 8;
        let protocol = SynRan::new();
        let mut world = World::new(SimConfig::new(n).faults(4).seed(1), |pid| {
            protocol.spawn(pid, n, Bit::from(pid.index() < 4))
        })
        .unwrap();
        world.phase_a().unwrap();
        let lb = LowerBoundAdversary::with_params(4, 1, 10, 1);
        let cands = lb.candidates(&world);
        assert!(cands.contains(&Intervention::none()));
        // All candidates within cap and unique.
        for (i, c) in cands.iter().enumerate() {
            assert!(c.kills().len() <= 4);
            assert!(!cands[..i].contains(c), "duplicate candidate");
        }
    }
}
