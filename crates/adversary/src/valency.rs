//! Probabilistic valency: the classification engine of the lower bound.
//!
//! §3.2 of the paper classifies an execution state `α_k` by the range of
//! probabilities `r(α_k) = { Pr[decide 1 | α_k, b] : b ∈ B }` over the
//! adversary family `B` (those failing at most `4√(n·log n)+1` processes
//! per round):
//!
//! | class | `min r(α_k)` | `max r(α_k)` |
//! |---|---|---|
//! | bivalent    | `< 1/√n − k/n` | `> 1 − 1/√n + k/n` |
//! | 0-valent    | `< 1/√n − k/n` | `≤ 1 − 1/√n + k/n` |
//! | 1-valent    | `≥ 1/√n − k/n` | `> 1 − 1/√n + k/n` |
//! | null-valent | `≥ 1/√n − k/n` | `≤ 1 − 1/√n + k/n` |
//!
//! The paper's adversary is computationally unbounded and knows these
//! quantities exactly. Operationally we *estimate* them: fork the paused
//! world many times, resume each fork under a small family of reference
//! adversaries (probes), and read off the empirical min/max of
//! `Pr[decide 1]`. The estimator is exactly as strong as its probe family —
//! see DESIGN.md's substitution table.

use std::fmt;
use std::sync::Arc;

use synran_core::SynRanProcess;
use synran_sim::parallel::cohort::{self, CohortOutcome};
use synran_sim::{parallel, Adversary, Bit, Passive, Process, SimError, Telemetry, World};

use crate::{Balancer, PreferenceKiller, RandomKiller};

/// A boxed, dynamically-dispatched adversary.
///
/// `Send` so that probe adversaries can be built and driven on the worker
/// threads of the parallel fork-evaluation engine.
pub type BoxedAdversary<P> = Box<dyn Adversary<P> + Send>;

/// A named factory producing fresh probe adversaries per fork seed.
///
/// `Send + Sync` because the factories are shared by reference across the
/// estimator's worker threads. Names are interned `Arc<str>`: estimates
/// carry a refcount bump per probe instead of cloning a `String` on the
/// hottest path.
type ProbeFactory<P> = (
    Arc<str>,
    Box<dyn Fn(u64) -> BoxedAdversary<P> + Send + Sync>,
);

/// A family of reference adversaries used as probes for `min`/`max`
/// `Pr[decide 1]`.
///
/// Each probe is a named factory taking a seed, so stateful adversaries
/// start fresh per fork.
pub struct ProbeSet<P: Process> {
    factories: Vec<ProbeFactory<P>>,
}

impl<P: Process> fmt::Debug for ProbeSet<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeSet")
            .field(
                "probes",
                &self
                    .factories
                    .iter()
                    .map(|(name, _)| &**name)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<P: Process> ProbeSet<P> {
    /// An empty probe set to build on.
    #[must_use]
    pub fn new() -> ProbeSet<P> {
        ProbeSet {
            factories: Vec::new(),
        }
    }

    /// Adds a named probe. The name is interned once (`Arc<str>`); every
    /// estimate built from this set shares it by refcount.
    #[must_use]
    pub fn with_probe(
        mut self,
        name: impl Into<Arc<str>>,
        factory: impl Fn(u64) -> BoxedAdversary<P> + Send + Sync + 'static,
    ) -> ProbeSet<P> {
        self.factories.push((name.into(), Box::new(factory)));
        self
    }

    /// Number of probes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` if no probe was added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Protocol-agnostic probes: passive continuation plus a random killer
    /// spending `per_round` kills per round.
    #[must_use]
    pub fn generic(per_round: usize) -> ProbeSet<P> {
        ProbeSet::new()
            .with_probe("passive", |_| Box::new(Passive))
            .with_probe("random", move |seed| {
                Box::new(RandomKiller::new(per_round, seed))
            })
    }
}

impl<P: Process> Default for ProbeSet<P> {
    fn default() -> ProbeSet<P> {
        ProbeSet::new()
    }
}

impl ProbeSet<SynRanProcess> {
    /// The standard probe family for SynRan-family protocols: passive,
    /// kill-the-ones (drives `min Pr[1]`), kill-the-zeros (drives
    /// `max Pr[1]`), and the coin-band balancer (keeps both open).
    #[must_use]
    pub fn synran(per_round: usize) -> ProbeSet<SynRanProcess> {
        ProbeSet::new()
            .with_probe("passive", |_| Box::new(Passive))
            .with_probe("kill-ones", move |_| {
                Box::new(PreferenceKiller::new(Bit::One, per_round))
            })
            .with_probe("kill-zeros", move |_| {
                Box::new(PreferenceKiller::new(Bit::Zero, per_round))
            })
            .with_probe("balancer", move |_| Box::new(Balancer::with_cap(per_round)))
    }
}

/// The empirical estimate of `min`/`max Pr[decide 1]` from a state.
#[derive(Debug, Clone, PartialEq)]
pub struct ValencyEstimate {
    min_p1: f64,
    max_p1: f64,
    per_probe: Vec<(Arc<str>, f64)>,
    samples_per_probe: usize,
    undecided: usize,
}

impl ValencyEstimate {
    /// The smallest `Pr[decide 1]` over the probe family — the estimate of
    /// `min r(α)`.
    #[must_use]
    pub fn min_p1(&self) -> f64 {
        self.min_p1
    }

    /// The largest `Pr[decide 1]` over the probe family — the estimate of
    /// `max r(α)`.
    #[must_use]
    pub fn max_p1(&self) -> f64 {
        self.max_p1
    }

    /// Per-probe `Pr[decide 1]`, in probe order. Names are shared with
    /// the [`ProbeSet`] the estimate was built from (interned `Arc<str>`).
    #[must_use]
    pub fn per_probe(&self) -> &[(Arc<str>, f64)] {
        &self.per_probe
    }

    /// Forks per probe.
    #[must_use]
    pub fn samples_per_probe(&self) -> usize {
        self.samples_per_probe
    }

    /// Forks that did not decide within the horizon (scored as ½).
    #[must_use]
    pub fn undecided(&self) -> usize {
        self.undecided
    }

    /// How far the state is from univalence: `min(1 − min_p1, max_p1)`.
    ///
    /// Near 1 for bivalent states (either decision still reachable), near
    /// 0 for univalent ones. The lower-bound adversary maximises this.
    #[must_use]
    pub fn uncertainty(&self) -> f64 {
        (1.0 - self.min_p1).min(self.max_p1)
    }
}

/// The paper's four-way state classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Valence {
    /// Both decisions reachable with substantial probability.
    Bivalent,
    /// Only 0 remains substantially reachable.
    ZeroValent,
    /// Only 1 remains substantially reachable.
    OneValent,
    /// Neither decision can be forced nor excluded.
    NullValent,
}

impl Valence {
    /// `true` for 0-valent or 1-valent.
    #[must_use]
    pub fn is_univalent(self) -> bool {
        matches!(self, Valence::ZeroValent | Valence::OneValent)
    }
}

impl fmt::Display for Valence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Valence::Bivalent => "bivalent",
            Valence::ZeroValent => "0-valent",
            Valence::OneValent => "1-valent",
            Valence::NullValent => "null-valent",
        };
        f.write_str(s)
    }
}

/// Classifies an estimate with the paper's §3.2 thresholds for system size
/// `n` at round `k`: `lo = 1/√n − k/n`, `hi = 1 − 1/√n + k/n`.
#[must_use]
pub fn classify(estimate: &ValencyEstimate, n: usize, k: u32) -> Valence {
    let nf = n as f64;
    let lo = 1.0 / nf.sqrt() - f64::from(k) / nf;
    let hi = 1.0 - 1.0 / nf.sqrt() + f64::from(k) / nf;
    classify_with(estimate, lo, hi)
}

/// Classifies with explicit thresholds (exposed for experiments that study
/// the thresholds themselves).
#[must_use]
pub fn classify_with(estimate: &ValencyEstimate, lo: f64, hi: f64) -> Valence {
    match (estimate.min_p1 < lo, estimate.max_p1 > hi) {
        (true, true) => Valence::Bivalent,
        (true, false) => Valence::ZeroValent,
        (false, true) => Valence::OneValent,
        (false, false) => Valence::NullValent,
    }
}

/// Estimates `min`/`max Pr[decide 1]` from the current state of `world` by
/// forking it `samples` times per probe and resuming each fork (bounded to
/// `horizon` further rounds) under that probe.
///
/// Forks that exceed the horizon count as undecided and contribute ½ —
/// they genuinely are "still open" states.
///
/// The `(probe, sample)` grid is evaluated on
/// [`world.config().threads_value()`](synran_sim::SimConfig::threads)
/// worker threads through the **lockstep cohort engine**
/// ([`synran_sim::parallel::cohort`]): one shared snapshot, one pass per
/// round across all forks, early retirement of decided/horizon-hit worlds,
/// and one scratch arena per lane. Fork seeds are derived from the
/// `(probe, sample)` index, never from execution order, so the estimate is
/// **bit-for-bit identical for every thread count** (including the serial
/// `threads = 1` path) *and* bit-identical to the per-fork reference path
/// ([`estimate_valency_fork`]) — pinned by the cohort differential suite.
///
/// # Errors
///
/// Propagates engine errors other than the horizon being reached; with
/// several failing forks, the error of the lowest `(probe, sample)` index
/// is returned regardless of thread count.
///
/// # Panics
///
/// Panics if `probes` is empty or `samples` is zero.
pub fn estimate_valency<P>(
    world: &World<P>,
    probes: &ProbeSet<P>,
    samples: usize,
    horizon: u32,
    seed: u64,
) -> Result<ValencyEstimate, SimError>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
{
    assert!(!probes.is_empty(), "need at least one probe");
    assert!(samples > 0, "need at least one sample per probe");
    // Telemetry is observe-only: the span and counters below never touch
    // the fork seeds or the fold, so the estimate is identical with any
    // handle (or none) attached to `world`.
    let telemetry = world.telemetry();
    let _span = telemetry.span("valency.estimate");
    // One work unit per (probe, sample) pair, in the serial nested-loop
    // order. Seeds depend only on the pair's indices.
    let fork_seeds = cohort::derive_seed_grid(seed, probes.len(), samples);
    let outcomes = cohort::cohort_eval(
        world,
        world.config().threads_value(),
        &fork_seeds,
        horizon,
        |unit, fork_seed| (probes.factories[unit / samples].1)(fork_seed),
    )?;
    let scored: Vec<(f64, bool)> = outcomes
        .iter()
        .map(|outcome| match outcome {
            CohortOutcome::Finished(Some(Bit::One)) => (1.0, false),
            CohortOutcome::Finished(Some(Bit::Zero)) => (0.0, false),
            CohortOutcome::Finished(None) | CohortOutcome::HorizonHit => (0.5, true),
        })
        .collect();
    Ok(reduce_outcomes(probes, samples, &scored, telemetry))
}

/// The per-fork reference estimator: drives every `(probe, sample)` fork
/// to completion independently through
/// [`synran_sim::parallel::fork_eval`], exactly as [`estimate_valency`]
/// did before the cohort engine landed.
///
/// Kept callable as the **differential oracle**: the cohort path must
/// produce byte-identical estimates to this one at every thread count
/// (`crates/adversary/tests/cohort_equivalence.rs`, the tier-1 cohort
/// smoke step, and `bench_valency` all pin it) — and it is the baseline
/// the cohort's speedup is measured against.
///
/// # Errors
///
/// Same contract as [`estimate_valency`].
///
/// # Panics
///
/// Panics if `probes` is empty or `samples` is zero.
pub fn estimate_valency_fork<P>(
    world: &World<P>,
    probes: &ProbeSet<P>,
    samples: usize,
    horizon: u32,
    seed: u64,
) -> Result<ValencyEstimate, SimError>
where
    P: Process + Clone + Send + Sync,
    P::Msg: Send + Sync,
{
    assert!(!probes.is_empty(), "need at least one probe");
    assert!(samples > 0, "need at least one sample per probe");
    let telemetry = world.telemetry();
    let _span = telemetry.span("valency.estimate");
    let fork_seeds = cohort::derive_seed_grid(seed, probes.len(), samples);
    let outcomes = parallel::fork_eval(
        world,
        world.config().threads_value(),
        &fork_seeds,
        horizon,
        |unit, mut fork| {
            let factory = &probes.factories[unit / samples].1;
            let mut adversary = factory(fork_seeds[unit]);
            match fork.drive(&mut adversary) {
                Ok(()) => {
                    let report = fork.into_report();
                    Ok(match first_decision(&report) {
                        Some(Bit::One) => (1.0, false),
                        Some(Bit::Zero) => (0.0, false),
                        None => (0.5, true),
                    })
                }
                Err(SimError::MaxRoundsExceeded { .. }) => {
                    // Horizon hit: the fork is abandoned, but its warmed
                    // scratch goes back to the snapshot pool for the next
                    // sample to re-use.
                    fork.retire();
                    Ok((0.5, true))
                }
                Err(other) => Err(other),
            }
        },
    )?;
    Ok(reduce_outcomes(probes, samples, &outcomes, telemetry))
}

/// Folds per-unit `(score, undecided)` outcomes into a [`ValencyEstimate`],
/// shared by the cohort and per-fork engines so the two paths cannot drift.
///
/// Reduces in unit order: float addition is not associative, so the fold
/// must not depend on completion order. Probe-outcome counters are also
/// tallied here (not in the workers) so they accumulate deterministically.
fn reduce_outcomes<P: Process>(
    probes: &ProbeSet<P>,
    samples: usize,
    outcomes: &[(f64, bool)],
    telemetry: &Telemetry,
) -> ValencyEstimate {
    let mut per_probe = Vec::with_capacity(probes.len());
    let mut undecided_total = 0usize;
    let (mut ones, mut zeros) = (0u64, 0u64);
    for (idx, (name, _)) in probes.factories.iter().enumerate() {
        let mut sum = 0.0;
        for &(score, undecided) in &outcomes[idx * samples..(idx + 1) * samples] {
            sum += score;
            undecided_total += usize::from(undecided);
            if !undecided {
                if score == 1.0 {
                    ones += 1;
                } else {
                    zeros += 1;
                }
            }
        }
        per_probe.push((Arc::clone(name), sum / samples as f64));
    }
    telemetry.incr("valency.estimates", 1);
    telemetry.incr("valency.probe.decided_one", ones);
    telemetry.incr("valency.probe.decided_zero", zeros);
    telemetry.incr("valency.probe.undecided", undecided_total as u64);
    let min_p1 = per_probe
        .iter()
        .map(|&(_, p)| p)
        .fold(f64::INFINITY, f64::min);
    let max_p1 = per_probe
        .iter()
        .map(|&(_, p)| p)
        .fold(f64::NEG_INFINITY, f64::max);
    ValencyEstimate {
        min_p1,
        max_p1,
        per_probe,
        samples_per_probe: samples,
        undecided: undecided_total,
    }
}

fn first_decision(report: &synran_sim::RunReport) -> Option<Bit> {
    report.non_faulty().find_map(|pid| report.decision_of(pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{ConsensusProtocol, SynRan};
    use synran_sim::{Bit, SimConfig};

    fn world_with_inputs(n: usize, t: usize, ones: usize, seed: u64) -> World<SynRanProcess> {
        let protocol = SynRan::new();
        World::new(
            SimConfig::new(n).faults(t).seed(seed).max_rounds(5_000),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < ones)),
        )
        .unwrap()
    }

    #[test]
    fn unanimous_one_state_estimates_one_valent() {
        let world = world_with_inputs(12, 4, 12, 1);
        let probes = ProbeSet::synran(3);
        let est = estimate_valency(&world, &probes, 6, 50, 42).unwrap();
        // Validity pins the decision to 1 whatever the (fail-stop) probe.
        assert_eq!(est.min_p1(), 1.0, "{est:?}");
        assert_eq!(est.max_p1(), 1.0);
        assert!(est.uncertainty() < 0.01);
        assert_eq!(classify_with(&est, 0.2, 0.8), Valence::OneValent);
    }

    #[test]
    fn unanimous_zero_state_estimates_zero_valent() {
        let world = world_with_inputs(12, 4, 0, 2);
        let probes = ProbeSet::synran(3);
        let est = estimate_valency(&world, &probes, 6, 50, 43).unwrap();
        assert_eq!(est.max_p1(), 0.0, "{est:?}");
        assert_eq!(classify_with(&est, 0.2, 0.8), Valence::ZeroValent);
    }

    #[test]
    fn split_state_is_open() {
        // Probes strong enough to clear one whole side per round (cap = 8)
        // make both outcomes reachable from an even 8/8 split.
        let world = world_with_inputs(16, 8, 8, 3);
        let probes = ProbeSet::synran(8);
        let est = estimate_valency(&world, &probes, 10, 100, 44).unwrap();
        // With kill-ones and kill-zeros probes available, both outcomes
        // must be reachable from an even split.
        assert!(est.min_p1() < 0.5, "min {}", est.min_p1());
        assert!(est.max_p1() > 0.5, "max {}", est.max_p1());
        assert!(est.uncertainty() > 0.3, "{est:?}");
        assert_eq!(classify_with(&est, 0.45, 0.55), Valence::Bivalent);
    }

    #[test]
    fn classification_table_is_exhaustive() {
        let mk = |min_p1: f64, max_p1: f64| ValencyEstimate {
            min_p1,
            max_p1,
            per_probe: vec![],
            samples_per_probe: 1,
            undecided: 0,
        };
        assert_eq!(classify_with(&mk(0.0, 1.0), 0.1, 0.9), Valence::Bivalent);
        assert_eq!(classify_with(&mk(0.0, 0.5), 0.1, 0.9), Valence::ZeroValent);
        assert_eq!(classify_with(&mk(0.5, 1.0), 0.1, 0.9), Valence::OneValent);
        assert_eq!(classify_with(&mk(0.5, 0.5), 0.1, 0.9), Valence::NullValent);
        assert!(Valence::ZeroValent.is_univalent());
        assert!(Valence::OneValent.is_univalent());
        assert!(!Valence::Bivalent.is_univalent());
        assert!(!Valence::NullValent.is_univalent());
    }

    #[test]
    fn paper_thresholds_shrink_with_round() {
        let mk = |min_p1: f64, max_p1: f64| ValencyEstimate {
            min_p1,
            max_p1,
            per_probe: vec![],
            samples_per_probe: 1,
            undecided: 0,
        };
        // At round k = 0 with n = 100: lo = 0.1; a min of 0.05 is "0 still
        // reachable". By round k = 10, lo = 0.1 − 0.1 = 0 and nothing is
        // below it: the classification tightens exactly as in §3.2.
        let est = mk(0.05, 0.5);
        assert_eq!(classify(&est, 100, 0), Valence::ZeroValent);
        assert_eq!(classify(&est, 100, 10), Valence::NullValent);
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let world = world_with_inputs(10, 5, 5, 7);
        let probes = ProbeSet::synran(2);
        let a = estimate_valency(&world, &probes, 5, 60, 9).unwrap();
        let b = estimate_valency(&world, &probes, 5, 60, 9).unwrap();
        assert_eq!(a, b);
        // The estimate is also invariant under the worker-thread count:
        // the same world evaluated with 1, 2, and 8 threads must agree
        // bit for bit (f64 equality via PartialEq).
        for threads in [1usize, 2, 8] {
            let threaded = World::new(
                SimConfig::new(10)
                    .faults(5)
                    .seed(7)
                    .max_rounds(5_000)
                    .threads(threads),
                |pid| SynRan::new().spawn(pid, 10, Bit::from(pid.index() < 5)),
            )
            .unwrap();
            let est = estimate_valency(&threaded, &probes, 5, 60, 9).unwrap();
            assert_eq!(est, a, "threads = {threads}");
        }
    }

    #[test]
    fn estimate_shares_interned_probe_names() {
        // Probe names are interned as `Arc<str>`: the estimate's per-probe
        // rows must point at the same allocations as the `ProbeSet`, not
        // fresh string copies (the old hot-path `String` clone).
        let world = world_with_inputs(6, 2, 3, 11);
        let probes = ProbeSet::synran(2);
        let est = estimate_valency(&world, &probes, 2, 40, 3).unwrap();
        assert_eq!(est.per_probe().len(), probes.len());
        for ((est_name, _), (set_name, _)) in est.per_probe().iter().zip(&probes.factories) {
            assert!(
                Arc::ptr_eq(est_name, set_name),
                "per_probe name {est_name:?} should share the ProbeSet allocation"
            );
        }
    }

    #[test]
    fn cohort_and_fork_estimators_agree() {
        // In-crate differential check (the full suite lives in
        // tests/cohort_equivalence.rs): cohort vs per-fork reference,
        // byte-identical via PartialEq on every f64.
        let world = world_with_inputs(10, 5, 5, 7);
        let probes = ProbeSet::synran(2);
        let cohort = estimate_valency(&world, &probes, 4, 50, 13).unwrap();
        let fork = estimate_valency_fork(&world, &probes, 4, 50, 13).unwrap();
        assert_eq!(cohort, fork);
    }

    #[test]
    fn probe_set_builders() {
        let generic: ProbeSet<SynRanProcess> = ProbeSet::generic(2);
        assert_eq!(generic.len(), 2);
        let syn = ProbeSet::synran(2);
        assert_eq!(syn.len(), 4);
        assert!(!syn.is_empty());
        assert!(ProbeSet::<SynRanProcess>::new().is_empty());
        let dbg = format!("{syn:?}");
        assert!(
            dbg.contains("kill-ones") && dbg.contains("balancer"),
            "{dbg}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn empty_probe_set_rejected() {
        let world = world_with_inputs(4, 0, 2, 0);
        let _ = estimate_valency(&world, &ProbeSet::new(), 1, 10, 0);
    }
}
