//! Exact valency for tiny systems: the ground truth the Monte-Carlo
//! estimator is validated against.
//!
//! The paper's adversary is computationally unbounded: it *knows*
//! `min/max Pr[decide 1 | α, b]` over its strategy space. For tiny systems
//! this crate computes those numbers **exactly**, by exhaustive game-tree
//! evaluation over the real engine:
//!
//! * **adversary nodes** — one per round, enumerating every intervention
//!   in a restricted-but-complete-for-small-t space (do nothing, or kill
//!   any single alive process with full or zero delivery); the minimising
//!   (resp. maximising) branch is taken for `min_p1` (resp. `max_p1`);
//! * **coin nodes** — [`SynRanProcess::predict`] identifies exactly which
//!   processes flip a coin this round; every coin vector is realised by
//!   *searching for a fork seed* whose per-(process, round) receive
//!   streams produce it (possible because the engine's randomness is a
//!   pure function of `seed × process × round × phase`), and the children
//!   are averaged with equal weight;
//! * **horizon leaves** — an undecided execution at the depth limit
//!   contributes the trivially correct interval `[0, 1]`, so the result
//!   is a *sound enclosure*: the true `min_p1` lies in
//!   `[min_p1, min_p1 + slack]` and symmetrically for `max_p1`.
//!
//! Branching is exponential (interventions × 2^flips per round), so this
//! is strictly a validation tool: n ≤ 4 and small horizons. The payoff is
//! the test in this module and `tests/` asserting the Monte-Carlo
//! [`estimate_valency`](crate::estimate_valency) range always sits inside
//! the exact enclosure.

use std::fmt;

use synran_core::{PredictedStep, StageKind, SynRanMsg, SynRanProcess};
use synran_sim::{
    Bit, DeliveryFilter, Intervention, ProcessId, SendPattern, SimError, SimRng, StreamPhase, World,
};

/// Errors from exact evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExactError {
    /// The engine reported an error while replaying a branch.
    Engine(SimError),
    /// The tree exceeded the configured node budget.
    TooLarge {
        /// The configured limit.
        max_nodes: u64,
    },
    /// No seed realising a required coin vector was found within the
    /// search limit (astronomically unlikely below ~20 simultaneous
    /// flips; indicates a mis-configured flip set otherwise).
    SeedSearchExhausted {
        /// Number of simultaneous coin flips requested.
        flips: usize,
    },
    /// A process used a send pattern the evaluator does not model.
    UnsupportedSend,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Engine(e) => write!(f, "engine error during exact evaluation: {e}"),
            ExactError::TooLarge { max_nodes } => {
                write!(f, "exact game tree exceeded {max_nodes} nodes")
            }
            ExactError::SeedSearchExhausted { flips } => {
                write!(f, "no seed found realising a {flips}-coin vector")
            }
            ExactError::UnsupportedSend => {
                write!(f, "exact evaluation supports broadcast sends only")
            }
        }
    }
}

impl std::error::Error for ExactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExactError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ExactError {
    fn from(e: SimError) -> ExactError {
        ExactError::Engine(e)
    }
}

/// The exact enclosure of `min/max Pr[decide 1]` from a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactRange {
    min_p1: f64,
    max_p1: f64,
    nodes: u64,
    horizon_leaves: u64,
}

impl ExactRange {
    /// Exact lower end: the best the 0-pushing adversary can guarantee.
    /// (A horizon leaf contributes 0 here, so this is a true lower bound
    /// on `min Pr[1]`.)
    #[must_use]
    pub fn min_p1(&self) -> f64 {
        self.min_p1
    }

    /// Exact upper end: the best the 1-pushing adversary can guarantee.
    /// (A horizon leaf contributes 1 here, a true upper bound.)
    #[must_use]
    pub fn max_p1(&self) -> f64 {
        self.max_p1
    }

    /// Game-tree nodes evaluated.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Leaves that hit the horizon undecided (0 ⇒ the enclosure is tight).
    #[must_use]
    pub fn horizon_leaves(&self) -> u64 {
        self.horizon_leaves
    }
}

/// Configuration of the exhaustive evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactEvaluator {
    horizon: u32,
    max_nodes: u64,
    seed_search_limit: u64,
}

impl ExactEvaluator {
    /// Creates an evaluator exploring `horizon` rounds deep.
    #[must_use]
    pub fn new(horizon: u32) -> ExactEvaluator {
        ExactEvaluator {
            horizon,
            max_nodes: 5_000_000,
            seed_search_limit: 1 << 22,
        }
    }

    /// Overrides the node budget.
    #[must_use]
    pub fn max_nodes(mut self, max_nodes: u64) -> ExactEvaluator {
        self.max_nodes = max_nodes;
        self
    }

    /// Computes the exact enclosure from `world`, which must sit at a
    /// round boundary (Phase A not yet run).
    ///
    /// # Errors
    ///
    /// [`ExactError::TooLarge`] if the tree outgrows the node budget;
    /// [`ExactError::Engine`] on engine violations; see [`ExactError`].
    pub fn evaluate(&self, world: &World<SynRanProcess>) -> Result<ExactRange, ExactError> {
        let mut nodes = 0u64;
        let mut horizon_leaves = 0u64;
        let (min_p1, max_p1) = self.eval(world, self.horizon, &mut nodes, &mut horizon_leaves)?;
        Ok(ExactRange {
            min_p1,
            max_p1,
            nodes,
            horizon_leaves,
        })
    }

    fn eval(
        &self,
        world: &World<SynRanProcess>,
        depth: u32,
        nodes: &mut u64,
        horizon_leaves: &mut u64,
    ) -> Result<(f64, f64), ExactError> {
        *nodes += 1;
        if *nodes > self.max_nodes {
            return Err(ExactError::TooLarge {
                max_nodes: self.max_nodes,
            });
        }
        if world.finished() {
            use synran_sim::Process as _;
            let d = world
                .processes()
                .find_map(|(_, p, status)| (!status.is_failed()).then(|| p.decision()).flatten())
                .map_or(0.5, |b| f64::from(b.as_u8()));
            return Ok((d, d));
        }
        if depth == 0 {
            *horizon_leaves += 1;
            return Ok((0.0, 1.0));
        }

        let mut staged = world.clone();
        staged.phase_a()?;

        let mut best_min = f64::INFINITY;
        let mut best_max = f64::NEG_INFINITY;
        for intervention in enumerate_interventions(&staged) {
            let flips = flip_set(&staged, &intervention)?;
            let k = flips.len();
            let mut sum_min = 0.0;
            let mut sum_max = 0.0;
            for vector in 0u64..(1 << k) {
                let seed = self.find_seed(&flips, vector, staged.round())?;
                let mut child = staged.fork(seed);
                child.deliver(intervention.clone())?;
                let (lo, hi) = self.eval(&child, depth - 1, nodes, horizon_leaves)?;
                sum_min += lo;
                sum_max += hi;
            }
            let scale = 1.0 / (1u64 << k) as f64;
            best_min = best_min.min(sum_min * scale);
            best_max = best_max.max(sum_max * scale);
        }
        Ok((best_min, best_max))
    }

    /// Finds a fork seed whose receive-phase coins at `round` equal
    /// `vector` on the flipping processes.
    fn find_seed(
        &self,
        flips: &[ProcessId],
        vector: u64,
        round: synran_sim::Round,
    ) -> Result<u64, ExactError> {
        'seeds: for seed in 0..self.seed_search_limit {
            for (i, &pid) in flips.iter().enumerate() {
                let want = Bit::from((vector >> i) & 1 == 1);
                let got = SimRng::stream(seed, pid, round, StreamPhase::Receive).bit();
                if got != want {
                    continue 'seeds;
                }
            }
            return Ok(seed);
        }
        Err(ExactError::SeedSearchExhausted { flips: flips.len() })
    }
}

/// The restricted adversary space: do nothing, or fail one alive process
/// with all-or-nothing delivery (keeping at least one process alive and
/// within the global budget).
fn enumerate_interventions(staged: &World<SynRanProcess>) -> Vec<Intervention> {
    let mut out = vec![Intervention::none()];
    if staged.budget().remaining() == 0 || staged.alive_count() <= 1 {
        return out;
    }
    for victim in staged.alive_ids() {
        out.push(Intervention::new().kill(victim, DeliveryFilter::All));
        out.push(Intervention::new().kill(victim, DeliveryFilter::None));
    }
    out
}

/// The set of alive processes that will flip a coin when `intervention`
/// is applied to the staged (post-Phase-A) world.
fn flip_set(
    staged: &World<SynRanProcess>,
    intervention: &Intervention,
) -> Result<Vec<ProcessId>, ExactError> {
    let n = staged.n();
    let killed = |pid: ProcessId| {
        intervention
            .kills()
            .iter()
            .find(|k| k.victim == pid)
            .map(|k| &k.delivered)
    };
    let mut flips = Vec::new();
    for receiver in staged.alive_ids() {
        if killed(receiver).is_some() {
            continue; // dies this round; receives nothing
        }
        let proc = staged.process(receiver);
        if proc.stage() != StageKind::Probabilistic {
            continue; // delay and flooding rounds flip no coins
        }
        // Count what this receiver will see.
        let (mut n_r, mut o_r, mut z_r) = (0usize, 0usize, 0usize);
        for sender in ProcessId::all(n) {
            let Some(pattern) = staged.outbox(sender) else {
                continue;
            };
            let delivered = match killed(sender) {
                Some(filter) => filter.allows(receiver),
                None => true,
            };
            if !delivered {
                continue;
            }
            let msg = match pattern {
                SendPattern::Broadcast(m) => m,
                // SynRan broadcasts exclusively; anything else means this
                // evaluator is being used with a foreign process type.
                _ => return Err(ExactError::UnsupportedSend),
            };
            n_r += 1;
            match msg {
                SynRanMsg::Pref(Bit::One) => o_r += 1,
                SynRanMsg::Pref(Bit::Zero) => z_r += 1,
                SynRanMsg::Known(_) => {}
            }
        }
        if proc.predict(n_r, o_r, z_r) == Some(PredictedStep::FlipCoin) {
            flips.push(receiver);
        }
    }
    Ok(flips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_valency, ProbeSet};
    use synran_core::{ConsensusProtocol, SynRan};
    use synran_sim::SimConfig;

    fn tiny_world(n: usize, t: usize, ones: usize, seed: u64) -> World<SynRanProcess> {
        let protocol = SynRan::new();
        World::new(
            SimConfig::new(n).faults(t).seed(seed).max_rounds(10_000),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < ones)),
        )
        .unwrap()
    }

    #[test]
    fn unanimous_inputs_are_exactly_univalent() {
        let eval = ExactEvaluator::new(6);
        let all_ones = eval.evaluate(&tiny_world(3, 1, 3, 1)).unwrap();
        assert_eq!(
            (all_ones.min_p1(), all_ones.max_p1()),
            (1.0, 1.0),
            "{all_ones:?}"
        );
        assert_eq!(all_ones.horizon_leaves(), 0, "tree fully resolved");
        let all_zeros = eval.evaluate(&tiny_world(3, 1, 0, 2)).unwrap();
        assert_eq!((all_zeros.min_p1(), all_zeros.max_p1()), (0.0, 0.0));
    }

    #[test]
    fn contested_input_is_exactly_bivalent() {
        // [1, 1, 0] with one kill available: killing the zero-holder makes
        // everyone see only 1s (→ decide 1); killing a one-holder makes
        // survivors see O = 1 of base 3 (10 < 12 → decide 0).
        let eval = ExactEvaluator::new(6);
        let range = eval.evaluate(&tiny_world(3, 1, 2, 3)).unwrap();
        assert!(range.min_p1() < 0.25, "adversary can push to 0: {range:?}");
        assert!(range.max_p1() > 0.75, "adversary can push to 1: {range:?}");
    }

    #[test]
    fn no_budget_collapses_to_passive_probability() {
        // With t = 0 the adversary space is {none}: min = max = the
        // passive probability of deciding 1.
        let eval = ExactEvaluator::new(8);
        let range = eval.evaluate(&tiny_world(3, 0, 2, 4)).unwrap();
        assert!(
            (range.max_p1() - range.min_p1()).abs() < 1e-12,
            "no adversary choice ⇒ a single probability: {range:?}"
        );
        // [1,1,0] fault-free: everyone sees O=2 of 3 → 20 !> 18 is false…
        // 20 > 18 → all propose 1 → decide 1. Exactly 1.
        assert_eq!(range.min_p1(), 1.0, "{range:?}");
    }

    #[test]
    fn monte_carlo_estimate_lies_inside_the_exact_enclosure() {
        // The headline validation: the probe-family estimator can never
        // claim more adversary power than the exact adversary space...
        let eval = ExactEvaluator::new(6);
        for (n, t, ones, seed) in [(3usize, 1usize, 2usize, 5u64), (3, 1, 1, 6), (4, 1, 2, 7)] {
            let world = tiny_world(n, t, ones, seed);
            let exact = eval.evaluate(&world).unwrap();
            // Estimator restricted to single-kill probes for a fair
            // comparison with the exact adversary space.
            let probes = ProbeSet::synran(1);
            let est = estimate_valency(&world, &probes, 40, 40, seed ^ 0xE57).unwrap();
            let slack = 0.17; // sampling noise at 40 samples/probe
            assert!(
                est.min_p1() >= exact.min_p1() - slack,
                "n={n} ones={ones}: MC min {} below exact min {}",
                est.min_p1(),
                exact.min_p1()
            );
            assert!(
                est.max_p1() <= exact.max_p1() + slack,
                "n={n} ones={ones}: MC max {} above exact max {}",
                est.max_p1(),
                exact.max_p1()
            );
        }
    }

    #[test]
    fn horizon_zero_gives_trivial_interval() {
        let eval = ExactEvaluator::new(0);
        let range = eval.evaluate(&tiny_world(3, 1, 2, 8)).unwrap();
        assert_eq!((range.min_p1(), range.max_p1()), (0.0, 1.0));
        assert_eq!(range.horizon_leaves(), 1);
        assert_eq!(range.nodes(), 1);
    }

    #[test]
    fn node_budget_is_enforced() {
        let eval = ExactEvaluator::new(6).max_nodes(10);
        let err = eval.evaluate(&tiny_world(4, 2, 2, 9)).unwrap_err();
        assert_eq!(err, ExactError::TooLarge { max_nodes: 10 });
        assert!(err.to_string().contains("10 nodes"));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = ExactEvaluator::new(5);
        let a = eval.evaluate(&tiny_world(3, 1, 2, 10)).unwrap();
        let b = eval.evaluate(&tiny_world(3, 1, 2, 10)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_search_realises_all_vectors() {
        let eval = ExactEvaluator::new(1);
        let flips: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
        let round = synran_sim::Round::new(3);
        for vector in 0u64..16 {
            let seed = eval.find_seed(&flips, vector, round).unwrap();
            for (i, &pid) in flips.iter().enumerate() {
                let got = SimRng::stream(seed, pid, round, StreamPhase::Receive).bit();
                assert_eq!(got, Bit::from((vector >> i) & 1 == 1));
            }
        }
    }
}
