//! The stalling attack on SynRan: keep the vote in the coin band.
//!
//! This adversary realises the cost accounting of the paper's Lemma 4.6 /
//! Theorem 2 from the attacker's side. SynRan processes propose by
//! comparing the count of 1-messages `O^r` against the *previous* round's
//! message count `N^{r−1}`:
//!
//! * `O > 6·N/10` — everyone drifts to 1;
//! * `O < 5·N/10` — everyone drifts to 0;
//! * in between (the **coin band**) — everyone flips a fair coin, and the
//!   execution stays undecided.
//!
//! Being fail-stop, the adversary can only *remove* 1-votes (kill their
//! senders before delivery). So each round it:
//!
//! 1. **Trims**: if `O` is above the band, kills just enough 1-preferrers
//!    to land inside — typical cost `Θ(√p)` per round, the binomial
//!    fluctuation of `p` coin flips;
//! 2. **Splits**: if `O` fell *below* the band (a 0-heavy coin round), the
//!    only rescue is to kill **every** 0-preferrer and deliver their dying
//!    messages to only half the survivors: that half still sees zeros and
//!    proposes 0, the other half sees none and proposes 1 (the one-sided
//!    rule `Z = 0 → 1`), restoring the split — cost `≈ p/2`, the expensive
//!    branch Lemma 4.6 charges;
//! 3. gives up (lets the protocol converge) when the budget or the
//!    per-round cap cannot pay.
//!
//! Against the **symmetric** variant the split move is worthless (with no
//! `Z = 0 → 1` rule the starved half proposes 0 anyway); the adversary
//! detects the variant — it has full information — and saves its budget.

use synran_core::{CoinRule, StageKind, SynRanProcess};
use synran_sim::{Adversary, Bit, BitPlane, DeliveryFilter, Intervention, ProcessId, World};

/// The coin-band stalling adversary for SynRan-family protocols.
///
/// # Examples
///
/// ```
/// use synran_adversary::Balancer;
/// use synran_core::{check_consensus, SynRan};
/// use synran_sim::{Bit, SimConfig};
///
/// let n = 20;
/// let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
/// let verdict = check_consensus(
///     &SynRan::new(),
///     &inputs,
///     SimConfig::new(n).faults(n / 2).seed(3).max_rounds(10_000),
///     &mut Balancer::unbounded(),
/// )?;
/// // Safety survives the strongest stalling attack; only latency suffers.
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Balancer {
    per_round_cap: Option<usize>,
}

impl Balancer {
    /// A balancer limited to `cap` kills per round (the paper's lower
    /// bound budgets `4√(n·log n) + 1`).
    #[must_use]
    pub fn with_cap(cap: usize) -> Balancer {
        Balancer {
            per_round_cap: Some(cap),
        }
    }

    /// A balancer limited only by the engine-enforced total budget.
    #[must_use]
    pub fn unbounded() -> Balancer {
        Balancer {
            per_round_cap: None,
        }
    }

    fn cap(&self, world: &World<SynRanProcess>) -> usize {
        let hard = world
            .budget()
            .remaining()
            .min(world.alive_count().saturating_sub(1));
        match self.per_round_cap {
            Some(c) => c.min(hard),
            None => hard,
        }
    }
}

/// A snapshot of the probabilistic-stage vote, as the adversary sees it
/// between phases. Preferences are kept as bit-plane masks over process
/// indices so the kill moves below are mask algebra plus set-bit walks
/// rather than `Vec` scans.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VoteView {
    ones: BitPlane,
    zeros: BitPlane,
    /// The coin band `[lo, hi]` of admissible 1-counts, intersected over
    /// all alive receivers' bases `N^{r−1}`.
    lo: usize,
    hi: usize,
    rule: CoinRule,
}

fn observe(world: &World<SynRanProcess>) -> Option<VoteView> {
    let n = world.config().n();
    let mut ones = BitPlane::new(n);
    let mut zeros = BitPlane::new(n);
    let mut lo = 0usize;
    let mut hi = usize::MAX;
    let mut rule = None;
    for pid in world.alive_ids() {
        let p = world.process(pid);
        rule.get_or_insert(p.rule());
        match p.stage() {
            StageKind::Probabilistic | StageKind::Delay => match p.preference() {
                Bit::One => ones.set(pid.index()),
                Bit::Zero => zeros.set(pid.index()),
            },
            // A process already flooding is out of the adversary's game.
            StageKind::Deterministic => return None,
        }
        // Receiver pid keeps coin-flipping iff 5·base ≤ 10·O' ≤ 6·base.
        let base = p.last_n();
        lo = lo.max(base.div_ceil(2));
        hi = hi.min(base * 6 / 10);
    }
    if ones.is_empty() && zeros.is_empty() {
        return None;
    }
    Some(VoteView {
        ones,
        zeros,
        lo,
        hi,
        rule: rule.expect("some process observed"),
    })
}

impl Adversary<SynRanProcess> for Balancer {
    fn intervene(&mut self, world: &World<SynRanProcess>) -> Intervention {
        let Some(view) = observe(world) else {
            return Intervention::none();
        };
        let cap = self.cap(world);
        if cap == 0 || view.lo > view.hi {
            return Intervention::none();
        }
        let o = view.ones.count_ones();

        if o > view.hi {
            // Trim: remove 1-votes down into the band. Useless against the
            // one-sided rule when no zero remains visible (Z = 0 proposes 1
            // regardless), so don't waste budget there.
            if view.rule == CoinRule::OneSided && view.zeros.is_empty() {
                return Intervention::none();
            }
            let excess = o - view.hi;
            if excess > cap {
                // Partial trimming cannot reach the band, and overshooting
                // is impossible (we only remove). Spend nothing.
                return Intervention::none();
            }
            return Intervention::kill_all_silent(view.ones.ids().take(excess));
        }

        if o < view.lo {
            // 0-heavy round. Only the split move stalls the one-sided
            // protocol: kill every 0-preferrer, deliver their last
            // messages to half the survivors only.
            if view.rule != CoinRule::OneSided {
                return Intervention::none();
            }
            let z = view.zeros.count_ones();
            if z == 0 || z > cap {
                return Intervention::none();
            }
            // Survivors = alive ∧ ¬zeros, one and-not over the planes.
            let mut survivors = world.alive_mask().clone();
            survivors.subtract(&view.zeros);
            if survivors.count_ones() < 2 {
                return Intervention::none();
            }
            // Group B (every other survivor) keeps seeing the zeros.
            let group_b: Vec<ProcessId> = survivors.ids().step_by(2).collect();
            let mut iv = Intervention::new();
            for victim in view.zeros.ids() {
                iv = iv.kill(victim, DeliveryFilter::To(group_b.clone()));
            }
            return iv;
        }

        // Already in the band: every receiver coin-flips for free.
        Intervention::none()
    }

    fn name(&self) -> &str {
        "balancer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, run_batch, InputAssignment, SynRan};
    use synran_sim::{Passive, SimConfig};

    #[test]
    fn stalls_longer_than_passive() {
        let n = 32;
        let cfg = SimConfig::new(n).faults(n - 1).max_rounds(50_000);
        let passive = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            15,
            1,
            |_| Passive,
        )
        .unwrap();
        let attacked = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            15,
            1,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(passive.all_correct());
        assert!(attacked.all_correct(), "{:?}", attacked.incorrect());
        assert!(
            attacked.mean_rounds() > passive.mean_rounds(),
            "balancer ({}) should beat passive ({})",
            attacked.mean_rounds(),
            passive.mean_rounds()
        );
    }

    #[test]
    fn safety_holds_under_attack() {
        for seed in 0..15 {
            let n = 24;
            let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
            let verdict = check_consensus(
                &SynRan::new(),
                &inputs,
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut Balancer::unbounded(),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn capped_balancer_respects_cap() {
        let n = 24;
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(n - 1).seed(9).max_rounds(50_000),
            &mut Balancer::with_cap(3),
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert!(verdict
            .report()
            .metrics()
            .kills_per_round()
            .iter()
            .all(|&(_, k)| k <= 3));
    }

    #[test]
    fn saves_budget_against_symmetric_variant_zero_heavy_rounds() {
        // The split move must never fire against the symmetric variant —
        // verify by checking safety and that runs still complete.
        let n = 24;
        let outcome = run_batch(
            &SynRan::symmetric(),
            InputAssignment::even_split(n),
            &SimConfig::new(n).faults(n - 1).max_rounds(50_000),
            10,
            4,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(outcome.all_correct(), "{:?}", outcome.incorrect());
    }

    #[test]
    fn symmetric_variant_loses_validity_one_sided_does_not() {
        // The paper's reason for the `Z = 0 → 1` rule, demonstrated: with
        // all inputs 1 and a large budget, trimming 1-senders drops the
        // survivors' counts into the coin band. The symmetric variant then
        // coin-flips and sometimes decides 0 — a Validity violation. The
        // one-sided variant proposes 1 whenever no 0 is visible and is
        // immune.
        let n = 32;
        let runs = 20;
        let sym = run_batch(
            &SynRan::symmetric(),
            InputAssignment::Unanimous(Bit::One),
            &SimConfig::new(n).faults(n - 1).max_rounds(50_000),
            runs,
            77,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(
            !sym.incorrect().is_empty(),
            "expected validity violations from the symmetric variant"
        );
        assert!(sym
            .incorrect()
            .iter()
            .all(|(_, v)| v.iter().any(|m| m.contains("validity"))));

        let one_sided = run_batch(
            &SynRan::new(),
            InputAssignment::Unanimous(Bit::One),
            &SimConfig::new(n).faults(n - 1).max_rounds(50_000),
            runs,
            77,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(
            one_sided.all_correct(),
            "one-sided variant must keep validity: {:?}",
            one_sided.incorrect()
        );
    }

    #[test]
    fn unanimous_population_is_absorbing_under_balancer() {
        // Lemma 4.1 from the attack side: once everyone prefers 1, the
        // one-sided rule makes trimming pointless and the balancer stops
        // spending; the run ends quickly.
        let n = 16;
        let verdict = check_consensus(
            &SynRan::new(),
            &vec![Bit::One; n],
            SimConfig::new(n).faults(n - 1).seed(2).max_rounds(1_000),
            &mut Balancer::unbounded(),
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert_eq!(verdict.report().unanimous_decision(), Some(Bit::One));
        assert_eq!(verdict.report().metrics().total_kills(), 0);
    }
}
