//! The non-adaptive (static) adversary of the paper's §1.2.
//!
//! Theorem 1 needs *adaptivity*: Chor, Merritt & Shmoys [CMS89] reach
//! consensus in `O(1)` expected rounds when the adversary must commit to
//! its failure pattern **before** the execution starts. [`Oblivious`]
//! models exactly that commitment: its entire kill schedule — which
//! process dies in which round, and which of its last messages are
//! delivered — is a pure function of the seed, computed at construction.
//! The `intervene` implementation never reads anything from the world
//! except the round number (and liveness/budget, to stay legal).

use synran_sim::{Adversary, DeliveryFilter, Intervention, Process, ProcessId, SimRng, World};

/// One pre-committed kill.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedKill {
    round: u32,
    victim: ProcessId,
    delivered: DeliveryFilter,
}

/// A fail-stop adversary whose complete failure schedule is fixed before
/// the execution begins.
///
/// # Examples
///
/// ```
/// use synran_adversary::Oblivious;
/// use synran_core::{check_consensus, LeaderConsensus};
/// use synran_sim::{Bit, SimConfig};
///
/// let n = 16;
/// let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
/// // Commits to ~2 kills/round over the first 30 rounds, before seeing anything.
/// let mut adversary = Oblivious::new(n, 2, 30, 7);
/// let verdict = check_consensus(
///     &LeaderConsensus::for_faults(7),
///     &inputs,
///     SimConfig::new(n).faults(7).seed(7),
///     &mut adversary,
/// )?;
/// assert!(verdict.is_correct());
/// # Ok::<(), synran_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Oblivious {
    schedule: Vec<PlannedKill>,
}

impl Oblivious {
    /// Pre-commits a schedule for a system of `n` processes: up to
    /// `per_round` distinct victims in each of the first `rounds` rounds,
    /// chosen uniformly (with uniformly random all-or-half-or-nothing
    /// delivery of their final messages), derived entirely from `seed`.
    #[must_use]
    pub fn new(n: usize, per_round: usize, rounds: u32, seed: u64) -> Oblivious {
        let mut rng = SimRng::new(seed).derive(0x0B11);
        let mut schedule = Vec::new();
        for round in 1..=rounds {
            let k = per_round.min(n);
            for idx in rng.sample_indices(n, k) {
                let delivered = match rng.below(3) {
                    0 => DeliveryFilter::All,
                    1 => DeliveryFilter::None,
                    _ => {
                        // Half the address space, fixed in advance.
                        let half: Vec<ProcessId> = (0..n)
                            .filter(|_| rng.bit().is_one())
                            .map(ProcessId::new)
                            .collect();
                        DeliveryFilter::To(half)
                    }
                };
                schedule.push(PlannedKill {
                    round,
                    victim: ProcessId::new(idx),
                    delivered,
                });
            }
        }
        Oblivious { schedule }
    }

    /// Number of pre-committed kills (before liveness/budget clamping).
    #[must_use]
    pub fn planned_kills(&self) -> usize {
        self.schedule.len()
    }
}

impl<P: Process> Adversary<P> for Oblivious {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        let round = world.round().index();
        let mut iv = Intervention::new();
        let mut planned = 0usize;
        for kill in self.schedule.iter().filter(|k| k.round == round) {
            // The schedule is blind; the engine's rules are not. Skip
            // already-dead victims, keep one process alive, respect the
            // budget — all checks that do not leak execution state into
            // the *choice* of victims.
            if planned + 1 > world.budget().remaining() {
                break;
            }
            if world.alive_count() <= planned + 1 {
                break;
            }
            if !world.status(kill.victim).is_alive() {
                continue;
            }
            if iv.kills().iter().any(|k| k.victim == kill.victim) {
                continue;
            }
            iv = iv.kill(kill.victim, kill.delivered.clone());
            planned += 1;
        }
        iv
    }

    fn name(&self) -> &str {
        "oblivious"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_core::{check_consensus, LeaderConsensus, SynRan};
    use synran_sim::{Bit, SimConfig};

    fn split_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| Bit::from(i % 2 == 0)).collect()
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = Oblivious::new(16, 2, 10, 5);
        let b = Oblivious::new(16, 2, 10, 5);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.planned_kills(), 20);
        let c = Oblivious::new(16, 2, 10, 6);
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn protocols_stay_correct_under_static_schedules() {
        for seed in 0..10u64 {
            let n = 18;
            let mut adversary = Oblivious::new(n, 2, 40, seed);
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n),
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut adversary,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );

            let mut adversary = Oblivious::new(n, 1, 40, seed);
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(n / 2 - 1),
                &split_inputs(n),
                SimConfig::new(n)
                    .faults(n / 2 - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut adversary,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }

    #[test]
    fn leader_protocol_is_fast_against_static_adversaries() {
        // The CMS effect: a pre-committed schedule cannot target the
        // random leader, so LeaderConsensus converges in O(1) expected phases.
        let n = 25;
        let t = 12;
        let mut total = 0u32;
        let runs = 15;
        for seed in 0..runs {
            let mut adversary = Oblivious::new(n, 1, 40, seed);
            let verdict = check_consensus(
                &LeaderConsensus::for_faults(t),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed).max_rounds(50_000),
                &mut adversary,
            )
            .unwrap();
            assert!(verdict.is_correct());
            total += verdict.rounds();
        }
        let mean = f64::from(total) / f64::from(runs as u32);
        assert!(
            mean < 12.0,
            "LeaderConsensus vs static should be near-constant rounds, got {mean}"
        );
    }

    #[test]
    fn budget_and_liveness_clamps_hold() {
        let n = 6;
        let mut adversary = Oblivious::new(n, 6, 40, 1);
        let verdict = check_consensus(
            &SynRan::new(),
            &split_inputs(n),
            SimConfig::new(n).faults(3).seed(1).max_rounds(50_000),
            &mut adversary,
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert!(verdict.report().metrics().total_kills() <= 3);
        assert!(verdict.report().non_faulty().count() >= 1);
    }
}
