//! The cohort differential oracle: the lockstep cohort engine behind
//! [`estimate_valency`] must produce **byte-identical** estimates to the
//! per-fork reference path ([`estimate_valency_fork`]) — for every thread
//! count, for horizon-hit worlds, and under every telemetry mode. This is
//! the load-bearing suite the tier-1 cohort smoke step mirrors.

use synran_adversary::{estimate_valency, estimate_valency_fork, ProbeSet};
use synran_core::{ConsensusProtocol, SynRan, SynRanProcess};
use synran_sim::telemetry::{Telemetry, TelemetryMode};
use synran_sim::{Bit, SimConfig, World};

/// A SynRan world with `ones` leading 1-inputs, `t` fault budget, and a
/// configurable worker-thread count — the same fixture family the in-crate
/// valency tests use.
fn world_with(
    n: usize,
    t: usize,
    ones: usize,
    seed: u64,
    threads: usize,
    max_rounds: u32,
) -> World<SynRanProcess> {
    World::new(
        SimConfig::new(n)
            .faults(t)
            .seed(seed)
            .max_rounds(max_rounds)
            .threads(threads),
        |pid| SynRan::new().spawn(pid, n, Bit::from(pid.index() < ones)),
    )
    .expect("valid config")
}

#[test]
fn cohort_matches_fork_path_at_every_thread_count() {
    let probes = ProbeSet::synran(3);
    // Split, mostly-ones, and unanimous starting states: the cohort must
    // agree with the per-fork oracle regardless of how quickly (or
    // whether) the forks decide.
    for (ones, seed) in [(8, 7u64), (14, 21), (16, 3)] {
        let reference =
            estimate_valency_fork(&world_with(16, 8, ones, seed, 1, 5_000), &probes, 5, 60, 9)
                .unwrap();
        for threads in [1usize, 2, 8] {
            let world = world_with(16, 8, ones, seed, threads, 5_000);
            let cohort = estimate_valency(&world, &probes, 5, 60, 9).unwrap();
            assert_eq!(
                cohort, reference,
                "cohort(threads={threads}) vs per-fork, ones={ones} seed={seed}"
            );
            let fork = estimate_valency_fork(&world, &probes, 5, 60, 9).unwrap();
            assert_eq!(
                fork, reference,
                "fork path itself drifted at threads={threads}"
            );
        }
    }
}

#[test]
fn horizon_hit_worlds_are_identical_and_undecided() {
    // A 2-round look-ahead is far too short for SynRan to decide from a
    // split state: every fork hits the horizon. Cohort retirement of
    // horizon-hit worlds must score them exactly like the per-fork path's
    // `MaxRoundsExceeded` arm (½ each, all undecided).
    let probes = ProbeSet::synran(2);
    for threads in [1usize, 2, 8] {
        let world = world_with(12, 6, 6, 5, threads, 5_000);
        let cohort = estimate_valency(&world, &probes, 4, 2, 17).unwrap();
        let fork = estimate_valency_fork(&world, &probes, 4, 2, 17).unwrap();
        assert_eq!(cohort, fork, "threads = {threads}");
        assert!(
            cohort.undecided() * 2 > probes.len() * 4,
            "most forks should hit the 2-round horizon, got {} of {}",
            cohort.undecided(),
            probes.len() * 4
        );
    }
}

#[test]
fn config_max_rounds_caps_the_cohort_like_the_fork_path() {
    // The world's own `max_rounds` is tighter than the probe horizon:
    // bounded forks clamp to it, so the per-fork path surfaces
    // `MaxRoundsExceeded` and scores ½. The cohort must retire those
    // worlds at the same limit with the same score.
    let probes = ProbeSet::synran(2);
    for threads in [1usize, 2, 8] {
        let world = world_with(12, 6, 6, 5, threads, 3);
        let cohort = estimate_valency(&world, &probes, 4, 60, 17).unwrap();
        let fork = estimate_valency_fork(&world, &probes, 4, 60, 17).unwrap();
        assert_eq!(cohort, fork, "threads = {threads}");
        assert!(cohort.undecided() > 0, "the 3-round cap must bite");
    }
}

#[test]
fn early_retirement_is_observe_only_and_counted() {
    // Unanimous inputs decide almost immediately — long before the
    // 60-round horizon — so the cohort retires every world early. The
    // counters must record that, and must not perturb the estimate:
    // off / counters / spans all agree with the per-fork oracle.
    let probes = ProbeSet::synran(2);
    let reference =
        estimate_valency_fork(&world_with(12, 4, 12, 11, 2, 5_000), &probes, 4, 60, 23).unwrap();
    for mode in [
        TelemetryMode::Off,
        TelemetryMode::Counters,
        TelemetryMode::Spans,
    ] {
        let hub = Telemetry::new(mode);
        let mut world = world_with(12, 4, 12, 11, 2, 5_000);
        world.set_telemetry(hub.clone());
        let est = estimate_valency(&world, &probes, 4, 60, 23).unwrap();
        assert_eq!(est, reference, "telemetry mode {mode} changed the estimate");
        let snap = hub.snapshot();
        let expected_worlds = (probes.len() * 4) as u64;
        match mode {
            TelemetryMode::Off => {
                assert_eq!(snap.counter("valency.cohort.worlds"), None);
            }
            TelemetryMode::Counters | TelemetryMode::Spans => {
                assert_eq!(snap.counter("valency.cohort.worlds"), Some(expected_worlds));
                assert_eq!(
                    snap.counter("valency.cohort.retired_early"),
                    Some(expected_worlds),
                    "unanimous worlds all decide before the horizon"
                );
                assert!(
                    snap.counter("valency.cohort.rounds_saved").unwrap_or(0) > 0,
                    "early retirement should bank unburned rounds"
                );
            }
        }
    }
}

#[test]
#[should_panic(expected = "at least one probe")]
fn cohort_rejects_empty_probe_set() {
    let world = world_with(8, 4, 4, 1, 1, 5_000);
    let probes: ProbeSet<SynRanProcess> = ProbeSet::new();
    let _ = estimate_valency(&world, &probes, 4, 30, 1);
}

#[test]
#[should_panic(expected = "at least one sample")]
fn cohort_rejects_zero_samples() {
    let world = world_with(8, 4, 4, 1, 1, 5_000);
    let probes = ProbeSet::synran(2);
    let _ = estimate_valency(&world, &probes, 0, 30, 1);
}
