//! Allocation steady-state for the valency hot path: after a warm-up call,
//! repeated `estimate_valency` invocations must settle to a flat per-call
//! allocation count — no per-call growth, and no per-probe `String` churn
//! (probe names are interned `Arc<str>`s shared with the `ProbeSet`).
//!
//! Mirrors `crates/sim/tests/deliver_allocations.rs`: a counting
//! `#[global_allocator]` with a per-thread counter, run on `threads = 1`
//! so every engine allocation lands on the measuring thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use synran_adversary::{estimate_valency, ProbeSet};
use synran_core::{ConsensusProtocol, SynRan, SynRanProcess};
use synran_sim::{Bit, SimConfig, World};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: TLS may be unavailable during thread teardown.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fixture_world() -> World<SynRanProcess> {
    let n = 12;
    World::new(
        SimConfig::new(n)
            .faults(6)
            .seed(7)
            .max_rounds(5_000)
            .threads(1),
        |pid| SynRan::new().spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .expect("valid config")
}

#[test]
fn estimate_valency_reaches_allocation_steady_state() {
    let world = fixture_world();
    let probes = ProbeSet::synran(3);

    // Warm-up: the snapshot's scratch pool, the worker pool, and the
    // cohort's lane buffers all reach capacity on the first call.
    let _ = estimate_valency(&world, &probes, 4, 40, 9).unwrap();

    // Steady state: identical calls must allocate an identical, flat
    // amount — any drift means a per-call leak or cache miss on the hot
    // path (e.g. the per-probe `String` clones this test was added to
    // pin the removal of).
    let mut per_call = Vec::with_capacity(3);
    for _ in 0..3 {
        let before = thread_allocs();
        let est = estimate_valency(&world, &probes, 4, 40, 9).unwrap();
        let after = thread_allocs();
        assert_eq!(est.per_probe().len(), probes.len());
        per_call.push(after - before);
    }
    assert_eq!(
        per_call[1], per_call[0],
        "second steady-state call allocated differently: {per_call:?}"
    );
    assert_eq!(
        per_call[2], per_call[1],
        "third steady-state call allocated differently: {per_call:?}"
    );
}
