//! The name registry: how a [`Cell`]'s protocol and adversary strings
//! become an executable batch.
//!
//! The vocabulary mirrors the `synran` CLI (`synran list`): protocols
//! `synran | symmetric | flooding | leader`, adversaries `passive |
//! random | storm | oblivious | kill-ones | kill-zeros | balancer |
//! lower-bound | walker | hunter`, with the same compatibility matrix —
//! the SynRan-specific attacks only target the SynRan family, `hunter`
//! only targets `leader`.
//!
//! Execution goes through [`synran_core::run_batch_with`] with the cell's
//! base seed, so a cell reproduces exactly what a hand-rolled experiment
//! loop with the same seed derivation produces — that equivalence is what
//! lets the E3/E4/E7 binaries delegate to the engine byte-for-byte.

use synran_adversary::{
    Balancer, LeaderHunter, LowerBoundAdversary, MessageWalker, Oblivious, PreferenceKiller,
    RandomKiller, Storm,
};
use synran_core::{
    run_batch_with, ConsensusProtocol, FloodingConsensus, InputAssignment, LeaderConsensus,
    LeaderProcess, SynRan, SynRanProcess,
};
use synran_sim::{Adversary, Bit, Passive, Process, SimConfig, Telemetry};

use crate::cell::{Cell, CellResult};
use crate::LabError;

/// A per-run adversary factory (the batch runner calls it once per seed).
type Factory<P> = Box<dyn Fn(u64) -> Box<dyn Adversary<P> + Send> + Sync>;

/// `⌈√n⌉` — the default kill rate for rate-based adversaries, matching
/// the CLI.
fn default_rate(n: usize) -> usize {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let r = (n as f64).sqrt().ceil() as usize;
    r
}

fn unknown(adversary: &str, protocol: &str) -> LabError {
    LabError::Unknown(format!(
        "adversary {adversary:?} cannot attack protocol {protocol:?}"
    ))
}

/// Adversaries that understand any process type.
fn generic_factory<P: Process>(cell: &Cell) -> Result<Factory<P>, LabError> {
    let n = cell.n;
    let rate = if cell.rate == 0 {
        default_rate(n)
    } else {
        cell.rate
    };
    Ok(match cell.adversary.as_str() {
        "passive" => Box::new(|_| Box::new(Passive)),
        "random" => Box::new(move |s| Box::new(RandomKiller::new(rate, s))),
        "storm" => Box::new(|s| Box::new(Storm::new(s))),
        "oblivious" => Box::new(move |s| Box::new(Oblivious::new(n, rate, 500, s))),
        _ => return Err(unknown(&cell.adversary, &cell.protocol)),
    })
}

/// Adversaries attacking the SynRan family, plus all generic ones.
fn synran_factory(cell: &Cell) -> Result<Factory<SynRanProcess>, LabError> {
    let n = cell.n;
    let rate = if cell.rate == 0 {
        default_rate(n)
    } else {
        cell.rate
    };
    let (cap, samples, horizon) = (cell.cap, cell.samples, cell.horizon);
    Ok(match cell.adversary.as_str() {
        "kill-ones" => Box::new(move |_| Box::new(PreferenceKiller::new(Bit::One, rate))),
        "kill-zeros" => Box::new(move |_| Box::new(PreferenceKiller::new(Bit::Zero, rate))),
        "balancer" => {
            if cap == 0 {
                Box::new(|_| Box::new(Balancer::unbounded()))
            } else {
                Box::new(move |_| Box::new(Balancer::with_cap(cap)))
            }
        }
        "lower-bound" => {
            if cap == 0 && samples == 0 && horizon == 0 {
                Box::new(move |s| Box::new(LowerBoundAdversary::for_system(n, s)))
            } else {
                let samples = samples.max(1);
                let horizon = horizon.max(1);
                Box::new(move |s| {
                    Box::new(LowerBoundAdversary::with_params(cap, samples, horizon, s))
                })
            }
        }
        "walker" => {
            let walker_cap = if cap == 0 { rate.max(2) } else { cap };
            let walker_samples = samples.max(3);
            let walker_horizon = if horizon == 0 { 30 } else { horizon };
            Box::new(move |s| {
                Box::new(MessageWalker::new(
                    walker_cap,
                    walker_samples,
                    walker_horizon,
                    s,
                ))
            })
        }
        _ => generic_factory(cell)?,
    })
}

/// Adversaries attacking the leader protocol, plus all generic ones.
fn leader_factory(cell: &Cell) -> Result<Factory<LeaderProcess>, LabError> {
    if cell.adversary == "hunter" {
        return Ok(Box::new(|_| Box::new(LeaderHunter::new())));
    }
    generic_factory(cell)
}

fn batch<P>(
    protocol: &P,
    cell: &Cell,
    telemetry: &Telemetry,
    factory: &Factory<P::Proc>,
) -> Result<CellResult, LabError>
where
    P: ConsensusProtocol + Sync,
{
    // Cells are the engine's sharding unit, so the batch inside one cell
    // runs serially — the scheduler parallelises *across* cells.
    let cfg = SimConfig::new(cell.n)
        .faults(cell.t)
        .max_rounds(cell.max_rounds)
        .threads(1);
    let outcome = run_batch_with(
        protocol,
        InputAssignment::Split { ones: cell.ones },
        &cfg,
        cell.runs,
        cell.seed,
        telemetry,
        factory,
    )?;
    Ok(CellResult {
        rounds: outcome.rounds().to_vec(),
        kills: outcome.kills().iter().map(|&k| k as u64).collect(),
        timeouts: u32::try_from(outcome.timeouts()).unwrap_or(u32::MAX),
        violations: u32::try_from(outcome.incorrect().len()).unwrap_or(u32::MAX),
    })
}

/// Validates a cell's names without executing anything — `status` and
/// spec linting use this.
///
/// # Errors
///
/// Returns [`LabError::Unknown`] for an unknown protocol, an unknown
/// adversary, or an incompatible pairing; [`LabError::Spec`] for a
/// degenerate geometry (`n = 0`, `ones > n`, `t ≥ n` is allowed by the
/// simulator and therefore allowed here).
pub fn validate_cell(cell: &Cell) -> Result<(), LabError> {
    if cell.n == 0 {
        return Err(LabError::Spec("n must be at least 1".into()));
    }
    if cell.ones > cell.n {
        return Err(LabError::Spec(format!(
            "ones = {} exceeds n = {}",
            cell.ones, cell.n
        )));
    }
    if cell.runs == 0 {
        return Err(LabError::Spec("runs must be at least 1".into()));
    }
    match cell.protocol.as_str() {
        "synran" | "symmetric" => synran_factory(cell).map(|_| ()),
        "flooding" => generic_factory::<synran_core::FloodingProcess>(cell).map(|_| ()),
        "leader" => leader_factory(cell).map(|_| ()),
        other => Err(LabError::Unknown(format!(
            "unknown protocol {other:?} (see `synran list`)"
        ))),
    }
}

/// Executes one cell: a seeded batch of `cell.runs` runs, aggregated in
/// seed order. Pure in the cell — the result is a function of the cell's
/// fields only, never of thread count or telemetry mode.
///
/// # Errors
///
/// Returns [`LabError::Unknown`] for unresolvable names, [`LabError::Sim`]
/// for engine errors other than round-limit overruns (tallied as
/// [`CellResult::timeouts`]).
pub fn run_cell(cell: &Cell, telemetry: &Telemetry) -> Result<CellResult, LabError> {
    validate_cell(cell)?;
    match cell.protocol.as_str() {
        "synran" => batch(&SynRan::new(), cell, telemetry, &synran_factory(cell)?),
        "symmetric" => batch(
            &SynRan::symmetric(),
            cell,
            telemetry,
            &synran_factory(cell)?,
        ),
        "flooding" => batch(
            &FloodingConsensus::for_faults(cell.t),
            cell,
            telemetry,
            &generic_factory(cell)?,
        ),
        "leader" => batch(
            &LeaderConsensus::for_faults(cell.t),
            cell,
            telemetry,
            &leader_factory(cell)?,
        ),
        other => Err(LabError::Unknown(format!(
            "unknown protocol {other:?} (see `synran list`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_synran_cell_runs() {
        let mut cell = Cell::new("synran", "passive", 8);
        cell.runs = 5;
        cell.seed = 3;
        let result = run_cell(&cell, &Telemetry::off()).unwrap();
        assert_eq!(result.rounds.len(), 5);
        assert!(result.all_correct());
        assert!(result.kills.iter().all(|&k| k == 0));
    }

    #[test]
    fn cell_reproduces_a_hand_rolled_run_batch() {
        // The equivalence the presets rely on: a cell with base seed S is
        // exactly `run_batch(..., S, ...)`.
        let mut cell = Cell::new("synran", "balancer", 10);
        cell.runs = 4;
        cell.seed = 77;
        cell.max_rounds = 100_000;
        let via_cell = run_cell(&cell, &Telemetry::off()).unwrap();
        let direct = synran_core::run_batch(
            &SynRan::new(),
            InputAssignment::Split { ones: 5 },
            &SimConfig::new(10).faults(9).max_rounds(100_000),
            4,
            77,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert_eq!(via_cell.rounds, direct.rounds());
        assert_eq!(
            via_cell.kills,
            direct
                .kills()
                .iter()
                .map(|&k| k as u64)
                .collect::<Vec<u64>>()
        );
    }

    #[test]
    fn every_protocol_name_resolves() {
        for (protocol, adversary) in [
            ("synran", "storm"),
            ("symmetric", "passive"),
            ("flooding", "random"),
            ("leader", "hunter"),
        ] {
            let mut cell = Cell::new(protocol, adversary, 9);
            cell.runs = 2;
            if protocol == "leader" {
                cell.t = 4;
            }
            let result = run_cell(&cell, &Telemetry::off())
                .unwrap_or_else(|e| panic!("{protocol}/{adversary}: {e}"));
            assert_eq!(result.rounds.len() + result.timeouts as usize, 2);
        }
    }

    #[test]
    fn compatibility_matrix_is_enforced() {
        assert!(matches!(
            validate_cell(&Cell::new("flooding", "balancer", 8)),
            Err(LabError::Unknown(_))
        ));
        assert!(matches!(
            validate_cell(&Cell::new("synran", "hunter", 8)),
            Err(LabError::Unknown(_))
        ));
        assert!(matches!(
            validate_cell(&Cell::new("quantum", "passive", 8)),
            Err(LabError::Unknown(_))
        ));
        assert!(validate_cell(&Cell::new("synran", "lower-bound", 8)).is_ok());
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        let mut zero_runs = Cell::new("synran", "passive", 4);
        zero_runs.runs = 0;
        assert!(matches!(validate_cell(&zero_runs), Err(LabError::Spec(_))));
        let mut lopsided = Cell::new("synran", "passive", 4);
        lopsided.ones = 5;
        assert!(matches!(validate_cell(&lopsided), Err(LabError::Spec(_))));
    }
}
