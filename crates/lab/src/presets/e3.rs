//! E3 — Theorem 1: the adversary forces `Ω(t / √(n·log n))` rounds.
//!
//! The campaign form of `e3_lower_bound`: the binary is a thin wrapper
//! over this preset, so `synran campaign run campaigns/e3.campaign` and
//! the binary share one code path and print byte-identical tables. Cells
//! carry the exact seed derivation the binary's hand-rolled loop used
//! (`run_batch` semantics), which is what makes the equivalence hold.

use std::io::Write;

use synran_adversary::{find_adversarial_input, LowerBoundAdversary};
use synran_analysis::{fmt_f64, lower_bound_rounds, ShapeFit, Summary, Table};
use synran_core::{check_consensus_with, per_round_kill_budget, SynRan};
use synran_sim::{SimConfig, SimRng};

use crate::artifact::{results_telemetry_path, write_telemetry_jsonl};
use crate::cell::{Cell, CellResult};
use crate::engine::CellRunner;
use crate::presets::{banner, section};
use crate::spec::CampaignSpec;
use crate::LabError;

/// The E3 campaign's parameters.
#[derive(Debug, Clone)]
pub struct E3Params {
    /// System sizes for the main table (`t ∈ {n/2, n−1}` per size).
    pub sizes: Vec<usize>,
    /// Runs per table point.
    pub runs: usize,
    /// Valency-probe forks per adversary decision.
    pub samples: usize,
    /// Base seed (the binary's `--seed`).
    pub seed: u64,
}

/// The binary's full-size default sweep.
pub const DEFAULT_SIZES: [usize; 5] = [16, 24, 32, 48, 64];

/// The `t/√(n·ln n)` fork-probe horizon the binary uses: `3√n + 20`.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn probe_horizon(n: usize) -> u32 {
    3 * (n as f64).sqrt() as u32 + 20
}

/// The paper's per-round cap: `⌈4√(n·ln n)⌉ + 1`.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn paper_cap(n: usize) -> usize {
    per_round_kill_budget(n).ceil() as usize + 1
}

/// The pinch section's starved cap: `max(⌈budget/16⌉, 1)`.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn starved_cap(n: usize) -> usize {
    ((per_round_kill_budget(n) / 16.0).ceil() as usize).max(1)
}

impl E3Params {
    /// Parameters from a campaign spec (`experiment = e3`): `runs`,
    /// `samples`, `seed` scalars and an optional `sweep n` axis, with the
    /// binary's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] for unparseable values.
    pub fn from_spec(spec: &CampaignSpec) -> Result<E3Params, LabError> {
        Ok(E3Params {
            sizes: match spec.sweep("n") {
                Some(_) => spec.sweep_usize("n")?,
                None => DEFAULT_SIZES.to_vec(),
            },
            runs: spec.param_usize("runs", 8)?,
            samples: spec.param_usize("samples", 3)?,
            seed: spec.param_u64("seed", 3)?,
        })
    }

    fn base_cell(&self, adversary: &str, n: usize, t: usize, seed: u64) -> Cell {
        let mut cell = Cell::new("synran", adversary, n);
        cell.t = t;
        cell.runs = self.runs;
        cell.seed = seed;
        cell.max_rounds = 100_000;
        cell
    }

    fn forced_cell(&self, n: usize, t: usize, cap: usize, seed: u64) -> Cell {
        let mut cell = self.base_cell("lower-bound", n, t, seed);
        cell.cap = cap;
        cell.samples = self.samples;
        cell.horizon = probe_horizon(n);
        cell
    }

    /// The campaign's deterministic cell list: per size, `(passive,
    /// forced)` at `t = n/2` then `t = n−1`, followed by the pinch
    /// section's starved-cap cells on the first two sizes.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &n in &self.sizes {
            let cap = paper_cap(n);
            for t in [n / 2, n - 1] {
                cells.push(self.base_cell("passive", n, t, self.seed ^ 0xAAAA));
                cells.push(self.forced_cell(n, t, cap, self.seed));
            }
        }
        for &n in &self.sizes[..self.sizes.len().min(2)] {
            cells.push(self.forced_cell(n, n - 1, starved_cap(n), self.seed ^ 0xBBBB));
        }
        cells
    }
}

/// `(mean rounds, ±95% CI, mean kills)` of a cell — the binary's
/// `mean_rounds` triple, recomputed from the raw per-run vectors with the
/// same `Summary` calls so the formatted digits match exactly.
fn stats(cell: &Cell, result: &CellResult) -> (f64, f64, f64) {
    assert!(
        result.all_correct(),
        "consensus violated at n={} t={}",
        cell.n,
        cell.t
    );
    let s = Summary::of_u32(&result.rounds);
    #[allow(clippy::cast_possible_truncation)]
    let kills: Vec<u32> = result.kills.iter().map(|&k| k as u32).collect();
    let k = Summary::of_u32(&kills);
    (s.mean(), s.ci95_halfwidth(), k.mean())
}

/// Runs E3 on `runner` and renders the binary's exact output into `out`.
///
/// # Errors
///
/// Propagates execution and I/O errors.
#[allow(
    clippy::too_many_lines,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
pub fn run(
    params: &E3Params,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    let E3Params {
        sizes,
        runs,
        samples,
        seed,
    } = params.clone();
    let cells = params.cells();
    let results = runner.run_cells(&cells)?;
    let mut slots = cells.iter().zip(&results);

    banner(
        out,
        "E3 the lower bound (Theorem 1)",
        "an adaptive full-information adversary forces Ω(t/√(n·log n)) rounds",
    )?;
    writeln!(
        out,
        "valency-guided adversary, paper cap = ⌈4√(n·ln n)⌉ + 1 per round, {runs} runs/point, {samples} forks/probe"
    )?;

    section(out, "forced rounds vs the t/√(n·ln n) curve")?;
    let mut table = Table::new([
        "n",
        "t",
        "cap/round",
        "passive",
        "forced",
        "±95%",
        "kills used",
        "t/√(n·ln n)",
        "forced ÷ curve",
    ]);
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &n in &sizes {
        let cap = paper_cap(n);
        for t in [n / 2, n - 1] {
            let (passive_cell, passive_result) = slots.next().expect("passive cell");
            let (passive_mean, _, _) = stats(passive_cell, passive_result);
            let (forced_cell, forced_result) = slots.next().expect("forced cell");
            let (forced_mean, ci, kills) = stats(forced_cell, forced_result);
            let curve = lower_bound_rounds(n, t);
            measured.push(forced_mean);
            predicted.push(curve);
            table.row([
                n.to_string(),
                t.to_string(),
                cap.to_string(),
                fmt_f64(passive_mean, 1),
                fmt_f64(forced_mean, 1),
                fmt_f64(ci, 1),
                fmt_f64(kills, 1),
                fmt_f64(curve, 2),
                fmt_f64(forced_mean / curve, 2),
            ]);
        }
    }
    write!(out, "{table}")?;

    let fit = ShapeFit::fit(&measured, &predicted);
    writeln!(
        out,
        "\nshape fit: forced ≈ {} · t/√(n·ln n), max relative residual {}",
        fmt_f64(fit.scale(), 2),
        fmt_f64(fit.max_rel_residual(), 2)
    )?;
    writeln!(
        out,
        "expected: 'forced ÷ curve' roughly flat in n, and forced ≫ passive."
    )?;

    section(out, "Lemma 4.6's pinch: a sub-threshold cap cannot stall")?;
    let mut pinch = Table::new(["n", "t", "cap/round", "forced rounds", "kills used"]);
    for &n in &sizes[..sizes.len().min(2)] {
        let t = n - 1;
        let (pinch_cell, pinch_result) = slots.next().expect("pinch cell");
        let (forced, _, kills) = stats(pinch_cell, pinch_result);
        pinch.row([
            n.to_string(),
            t.to_string(),
            starved_cap(n).to_string(),
            fmt_f64(forced, 1),
            fmt_f64(kills, 1),
        ]);
    }
    write!(out, "{pinch}")?;
    writeln!(
        out,
        "\nexpected: with cap ≪ √(n·ln n), forced rounds collapse to near-passive —"
    )?;
    writeln!(
        out,
        "the same per-round spend threshold the upper bound's accounting charges."
    )?;

    section(out, "Lemma 3.5: adversarially chosen initial state")?;
    let n = sizes[0];
    let cfg = SimConfig::new(n).max_rounds(50_000);
    let inputs = find_adversarial_input(&SynRan::new(), &cfg, 4, seed).expect("probe error");
    let ones = inputs.iter().filter(|b| b.is_one()).count();
    writeln!(
        out,
        "n = {n}: passive-play flip point at {ones} ones — the non-univalent initial state the chain argument finds"
    )?;

    // Telemetry artifact: the experiment-wide counters plus per-round
    // kill-budget accounting from one representative forced run.
    let rep_n = *sizes.last().expect("sizes nonempty");
    let rep_t = rep_n - 1;
    let rep_cap = paper_cap(rep_n);
    let rep_seed = SimRng::new(seed).derive(0).next_u64();
    let rep_inputs: Vec<synran_sim::Bit> = (0..rep_n)
        .map(|i| synran_sim::Bit::from(i < rep_n / 2))
        .collect();
    let mut rep_adv =
        LowerBoundAdversary::with_params(rep_cap, samples, probe_horizon(rep_n), rep_seed);
    let rep_verdict = check_consensus_with(
        &SynRan::new(),
        &rep_inputs,
        SimConfig::new(rep_n)
            .faults(rep_t)
            .seed(rep_seed)
            .max_rounds(100_000),
        &mut rep_adv,
        runner.telemetry(),
    )?;
    let path = results_telemetry_path("e3_lower_bound");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e3_lower_bound".to_string()),
            ("adversary", "lower-bound".to_string()),
            ("n", rep_n.to_string()),
            ("t", rep_t.to_string()),
            ("cap_per_round", rep_cap.to_string()),
            ("seed", seed.to_string()),
            ("runs", runs.to_string()),
        ],
        runner.telemetry(),
        rep_verdict.report().metrics().kills_per_round(),
        rep_n,
    )?;
    writeln!(out, "\ntelemetry: {}", path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_list_shape_matches_the_binary_loop() {
        let params = E3Params {
            sizes: vec![16, 24, 32],
            runs: 2,
            samples: 1,
            seed: 3,
        };
        let cells = params.cells();
        // Per size: (passive, forced) × {n/2, n−1} = 4 cells; +2 pinch.
        assert_eq!(cells.len(), 3 * 4 + 2);
        assert_eq!(cells[0].adversary, "passive");
        assert_eq!(cells[0].seed, 3 ^ 0xAAAA);
        assert_eq!(cells[1].adversary, "lower-bound");
        assert_eq!(cells[1].seed, 3);
        assert_eq!((cells[0].n, cells[0].t), (16, 8));
        assert_eq!((cells[2].n, cells[2].t), (16, 15));
        let pinch = &cells[12];
        assert_eq!(pinch.seed, 3 ^ 0xBBBB);
        assert_eq!(pinch.cap, starved_cap(16));
        assert!(cells.iter().all(|c| c.max_rounds == 100_000));
    }

    #[test]
    fn spec_defaults_match_the_binary_defaults() {
        let spec = CampaignSpec::parse("experiment = e3\n", "e3").unwrap();
        let params = E3Params::from_spec(&spec).unwrap();
        assert_eq!(params.sizes, DEFAULT_SIZES);
        assert_eq!((params.runs, params.samples, params.seed), (8, 3, 3));
    }
}
