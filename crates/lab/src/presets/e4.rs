//! E4 — Theorems 2 & 3: SynRan's expected round count is
//! `O(t/√(n·log(2+t/√n)))` under **any** fail-stop adversary.
//!
//! The campaign form of `e4_synran_upper`; the binary wraps this preset.
//! Cells map one-to-one onto the binary's `run_batch` calls (same base
//! seed `seed ^ n`, same adversary suite in the same order), so the
//! rendered table is byte-identical.

use std::io::Write;

use synran_adversary::Balancer;
use synran_analysis::{fmt_f64, tight_bound_rounds, ShapeFit, Table};
use synran_core::{check_consensus_with, SynRan};
use synran_sim::{SimConfig, SimRng};

use crate::artifact::{results_telemetry_path, write_telemetry_jsonl};
use crate::cell::{Cell, CellResult};
use crate::engine::CellRunner;
use crate::presets::{banner, section};
use crate::spec::CampaignSpec;
use crate::LabError;

/// The E4 campaign's parameters.
#[derive(Debug, Clone)]
pub struct E4Params {
    /// System sizes (each runs the whole adversary suite at `t = n − 1`).
    pub sizes: Vec<usize>,
    /// Runs per cell.
    pub runs: usize,
    /// Base seed (per-size base is `seed ^ n`).
    pub seed: u64,
}

/// The binary's full-size default sweep.
pub const DEFAULT_SIZES: [usize; 5] = [32, 64, 128, 256, 512];

/// The adversary suite, as `(display label, registry name)` in the
/// binary's order. Registry defaults give `random` and `kill-ones` their
/// `⌈√n⌉` rate and `balancer` its unbounded cap — exactly the binary's
/// constructions.
const SUITE: [(&str, &str); 5] = [
    ("passive", "passive"),
    ("random(√n)", "random"),
    ("storm", "storm"),
    ("kill-ones(√n)", "kill-ones"),
    ("balancer", "balancer"),
];

impl E4Params {
    /// Parameters from a campaign spec (`experiment = e4`).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] for unparseable values.
    pub fn from_spec(spec: &CampaignSpec) -> Result<E4Params, LabError> {
        Ok(E4Params {
            sizes: match spec.sweep("n") {
                Some(_) => spec.sweep_usize("n")?,
                None => DEFAULT_SIZES.to_vec(),
            },
            runs: spec.param_usize("runs", 30)?,
            seed: spec.param_u64("seed", 4)?,
        })
    }

    /// The deterministic cell list: for each size, the five-adversary
    /// suite in order, `t = n − 1`, base seed `seed ^ n`.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &n in &self.sizes {
            for (_, name) in SUITE {
                let mut cell = Cell::new("synran", name, n);
                cell.runs = self.runs;
                cell.seed = self.seed ^ n as u64;
                cells.push(cell);
            }
        }
        cells
    }
}

/// Runs E4 on `runner` and renders the binary's exact output into `out`.
///
/// # Errors
///
/// Propagates execution and I/O errors.
pub fn run(
    params: &E4Params,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    let runs = params.runs;
    let cells = params.cells();
    let results = runner.run_cells(&cells)?;
    let mut slots = cells.iter().zip(&results);

    banner(
        out,
        "E4 SynRan upper bound (Theorems 2 & 3)",
        "expected rounds = O(t/√(n·log(2+t/√n))) under ANY fail-stop adversary",
    )?;
    writeln!(
        out,
        "t = n − 1 (maximum resilience), even-split inputs, {runs} runs/cell"
    )?;

    section(out, "mean rounds by adversary")?;
    let mut table = Table::new([
        "n",
        "adversary",
        "mean rounds",
        "max",
        "kills used (mean)",
        "bound curve",
        "ratio",
    ]);
    let mut worst_measured = Vec::new();
    let mut worst_predicted = Vec::new();
    for &n in &params.sizes {
        let curve = tight_bound_rounds(n, n - 1);
        let mut worst = 0.0f64;
        for (label, _) in SUITE {
            let (_, result): (&Cell, &CellResult) = slots.next().expect("suite cell");
            assert!(result.all_correct(), "violations at n={n} under {label}");
            let mean = result.mean_rounds();
            let kills_mean = result.mean_kills();
            worst = worst.max(mean);
            table.row([
                n.to_string(),
                label.to_string(),
                fmt_f64(mean, 1),
                result.max_rounds().map_or("-".into(), |m| m.to_string()),
                fmt_f64(kills_mean, 1),
                fmt_f64(curve, 2),
                fmt_f64(mean / curve, 2),
            ]);
        }
        worst_measured.push(worst);
        worst_predicted.push(curve);
    }
    write!(out, "{table}")?;

    let fit = ShapeFit::fit(&worst_measured, &worst_predicted);
    writeln!(
        out,
        "\nworst-adversary shape fit: rounds ≈ {} · t/√(n·log(2+t/√n)), max rel residual {}",
        fmt_f64(fit.scale(), 2),
        fmt_f64(fit.max_rel_residual(), 2)
    )?;
    writeln!(
        out,
        "expected: ratio column roughly flat in n for the worst adversary — the upper bound's shape."
    )?;

    // Telemetry artifact: experiment-wide counters plus per-round
    // kill accounting from one representative run — the balancer (the
    // suite's historically worst adversary) at the largest size, the
    // same shape E3 writes.
    let rep_n = *params.sizes.last().expect("sizes nonempty");
    let rep_t = rep_n - 1;
    let rep_seed = SimRng::new(params.seed ^ rep_n as u64).derive(0).next_u64();
    let rep_inputs: Vec<synran_sim::Bit> = (0..rep_n)
        .map(|i| synran_sim::Bit::from(i < rep_n / 2))
        .collect();
    let mut rep_adv = Balancer::unbounded();
    let rep_verdict = check_consensus_with(
        &SynRan::new(),
        &rep_inputs,
        SimConfig::new(rep_n)
            .faults(rep_t)
            .seed(rep_seed)
            .max_rounds(200_000),
        &mut rep_adv,
        runner.telemetry(),
    )?;
    let path = results_telemetry_path("e4_synran_upper");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e4_synran_upper".to_string()),
            ("adversary", "balancer".to_string()),
            ("n", rep_n.to_string()),
            ("t", rep_t.to_string()),
            ("seed", params.seed.to_string()),
            ("runs", runs.to_string()),
        ],
        runner.telemetry(),
        rep_verdict.report().metrics().kills_per_round(),
        rep_n,
    )?;
    writeln!(out, "\ntelemetry: {}", path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_list_mirrors_the_suite() {
        let params = E4Params {
            sizes: vec![32, 64],
            runs: 3,
            seed: 4,
        };
        let cells = params.cells();
        assert_eq!(cells.len(), 10);
        assert_eq!(cells[0].adversary, "passive");
        assert_eq!(cells[4].adversary, "balancer");
        assert_eq!(cells[0].seed, 4 ^ 32);
        assert_eq!(cells[5].seed, 4 ^ 64);
        assert!(cells.iter().all(|c| c.t == c.n - 1));
        assert!(cells.iter().all(|c| c.max_rounds == 200_000));
        assert!(cells.iter().all(|c| c.ones == c.n / 2));
    }

    #[test]
    fn spec_defaults_match_the_binary_defaults() {
        let spec = CampaignSpec::parse("experiment = e4\n", "e4").unwrap();
        let params = E4Params::from_spec(&spec).unwrap();
        assert_eq!(params.sizes, DEFAULT_SIZES);
        assert_eq!((params.runs, params.seed), (30, 4));
    }
}
