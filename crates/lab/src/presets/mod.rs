//! Campaign renderers: the generic grid table plus the experiment presets.
//!
//! A spec's `experiment` key picks the renderer: `grid` (the default)
//! prints one row per cell; `e3`, `e4`, `e6`, and `e7` reproduce the
//! corresponding experiment binaries' output **byte-for-byte** — those
//! binaries are thin wrappers over these presets, so the campaign path
//! and the binary path share one code path by construction.
//!
//! Renderers write to a caller-supplied [`std::io::Write`] (the binaries
//! pass stdout, tests pass buffers); engine bookkeeping (cache hits,
//! journal paths) goes to the CLI's stderr, never into the rendered
//! output.

use std::io::Write;

use synran_analysis::{fmt_f64, Table};

use crate::cell::Cell;
use crate::engine::CellRunner;
use crate::registry::validate_cell;
use crate::spec::CampaignSpec;
use crate::LabError;

pub mod e3;
pub mod e4;
pub mod e6;
pub mod e7;

/// Writes an experiment banner with its DESIGN.md id and the claim under
/// test (the `synran_bench::banner` format).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn banner(out: &mut dyn Write, id: &str, claim: &str) -> std::io::Result<()> {
    writeln!(out, "=== {id} ===")?;
    writeln!(out, "claim: {claim}")?;
    writeln!(out)
}

/// Writes a named section divider (the `synran_bench::section` format).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn section(out: &mut dyn Write, title: &str) -> std::io::Result<()> {
    writeln!(out)?;
    writeln!(out, "--- {title} ---")
}

/// The deterministic cell list a spec expands to, without executing
/// anything — `campaign status` and spec linting use this.
///
/// # Errors
///
/// Returns [`LabError::Spec`] for an unknown experiment or malformed
/// parameters.
pub fn campaign_cells(spec: &CampaignSpec) -> Result<Vec<Cell>, LabError> {
    match spec.experiment() {
        "grid" => spec.expand_grid(),
        "e3" => Ok(e3::E3Params::from_spec(spec)?.cells()),
        "e4" => Ok(e4::E4Params::from_spec(spec)?.cells()),
        "e6" => Ok(e6::E6Params::from_spec(spec)?.cells()),
        "e7" => Ok(e7::E7Params::from_spec(spec)?.cells()),
        other => Err(LabError::Spec(format!(
            "unknown experiment {other:?} (expected grid, e3, e4, e6, or e7)"
        ))),
    }
}

/// Runs a campaign end-to-end: expands the spec, executes its cells on
/// `runner` (the in-process engine or a process fleet — output is
/// byte-identical either way), and renders with the experiment's
/// renderer into `out`.
///
/// # Errors
///
/// Propagates spec, execution, and rendering errors.
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    match spec.experiment() {
        "grid" => run_grid(spec, runner, out),
        "e3" => e3::run(&e3::E3Params::from_spec(spec)?, runner, out),
        "e4" => e4::run(&e4::E4Params::from_spec(spec)?, runner, out),
        "e6" => e6::run(&e6::E6Params::from_spec(spec)?, runner, out),
        "e7" => e7::run(&e7::E7Params::from_spec(spec)?, runner, out),
        other => Err(LabError::Spec(format!(
            "unknown experiment {other:?} (expected grid, e3, e4, e6, or e7)"
        ))),
    }
}

/// The generic renderer: one table row per cell, in cell order.
fn run_grid(
    spec: &CampaignSpec,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    let cells = spec.expand_grid()?;
    for cell in &cells {
        validate_cell(cell)?;
    }
    let results = runner.run_cells(&cells)?;
    writeln!(
        out,
        "=== campaign {} (grid, {} cells) ===",
        spec.name(),
        cells.len()
    )?;
    let mut table = Table::new([
        "protocol",
        "adversary",
        "n",
        "t",
        "runs",
        "mean rounds",
        "max",
        "mean kills",
        "ok",
    ]);
    for (cell, result) in cells.iter().zip(&results) {
        table.row([
            cell.protocol.clone(),
            cell.adversary.clone(),
            cell.n.to_string(),
            cell.t.to_string(),
            cell.runs.to_string(),
            fmt_f64(result.mean_rounds(), 1),
            result.max_rounds().map_or("-".into(), |m| m.to_string()),
            fmt_f64(result.mean_kills(), 1),
            if result.all_correct() {
                format!("{}/{}", cell.runs, cell.runs)
            } else {
                format!(
                    "{}/{}",
                    cell.runs - result.timeouts as usize - result.violations as usize,
                    cell.runs
                )
            },
        ]);
    }
    write!(out, "{table}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use synran_sim::Telemetry;

    #[test]
    fn grid_campaign_renders_a_row_per_cell() {
        let spec = CampaignSpec::parse(
            "campaign = demo\nadversary = balancer\nruns = 3\nseed = 5\nsweep n = 8,10\n",
            "demo",
        )
        .unwrap();
        let mut engine = Engine::new(1, Telemetry::off());
        let mut out = Vec::new();
        run_campaign(&spec, &mut engine, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("campaign demo (grid, 2 cells)"), "{text}");
        assert_eq!(text.matches("balancer").count(), 2, "{text}");
        assert!(text.contains("3/3"), "{text}");
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let spec = CampaignSpec::parse("experiment = e99\nn = 8\n", "x").unwrap();
        assert!(campaign_cells(&spec).is_err());
        let mut engine = Engine::new(1, Telemetry::off());
        assert!(run_campaign(&spec, &mut engine, &mut Vec::new()).is_err());
    }

    #[test]
    fn grid_rejects_bad_names_before_running() {
        let spec = CampaignSpec::parse("adversary = flubber\nn = 8\n", "x").unwrap();
        let mut engine = Engine::new(1, Telemetry::off());
        let err = run_campaign(&spec, &mut engine, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("flubber"), "{err}");
        assert_eq!(engine.executed(), 0);
    }
}
