//! E7 — Theorem 3 across the whole fault range: expected rounds
//! `Θ(t/√(n·log(2+t/√n)))`, with an `O(1)` plateau for `t = O(√n)`.
//!
//! The campaign form of `e7_t_sweep`; the binary wraps this preset. The
//! `t` ladder (1, 2, 4, then doubling, capped by `n − 1`) is recomputed
//! per size exactly as the binary's `sweep` did, and each rung is one
//! cell with base seed `seed ^ t`.

use std::io::Write;

use synran_adversary::Balancer;
use synran_analysis::{fmt_f64, tight_bound_rounds, AsciiPlot, ShapeFit, Summary, Table};
use synran_core::{check_consensus_with, SynRan};
use synran_sim::{SimConfig, SimRng};

use crate::artifact::{results_telemetry_path, write_telemetry_jsonl};
use crate::cell::Cell;
use crate::engine::CellRunner;
use crate::presets::{banner, section};
use crate::spec::CampaignSpec;
use crate::LabError;

/// The E7 campaign's parameters.
#[derive(Debug, Clone)]
pub struct E7Params {
    /// System sizes (each sweeps the full `t` ladder).
    pub sizes: Vec<usize>,
    /// Runs per ladder rung.
    pub runs: usize,
    /// Base seed (per-rung base is `seed ^ t`).
    pub seed: u64,
}

/// The binary's full-size default sweep.
pub const DEFAULT_SIZES: [usize; 2] = [256, 1024];

/// The fault ladder for one size: `1, 2, 4, 8, 16, … < n`, then `n − 1`,
/// with consecutive duplicates removed — the binary's `sweep` ladder.
#[must_use]
pub fn t_ladder(n: usize) -> Vec<usize> {
    let mut t_values = vec![1usize, 2, 4];
    let mut t = 8;
    while t < n {
        t_values.push(t);
        t *= 2;
    }
    t_values.push(n - 1);
    t_values.dedup();
    t_values
}

impl E7Params {
    /// Parameters from a campaign spec (`experiment = e7`).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] for unparseable values.
    pub fn from_spec(spec: &CampaignSpec) -> Result<E7Params, LabError> {
        Ok(E7Params {
            sizes: match spec.sweep("n") {
                Some(_) => spec.sweep_usize("n")?,
                None => DEFAULT_SIZES.to_vec(),
            },
            runs: spec.param_usize("runs", 40)?,
            seed: spec.param_u64("seed", 7)?,
        })
    }

    /// The deterministic cell list: per size, one balancer cell per ladder
    /// rung.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &n in &self.sizes {
            for t in t_ladder(n) {
                let mut cell = Cell::new("synran", "balancer", n);
                cell.t = t;
                cell.runs = self.runs;
                cell.seed = self.seed ^ t as u64;
                cells.push(cell);
            }
        }
        cells
    }
}

/// Runs E7 on `runner` and renders the binary's exact output into `out`.
///
/// # Errors
///
/// Propagates execution and I/O errors.
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
pub fn run(
    params: &E7Params,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    let runs = params.runs;
    let cells = params.cells();
    let results = runner.run_cells(&cells)?;
    let mut slots = cells.iter().zip(&results);

    banner(
        out,
        "E7 full fault-range sweep (Theorem 3)",
        "expected rounds = Θ(t/√(n·log(2+t/√n))); O(1) plateau for t = O(√n)",
    )?;
    writeln!(
        out,
        "SynRan vs the coin-band balancer, even-split inputs, {runs} runs/point"
    )?;

    for &n in &params.sizes {
        let sqrt_n = (n as f64).sqrt().round() as usize;
        section(out, &format!("n = {n} (√n = {sqrt_n})"))?;
        let series: Vec<(usize, f64, f64)> = t_ladder(n)
            .into_iter()
            .map(|t| {
                let (cell, result) = slots.next().expect("ladder cell");
                assert!(result.all_correct(), "violations at n={n} t={}", cell.t);
                let s = Summary::of_u32(&result.rounds);
                (t, s.mean(), s.ci95_halfwidth())
            })
            .collect();
        let mut table = Table::new(["t", "mean rounds", "±95%", "curve", "ratio"]);
        let mut plateau: Vec<f64> = Vec::new();
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for &(t, mean, ci) in &series {
            // The protocol has a 2-round floor (decide + stop), so compare
            // against curve + 2 to keep small-t ratios meaningful.
            let curve = tight_bound_rounds(n, t) + 2.0;
            table.row([
                t.to_string(),
                fmt_f64(mean, 1),
                fmt_f64(ci, 1),
                fmt_f64(curve, 1),
                fmt_f64(mean / curve, 2),
            ]);
            if t <= sqrt_n {
                plateau.push(mean);
            } else {
                measured.push(mean);
                predicted.push(curve);
            }
        }
        write!(out, "{table}")?;
        let mut plot = AsciiPlot::new(56, 12).log_x();
        plot.series(
            'm',
            &series
                .iter()
                .map(|&(t, mean, _)| (t as f64, mean))
                .collect::<Vec<_>>(),
        );
        plot.series(
            'c',
            &series
                .iter()
                .map(|&(t, _, _)| (t as f64, tight_bound_rounds(n, t) + 2.0))
                .collect::<Vec<_>>(),
        );
        writeln!(out, "\nmeasured (m) vs curve (c), rounds over t:")?;
        write!(out, "{}", plot.render())?;
        let plateau_span = plateau.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - plateau.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        writeln!(
            out,
            "\nplateau (t ≤ √n): means span {} rounds — the O(1) regime",
            fmt_f64(plateau_span, 1)
        )?;
        if measured.len() >= 2 {
            let fit = ShapeFit::fit(&measured, &predicted);
            writeln!(
                out,
                "growth regime (t > √n): rounds ≈ {} · curve, max rel residual {}",
                fmt_f64(fit.scale(), 2),
                fmt_f64(fit.max_rel_residual(), 2)
            )?;
        }
    }

    // Telemetry artifact: experiment-wide counters plus per-round kill
    // accounting from one representative run — the ladder's top rung
    // (t = n − 1) at the largest size, the same shape E3 writes.
    let rep_n = *params.sizes.last().expect("sizes nonempty");
    let rep_t = rep_n - 1;
    let rep_seed = SimRng::new(params.seed ^ rep_t as u64).derive(0).next_u64();
    let rep_inputs: Vec<synran_sim::Bit> = (0..rep_n)
        .map(|i| synran_sim::Bit::from(i < rep_n / 2))
        .collect();
    let mut rep_adv = Balancer::unbounded();
    let rep_verdict = check_consensus_with(
        &SynRan::new(),
        &rep_inputs,
        SimConfig::new(rep_n)
            .faults(rep_t)
            .seed(rep_seed)
            .max_rounds(200_000),
        &mut rep_adv,
        runner.telemetry(),
    )?;
    let path = results_telemetry_path("e7_t_sweep");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e7_t_sweep".to_string()),
            ("adversary", "balancer".to_string()),
            ("n", rep_n.to_string()),
            ("t", rep_t.to_string()),
            ("seed", params.seed.to_string()),
            ("runs", runs.to_string()),
        ],
        runner.telemetry(),
        rep_verdict.report().metrics().kills_per_round(),
        rep_n,
    )?;
    writeln!(out, "\ntelemetry: {}", path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_the_binary_sweep() {
        assert_eq!(t_ladder(256), vec![1, 2, 4, 8, 16, 32, 64, 128, 255]);
        assert_eq!(t_ladder(9), vec![1, 2, 4, 8]);
        assert_eq!(t_ladder(5), vec![1, 2, 4]);
    }

    #[test]
    fn cell_list_covers_every_rung() {
        let params = E7Params {
            sizes: vec![16],
            runs: 5,
            seed: 7,
        };
        let cells = params.cells();
        assert_eq!(cells.len(), t_ladder(16).len());
        assert!(cells.iter().all(|c| c.adversary == "balancer"));
        assert!(cells.iter().all(|c| c.seed == 7 ^ c.t as u64));
        assert!(cells.iter().all(|c| c.max_rounds == 200_000));
    }

    #[test]
    fn spec_defaults_match_the_binary_defaults() {
        let spec = CampaignSpec::parse("experiment = e7\n", "e7").unwrap();
        let params = E7Params::from_spec(&spec).unwrap();
        assert_eq!(params.sizes, DEFAULT_SIZES);
        assert_eq!((params.runs, params.seed), (40, 7));
    }
}
