//! E6 — Lemma 4.4 / Corollary 4.5: the explicit binomial large-deviation
//! lower bound.
//!
//! The campaign form of `e6_large_deviation`; the binary wraps this
//! preset. Unlike E3/E4/E7 this experiment runs **no consensus cells** —
//! it is pure analysis (exact log-space binomial tails vs the paper's
//! bound, plus a Monte-Carlo coin experiment on the simulator's RNG) —
//! so its cell list is empty and the campaign journal records only the
//! header. The campaign path still buys the shared telemetry artifact
//! convention (`results/e6_large_deviation.telemetry.jsonl`) and
//! `campaign status` / `synran report` integration.

use std::io::Write;

use synran_analysis::{corollary_4_5, fmt_f64, lemma_4_4_bound, Binomial, Table};
use synran_sim::SimRng;

use crate::artifact::{results_telemetry_path, write_telemetry_jsonl};
use crate::cell::Cell;
use crate::engine::CellRunner;
use crate::presets::{banner, section};
use crate::spec::CampaignSpec;
use crate::LabError;

/// The E6 campaign's parameters.
#[derive(Debug, Clone)]
pub struct E6Params {
    /// Monte-Carlo trials per `(n, deviation)` point.
    pub trials: usize,
    /// RNG seed for the Monte-Carlo section.
    pub seed: u64,
}

/// Sizes for the Lemma 4.4 exact-tail table.
const LEMMA_SIZES: [usize; 6] = [64, 256, 1024, 4096, 16384, 65536];

/// Sizes for the Corollary 4.5 Monte-Carlo table.
const COROLLARY_SIZES: [usize; 4] = [64, 256, 1024, 4096];

impl E6Params {
    /// Parameters from a campaign spec (`experiment = e6`).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] for unparseable values.
    pub fn from_spec(spec: &CampaignSpec) -> Result<E6Params, LabError> {
        Ok(E6Params {
            trials: spec.param_usize("trials", 20_000)?,
            seed: spec.param_u64("seed", 6)?,
        })
    }

    /// E6 is pure analysis: no consensus cells, ever.
    #[must_use]
    #[allow(clippy::unused_self)]
    pub fn cells(&self) -> Vec<Cell> {
        Vec::new()
    }
}

/// Empirical tail probability of `ones(n coins) ≥ n/2 + deviation` over
/// `trials` experiments, drawing 64 coins per RNG word — the binary's
/// exact sampling loop, bit for bit.
#[allow(clippy::cast_precision_loss)]
fn monte_carlo_tail(n: usize, deviation: f64, trials: usize, rng: &mut SimRng) -> f64 {
    let threshold = n as f64 / 2.0 + deviation;
    let mut hits = 0usize;
    for _ in 0..trials {
        let mut ones = 0usize;
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(64);
            let word = rng.next_u64();
            let masked = if take == 64 {
                word
            } else {
                word & ((1u64 << take) - 1)
            };
            ones += masked.count_ones() as usize;
            remaining -= take;
        }
        if ones as f64 >= threshold {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Runs E6 on `runner` and renders the binary's exact output into `out`.
///
/// # Errors
///
/// Propagates execution and I/O errors.
#[allow(clippy::cast_precision_loss)]
pub fn run(
    params: &E6Params,
    runner: &mut dyn CellRunner,
    out: &mut dyn Write,
) -> Result<(), LabError> {
    // No cells — but running the empty list keeps the journal/cache
    // bookkeeping identical to every other preset (and is a no-op under
    // the fleet: nothing pending, nothing spawned).
    runner.run_cells(&params.cells())?;
    let telemetry = runner.telemetry();

    banner(
        out,
        "E6 large-deviation bound (Lemma 4.4 / Corollary 4.5)",
        "Pr(x − E ≥ t√n) ≥ e^{−4(t+1)²}/√(2π) for t < √n/8",
    )?;

    section(out, "Lemma 4.4: exact tail vs bound")?;
    let mut table = Table::new([
        "n",
        "t",
        "deviation t√n",
        "exact tail",
        "bound",
        "exact ≥ bound",
    ]);
    let mut violations = 0usize;
    for n in LEMMA_SIZES {
        let b = Binomial::fair(n);
        let sqrt_n = (n as f64).sqrt();
        for t in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            if t >= sqrt_n / 8.0 {
                continue;
            }
            let exact = b.deviation_tail(t * sqrt_n);
            let bound = lemma_4_4_bound(t);
            let ok = exact >= bound;
            if !ok {
                violations += 1;
            }
            telemetry.incr("e6.lemma44.points", 1);
            table.row([
                n.to_string(),
                fmt_f64(t, 2),
                fmt_f64(t * sqrt_n, 1),
                format!("{exact:.3e}"),
                format!("{bound:.3e}"),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    write!(out, "{table}")?;
    writeln!(out, "\nviolations: {violations} (expected 0)")?;
    telemetry.incr("e6.lemma44.violations", violations as u64);

    section(
        out,
        "Corollary 4.5: deviation √(n·log n)/8 has probability ≥ √(log n/n)",
    )?;
    let mut cor_table = Table::new([
        "n",
        "deviation",
        "exact tail",
        "√(ln n/n)",
        "Monte-Carlo",
        "holds",
    ]);
    let mut rng = SimRng::new(params.seed);
    for n in COROLLARY_SIZES {
        let (dev, bound) = corollary_4_5(n);
        let exact = Binomial::fair(n).deviation_tail(dev);
        let mc = monte_carlo_tail(n, dev, params.trials, &mut rng);
        telemetry.incr("e6.corollary45.trials", params.trials as u64);
        if exact < bound {
            telemetry.incr("e6.corollary45.violations", 1);
        }
        cor_table.row([
            n.to_string(),
            fmt_f64(dev, 1),
            fmt_f64(exact, 4),
            fmt_f64(bound, 4),
            fmt_f64(mc, 4),
            if exact >= bound { "yes" } else { "NO" }.to_string(),
        ]);
    }
    write!(out, "{cor_table}")?;
    writeln!(
        out,
        "\nreading: this tail is why the adversary must pay ~√(p·log p) kills per"
    )?;
    writeln!(
        out,
        "block to stall SynRan (Lemma 4.6) — the coin overshoots the 6p/10 line"
    )?;
    writeln!(out, "with probability ≥ √(log p/p) every round.")?;

    // Telemetry artifact: the analysis counters. No consensus runs here,
    // so there is no per-round kill series — `n` only scales the (unused)
    // cap annotation.
    let path = results_telemetry_path("e6_large_deviation");
    write_telemetry_jsonl(
        &path,
        &[
            ("experiment", "e6_large_deviation".to_string()),
            ("trials", params.trials.to_string()),
            ("seed", params.seed.to_string()),
        ],
        telemetry,
        &[],
        *LEMMA_SIZES.last().expect("sizes nonempty"),
    )?;
    writeln!(out, "\ntelemetry: {}", path.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use synran_sim::{Telemetry, TelemetryMode};

    #[test]
    fn cell_list_is_empty_by_construction() {
        let params = E6Params {
            trials: 10,
            seed: 6,
        };
        assert!(params.cells().is_empty());
    }

    #[test]
    fn spec_defaults_match_the_binary_defaults() {
        let spec = CampaignSpec::parse("experiment = e6\n", "e6").unwrap();
        let params = E6Params::from_spec(&spec).unwrap();
        assert_eq!((params.trials, params.seed), (20_000, 6));
    }

    #[test]
    fn renders_both_sections_and_counts_points() {
        let params = E6Params {
            trials: 50, // tiny MC so the test stays fast
            seed: 6,
        };
        let mut engine = Engine::new(1, Telemetry::new(TelemetryMode::Counters));
        let mut out = Vec::new();
        run(&params, &mut engine, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("=== E6 large-deviation bound"), "{text}");
        assert!(text.contains("violations: 0 (expected 0)"), "{text}");
        assert!(text.contains("Monte-Carlo"), "{text}");
        assert!(text.contains("telemetry: "), "{text}");
        // 5 t-values per size, except n = 64 where t = 1.0 hits the
        // t < √n/8 wall: 4 + 5·5 = 29 points.
        let snap = engine.telemetry().snapshot();
        assert_eq!(snap.counter("e6.lemma44.points"), Some(29));
        assert_eq!(snap.counter("e6.lemma44.violations"), Some(0));
        let _ = std::fs::remove_file("results/e6_large_deviation.telemetry.jsonl");
        let _ = std::fs::remove_dir("results");
    }
}
