//! The unit of campaign work: one fully-resolved parameter cell.
//!
//! A campaign spec expands into a flat, deterministic list of [`Cell`]s.
//! Every cell carries *all* the parameters its execution depends on —
//! protocol, adversary (with its numeric knobs), system size, fault
//! budget, input split, batch size, base seed, and the round limit — so a
//! cell's [content hash](Cell::content_hash) is a complete key for its
//! [`CellResult`]. Two campaigns that happen to share a cell share its
//! cached result, whatever their specs look like otherwise.

use std::fmt::Write as _;

/// The cell-encoding version baked into every content hash. Bump it when
/// the meaning of any cell field (or the execution semantics behind it)
/// changes, so stale journal entries stop matching.
pub const CELL_SCHEMA_VERSION: u32 = 1;

/// One fully-resolved grid point of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Protocol name (`synran`, `symmetric`, `flooding`, `leader`).
    pub protocol: String,
    /// Adversary name (the CLI's vocabulary: `passive`, `random`, `storm`,
    /// `oblivious`, `kill-ones`, `kill-zeros`, `balancer`, `lower-bound`,
    /// `walker`, `hunter`).
    pub adversary: String,
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Processes with input 1 (the rest get 0).
    pub ones: usize,
    /// Seeded executions in the cell's batch.
    pub runs: usize,
    /// Base seed; per-run seeds are derived exactly as
    /// [`synran_core::run_batch`] derives them.
    pub seed: u64,
    /// Round limit per execution.
    pub max_rounds: u32,
    /// Adversary per-round kill cap (0 = the adversary's own default).
    pub cap: usize,
    /// Valency-probe fork count for probing adversaries (0 = default).
    pub samples: usize,
    /// Fork exploration horizon for probing adversaries (0 = default).
    pub horizon: u32,
    /// Kill rate for rate-based adversaries (0 = `⌈√n⌉`).
    pub rate: usize,
}

impl Cell {
    /// A cell with the conventional defaults for `(protocol, adversary,
    /// n)`: `t = n − 1`, an even input split, and the adversary knobs left
    /// at their defaults.
    #[must_use]
    pub fn new(protocol: &str, adversary: &str, n: usize) -> Cell {
        Cell {
            protocol: protocol.to_string(),
            adversary: adversary.to_string(),
            n,
            t: n.saturating_sub(1),
            ones: n / 2,
            runs: 10,
            seed: 1,
            max_rounds: 200_000,
            cap: 0,
            samples: 0,
            horizon: 0,
            rate: 0,
        }
    }

    /// The canonical encoding the content hash is computed over: a `|`
    /// separated `key=value` string with every field in declaration order,
    /// prefixed by the schema version.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "v{}|protocol={}|adversary={}|n={}|t={}|ones={}|runs={}|seed={}|max_rounds={}|cap={}|samples={}|horizon={}|rate={}",
            CELL_SCHEMA_VERSION,
            self.protocol,
            self.adversary,
            self.n,
            self.t,
            self.ones,
            self.runs,
            self.seed,
            self.max_rounds,
            self.cap,
            self.samples,
            self.horizon,
            self.rate,
        );
        s
    }

    /// The cell's stable content hash: 64-bit FNV-1a over
    /// [`canonical`](Cell::canonical), as 16 lowercase hex digits.
    #[must_use]
    pub fn content_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

/// 64-bit FNV-1a — the in-tree content hash (no external hasher, stable
/// across platforms and releases, unlike `DefaultHasher`).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The aggregated observations of one executed cell, in seed order.
///
/// This is exactly the information [`synran_core::BatchOutcome`] exposes,
/// flattened into a journal-serialisable form (raw per-run vectors rather
/// than pre-digested statistics, so any renderer can recompute whatever
/// summary it needs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellResult {
    /// Round counts of the completed runs, in seed order.
    pub rounds: Vec<u32>,
    /// Adversary kills per completed run, in seed order.
    pub kills: Vec<u64>,
    /// Runs aborted by the round limit.
    pub timeouts: u32,
    /// Runs that violated a consensus condition.
    pub violations: u32,
}

impl CellResult {
    /// Mean rounds across completed runs (0 when none completed).
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.iter().map(|&r| f64::from(r)).sum::<f64>() / self.rounds.len() as f64
        }
    }

    /// Largest observed round count.
    #[must_use]
    pub fn max_rounds(&self) -> Option<u32> {
        self.rounds.iter().copied().max()
    }

    /// Mean kills across completed runs (0 when none completed).
    #[must_use]
    pub fn mean_kills(&self) -> f64 {
        if self.kills.is_empty() {
            0.0
        } else {
            self.kills.iter().map(|&k| k as f64).sum::<f64>() / self.kills.len() as f64
        }
    }

    /// `true` when every run completed and satisfied all three consensus
    /// conditions.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.timeouts == 0 && self.violations == 0
    }
}

/// Encodes a completed cell as one JSONL journal line with a stable field
/// order (`"type"` first, then the cell fields in declaration order, then
/// the result), matching the telemetry sink conventions.
#[must_use]
pub fn to_jsonl(cell: &Cell, result: &CellResult) -> String {
    format!(
        "{{\"type\":\"cell\",\"hash\":\"{}\",{},{}}}",
        cell.content_hash(),
        cell_fields_json(cell),
        result_fields_json(result),
    )
}

/// The cell fields as a comma-joined flat-JSON fragment in declaration
/// order (no surrounding braces). Shared by [`to_jsonl`] and the fleet
/// wire protocol so a cell serialises identically on both paths.
pub(crate) fn cell_fields_json(cell: &Cell) -> String {
    format!(
        "\"protocol\":\"{}\",\"adversary\":\"{}\",\
         \"n\":{},\"t\":{},\"ones\":{},\"runs\":{},\"seed\":{},\"max_rounds\":{},\
         \"cap\":{},\"samples\":{},\"horizon\":{},\"rate\":{}",
        cell.protocol,
        cell.adversary,
        cell.n,
        cell.t,
        cell.ones,
        cell.runs,
        cell.seed,
        cell.max_rounds,
        cell.cap,
        cell.samples,
        cell.horizon,
        cell.rate,
    )
}

/// The result fields as a comma-joined flat-JSON fragment (no surrounding
/// braces), the dual of [`cell_fields_json`].
pub(crate) fn result_fields_json(result: &CellResult) -> String {
    format!(
        "\"rounds\":{},\"kills\":{},\"timeouts\":{},\"violations\":{}",
        u64_array_json(&self_rounds(result)),
        u64_array_json(&result.kills),
        result.timeouts,
        result.violations,
    )
}

/// Decodes the cell fields out of any flat JSON object that embeds the
/// [`cell_fields_json`] fragment. Shared by [`from_jsonl`] and the fleet
/// wire protocol.
pub(crate) fn cell_from_flat_json(line: &str) -> Option<Cell> {
    Some(Cell {
        protocol: json_str_field(line, "protocol")?.to_string(),
        adversary: json_str_field(line, "adversary")?.to_string(),
        n: usize::try_from(json_u64_field(line, "n")?).ok()?,
        t: usize::try_from(json_u64_field(line, "t")?).ok()?,
        ones: usize::try_from(json_u64_field(line, "ones")?).ok()?,
        runs: usize::try_from(json_u64_field(line, "runs")?).ok()?,
        seed: json_u64_field(line, "seed")?,
        max_rounds: u32::try_from(json_u64_field(line, "max_rounds")?).ok()?,
        cap: usize::try_from(json_u64_field(line, "cap")?).ok()?,
        samples: usize::try_from(json_u64_field(line, "samples")?).ok()?,
        horizon: u32::try_from(json_u64_field(line, "horizon")?).ok()?,
        rate: usize::try_from(json_u64_field(line, "rate")?).ok()?,
    })
}

/// Decodes the result fields out of any flat JSON object that embeds the
/// [`result_fields_json`] fragment.
pub(crate) fn result_from_flat_json(line: &str) -> Option<CellResult> {
    let rounds_u64 = json_u64_array_field(line, "rounds")?;
    Some(CellResult {
        rounds: rounds_u64
            .iter()
            .map(|&r| u32::try_from(r).ok())
            .collect::<Option<Vec<u32>>>()?,
        kills: json_u64_array_field(line, "kills")?,
        timeouts: u32::try_from(json_u64_field(line, "timeouts")?).ok()?,
        violations: u32::try_from(json_u64_field(line, "violations")?).ok()?,
    })
}

fn self_rounds(result: &CellResult) -> Vec<u64> {
    result.rounds.iter().map(|&r| u64::from(r)).collect()
}

fn u64_array_json(values: &[u64]) -> String {
    let mut s = String::with_capacity(2 + values.len() * 4);
    s.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Decodes a journal line produced by [`to_jsonl`].
///
/// Returns `None` for malformed or truncated lines *and* for well-formed
/// objects of an unknown `"type"` — the same forward-compatibility
/// contract as [`synran_sim::Event::from_json`]: readers skip what they
/// don't understand rather than failing the stream.
#[must_use]
pub fn from_jsonl(line: &str) -> Option<(String, Cell, CellResult)> {
    let line = line.trim();
    if !line.ends_with('}') {
        return None; // Truncated tail of a killed writer.
    }
    if json_str_field(line, "type")? != "cell" {
        return None;
    }
    let hash = json_str_field(line, "hash")?.to_string();
    let cell = cell_from_flat_json(line)?;
    let result = result_from_flat_json(line)?;
    Some((hash, cell, result))
}

/// Extracts the string value of `"key":"..."` from a flat JSON object.
pub(crate) fn json_str_field<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = s.find(&needle)? + needle.len();
    let end = s[start..].find('"')?;
    Some(&s[start..start + end])
}

/// Extracts the numeric value of `"key":<digits>` from a flat JSON object.
pub(crate) fn json_u64_field(s: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = s.find(&needle)? + needle.len();
    let digits: &str = &s[start..start + s[start..].find(|c: char| !c.is_ascii_digit())?];
    digits.parse().ok()
}

/// Extracts `"key":[1,2,3]` as a vector (empty for `[]`).
fn json_u64_array_field(s: &str, key: &str) -> Option<Vec<u64>> {
    let needle = format!("\"{key}\":[");
    let start = s.find(&needle)? + needle.len();
    let end = s[start..].find(']')?;
    let body = &s[start..start + end];
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> Cell {
        Cell {
            seed: 42,
            runs: 3,
            cap: 19,
            samples: 3,
            horizon: 32,
            ..Cell::new("synran", "lower-bound", 16)
        }
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let cell = sample_cell();
        assert_eq!(cell.content_hash(), cell.clone().content_hash());
        assert_eq!(cell.content_hash().len(), 16);
        let mut other = cell.clone();
        other.seed += 1;
        assert_ne!(cell.content_hash(), other.content_hash());
        let mut renamed = cell.clone();
        renamed.adversary = "passive".into();
        assert_ne!(cell.content_hash(), renamed.content_hash());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn jsonl_round_trips() {
        let cell = sample_cell();
        let result = CellResult {
            rounds: vec![5, 7, 6],
            kills: vec![12, 0, 9],
            timeouts: 0,
            violations: 0,
        };
        let line = to_jsonl(&cell, &result);
        assert!(line.starts_with("{\"type\":\"cell\",\"hash\":\""));
        let (hash, decoded_cell, decoded_result) = from_jsonl(&line).expect("round trip");
        assert_eq!(hash, cell.content_hash());
        assert_eq!(decoded_cell, cell);
        assert_eq!(decoded_result, result);
    }

    #[test]
    fn jsonl_rejects_truncation_and_unknown_types() {
        let line = to_jsonl(&sample_cell(), &CellResult::default());
        for cut in [line.len() - 1, line.len() / 2, 1] {
            assert_eq!(from_jsonl(&line[..cut]), None, "cut at {cut}");
        }
        assert_eq!(from_jsonl("{\"type\":\"campaign\",\"name\":\"x\"}"), None);
        assert_eq!(from_jsonl(""), None);
    }

    #[test]
    fn empty_result_round_trips() {
        let cell = sample_cell();
        let result = CellResult {
            rounds: vec![],
            kills: vec![],
            timeouts: 3,
            violations: 0,
        };
        let (_, _, decoded) = from_jsonl(&to_jsonl(&cell, &result)).unwrap();
        assert_eq!(decoded, result);
        assert_eq!(decoded.mean_rounds(), 0.0);
        assert_eq!(decoded.max_rounds(), None);
        assert!(!decoded.all_correct());
    }

    #[test]
    fn result_summaries() {
        let r = CellResult {
            rounds: vec![4, 8],
            kills: vec![2, 4],
            timeouts: 0,
            violations: 0,
        };
        assert_eq!(r.mean_rounds(), 6.0);
        assert_eq!(r.max_rounds(), Some(8));
        assert_eq!(r.mean_kills(), 3.0);
        assert!(r.all_correct());
    }
}
