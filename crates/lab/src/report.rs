//! `synran report` — deterministic renderings of telemetry and journal
//! streams.
//!
//! A [`Report`] ingests any mix of `results/*.telemetry.jsonl` and
//! `results/*.journal.jsonl` files and renders them as aligned tables
//! ([`ReportFormat::Table`]), a flat JSON summary ([`ReportFormat::Json`]),
//! or a folded-stack profile for flamegraph tooling
//! ([`ReportFormat::Folded`]). Every rendering is a **pure function of
//! the input bytes**: no clocks, no environment, no thread-count
//! sensitivity — re-running `synran report` on the same files yields
//! byte-identical output (pinned by `tests/report_cli.rs`).
//!
//! [`Report::check`] is the gatekeeper mode: it re-parses every line and
//! fails on malformed or truncated streams, so CI can assert artifact
//! integrity without knowing anything about their contents.
//!
//! Like the progress sink, this module is read-only over experiment
//! outputs — nothing here may ever feed back into simulation results.

use std::collections::BTreeMap;
use std::path::Path;

use synran_analysis::{fmt_f64, Table};
use synran_sim::telemetry::aggregate::{worker_busy_ns, TelemetryStream};
use synran_sim::telemetry::per_round_kill_cap;
use synran_sim::{OwnedSpan, PhaseStat, SpanNode, SpanTree};

use crate::fleet::{scan_fleet_sidecar, FleetStatus};
use crate::journal::{scan_journal, JournalScan};
use crate::LabError;

/// Output renderings of `synran report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Aligned text tables (the default).
    Table,
    /// A flat, deterministic JSON summary.
    Json,
    /// Folded-stack lines (`a;b;c self_ns`) for flamegraph tooling.
    Folded,
}

impl ReportFormat {
    /// Parses a `--format` value.
    ///
    /// # Errors
    ///
    /// Returns a [`LabError::Spec`] naming the valid values.
    pub fn parse(s: &str) -> Result<ReportFormat, LabError> {
        match s {
            "table" => Ok(ReportFormat::Table),
            "json" => Ok(ReportFormat::Json),
            "folded" => Ok(ReportFormat::Folded),
            other => Err(LabError::Spec(format!(
                "unknown report format '{other}' (expected table, json, or folded)"
            ))),
        }
    }
}

/// A report over one or more ingested artifact files.
#[derive(Debug, Default)]
pub struct Report {
    telemetry: Vec<(String, TelemetryStream)>,
    journals: Vec<(String, JournalScan)>,
    fleets: Vec<(String, FleetStatus)>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Report {
        Report::default()
    }

    /// Ingests `path`, classifying it by name: `*.journal.jsonl` parses
    /// as a campaign journal, `*.fleet.jsonl` as a fleet sidecar, and
    /// anything else as a telemetry stream.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read (a *parse*
    /// problem is never an error here — it lands in the per-file
    /// accounting that [`Report::check`] inspects).
    pub fn load(&mut self, path: &Path) -> Result<(), LabError> {
        let name = path.display().to_string();
        if name.ends_with(".journal.jsonl") {
            self.journals.push((name, scan_journal(path)?));
        } else if name.ends_with(".fleet.jsonl") {
            // The sidecar scanner treats a missing file as "clean
            // completion", but a path named on the command line must
            // exist — surface the I/O error the caller expects.
            let status = scan_fleet_sidecar(path)?.ok_or_else(|| {
                LabError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no such file",
                ))
            })?;
            self.fleets.push((name, status));
        } else {
            let file = std::fs::File::open(path)?;
            let stream = TelemetryStream::read(std::io::BufReader::new(file))?;
            self.telemetry.push((name, stream));
        }
        Ok(())
    }

    /// Adds an already-parsed telemetry stream under `name` (tests).
    pub fn add_telemetry(&mut self, name: &str, stream: TelemetryStream) {
        self.telemetry.push((name.to_string(), stream));
    }

    /// Renders the report in `format`.
    #[must_use]
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Table => self.render_table(),
            ReportFormat::Json => self.render_json(),
            ReportFormat::Folded => self.render_folded(),
        }
    }

    /// Integrity mode: per-file accounting plus a verdict. `Ok` text
    /// means every line of every file parsed (unknown-but-well-formed
    /// event types are allowed — forward compatibility); `Err` text
    /// means at least one malformed/truncated line, or a telemetry file
    /// with no recognizable events at all.
    ///
    /// # Errors
    ///
    /// Returns the accounting text as the error value on failure, so the
    /// CLI can print it and exit nonzero.
    pub fn check(&self) -> Result<String, String> {
        let mut out = String::new();
        let mut ok = true;
        for (name, stream) in &self.telemetry {
            let events = stream.events();
            let bad = stream.malformed > 0 || events == 0;
            ok &= !bad;
            out.push_str(&format!(
                "{}: {} lines, {} events, {} unknown, {} malformed{}\n",
                name,
                stream.lines,
                events,
                stream.unknown,
                stream.malformed,
                if bad { "  [FAIL]" } else { "" },
            ));
        }
        for (name, scan) in &self.journals {
            let bad = scan.skipped > 0 || (scan.entries == 0 && scan.header.is_none());
            ok &= !bad;
            out.push_str(&format!(
                "{}: {} lines, {} cells, {} dropped{}{}\n",
                name,
                scan.lines,
                scan.entries,
                scan.skipped,
                scan.header
                    .as_ref()
                    .map(|h| format!(", campaign '{}' ({} declared)", h.name, h.cells))
                    .unwrap_or_default(),
                if bad { "  [FAIL]" } else { "" },
            ));
        }
        for (name, status) in &self.fleets {
            // The sidecar scanner is forgiving by design (a killed
            // supervisor truncates mid-line), so presence is accounting,
            // never a failure.
            out.push_str(&format!(
                "{}: {} workers, {} leases outstanding, {} restarts, {} failed\n",
                name,
                status.workers.len(),
                status.outstanding,
                status.restarts,
                status.failed,
            ));
        }
        if self.telemetry.is_empty() && self.journals.is_empty() && self.fleets.is_empty() {
            return Err("no input files\n".to_string());
        }
        if ok {
            Ok(out)
        } else {
            Err(out)
        }
    }

    /// Per-file span trees (a tree mixes only spans that share an epoch).
    fn trees(&self) -> Vec<(&str, SpanTree)> {
        self.telemetry
            .iter()
            .map(|(name, stream)| (name.as_str(), stream.span_tree()))
            .collect()
    }

    /// Phase stats merged by name across every file's tree.
    fn merged_phases(&self) -> Vec<(String, PhaseStat)> {
        let mut merged: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for (_, tree) in self.trees() {
            for (name, stat) in tree.phases() {
                let entry = merged.entry(name).or_default();
                let mut sum = *entry;
                // `PhaseStat::merge` is private to the sim crate; fold by
                // hand with the same semantics.
                if sum.count == 0 {
                    sum = stat;
                } else {
                    sum.count += stat.count;
                    sum.total_ns += stat.total_ns;
                    sum.self_ns += stat.self_ns;
                    sum.min_ns = sum.min_ns.min(stat.min_ns);
                    sum.max_ns = sum.max_ns.max(stat.max_ns);
                }
                *entry = sum;
            }
        }
        merged.into_iter().collect()
    }

    /// Folded stacks summed across files, in lexicographic stack order.
    fn folded_stacks(&self) -> BTreeMap<String, u64> {
        fn walk(nodes: &[SpanNode], prefix: &str, into: &mut BTreeMap<String, u64>) {
            for node in nodes {
                let stack = if prefix.is_empty() {
                    node.name.clone()
                } else {
                    format!("{prefix};{}", node.name)
                };
                if node.stat.self_ns > 0 || node.children.is_empty() {
                    *into.entry(stack.clone()).or_insert(0) += node.stat.self_ns;
                }
                walk(&node.children, &stack, into);
            }
        }
        let mut stacks = BTreeMap::new();
        for (_, tree) in self.trees() {
            walk(&tree.roots, "", &mut stacks);
        }
        stacks
    }

    /// A counter summed across every telemetry file.
    fn counter_sum(&self, name: &str) -> Option<u64> {
        let mut sum = 0;
        let mut seen = false;
        for (_, stream) in &self.telemetry {
            if let Some(v) = stream.counters.get(name) {
                sum += v;
                seen = true;
            }
        }
        seen.then_some(sum)
    }

    /// All spans across every telemetry file (utilization only — never
    /// tree-folded, since epochs differ between files).
    fn all_spans(&self) -> Vec<OwnedSpan> {
        self.telemetry
            .iter()
            .flat_map(|(_, s)| s.spans.iter().cloned())
            .collect()
    }

    fn render_table(&self) -> String {
        let mut out = String::new();

        let phases = self.merged_phases();
        out.push_str("## Phases\n\n");
        if phases.is_empty() {
            out.push_str("(no spans — run with telemetry = spans)\n");
        } else {
            let mut t = Table::new(["phase", "count", "total_ns", "self_ns", "child_ns"]);
            for (name, stat) in &phases {
                t.row([
                    name.clone(),
                    stat.count.to_string(),
                    stat.total_ns.to_string(),
                    stat.self_ns.to_string(),
                    stat.child_ns().to_string(),
                ]);
            }
            out.push_str(&t.to_string());
        }

        out.push_str("\n## Kill budget vs cap\n\n");
        let rows: Vec<_> = self
            .telemetry
            .iter()
            .flat_map(|(_, s)| s.round_kills.iter())
            .collect();
        if rows.is_empty() {
            out.push_str("(no round_kills events)\n");
        } else {
            let mut t = Table::new(["round", "kills", "cap", "spend_pct", "over_cap"]);
            for r in rows {
                #[allow(clippy::cast_precision_loss)]
                let spend = if r.cap == 0 {
                    0.0
                } else {
                    r.kills as f64 * 100.0 / r.cap as f64
                };
                t.row([
                    r.round.to_string(),
                    r.kills.to_string(),
                    r.cap.to_string(),
                    fmt_f64(spend, 1),
                    if r.over_cap { "YES" } else { "no" }.to_string(),
                ]);
            }
            out.push_str(&t.to_string());
        }
        if let Some(n) = self.meta_n() {
            out.push_str(&format!(
                "(cap for n = {n}: ceil(4*sqrt(n*ln n)) + 1 = {})\n",
                per_round_kill_cap(n)
            ));
        }

        out.push_str("\n## Valency probes\n\n");
        let zero = self.counter_sum("valency.probe.decided_zero");
        let one = self.counter_sum("valency.probe.decided_one");
        let undecided = self.counter_sum("valency.probe.undecided");
        if zero.is_none() && one.is_none() && undecided.is_none() {
            out.push_str("(no valency counters)\n");
        } else {
            let mut t = Table::new(["outcome", "probes"]);
            t.row(["decided_zero", &zero.unwrap_or(0).to_string()]);
            t.row(["decided_one", &one.unwrap_or(0).to_string()]);
            t.row(["undecided", &undecided.unwrap_or(0).to_string()]);
            out.push_str(&t.to_string());
        }

        out.push_str("\n## Campaign\n\n");
        let mut t = Table::new(["metric", "value"]);
        let mut campaign_rows = false;
        if let (Some(total), Some(cached)) = (
            self.counter_sum("lab.cells.total"),
            self.counter_sum("lab.cells.cached"),
        ) {
            campaign_rows = true;
            #[allow(clippy::cast_precision_loss)]
            let rate = if total == 0 {
                0.0
            } else {
                cached as f64 * 100.0 / total as f64
            };
            t.row(["cache_hit_pct", &fmt_f64(rate, 1)]);
        }
        if let (Some(executed), Some(elapsed)) = (
            self.counter_sum("lab.cells.executed"),
            self.counter_sum("lab.elapsed_ns"),
        ) {
            campaign_rows = true;
            #[allow(clippy::cast_precision_loss)]
            let per_sec = if elapsed == 0 {
                0.0
            } else {
                executed as f64 / (elapsed as f64 / 1e9)
            };
            t.row(["cells_per_sec", &fmt_f64(per_sec, 1)]);
        }
        for key in [
            "fleet.leases.issued",
            "fleet.leases.reissued",
            "fleet.worker.restarts",
            "fleet.heartbeat.gaps",
            "fleet.stale_results",
            "fleet.cells.failed",
        ] {
            if let Some(v) = self.counter_sum(key) {
                campaign_rows = true;
                t.row([key, &v.to_string()]);
            }
        }
        for (name, scan) in &self.journals {
            campaign_rows = true;
            t.row(["journal", name.as_str()]);
            t.row(["journal_cells", &scan.entries.to_string()]);
            t.row(["journal_dropped_lines", &scan.skipped.to_string()]);
            if let Some(h) = &scan.header {
                t.row(["journal_declared_cells", &h.cells.to_string()]);
            }
        }
        if campaign_rows {
            out.push_str(&t.to_string());
        } else {
            out.push_str("(no campaign counters or journals)\n");
        }

        for (name, status) in &self.fleets {
            out.push_str(&format!("\n## Fleet — {name}\n\n"));
            if status.workers.is_empty() {
                out.push_str("(no worker connect events)\n");
            } else {
                let mut t = Table::new(["slot", "transport", "peer", "connects", "reconnects"]);
                for w in &status.workers {
                    t.row([
                        w.slot.to_string(),
                        w.transport.clone(),
                        w.peer.clone(),
                        w.connects.to_string(),
                        w.reconnects().to_string(),
                    ]);
                }
                out.push_str(&t.to_string());
            }
            out.push_str(&format!(
                "({} procs, {} leases outstanding, {} restarts, {} cells failed)\n",
                status.procs, status.outstanding, status.restarts, status.failed
            ));
        }

        for (name, scan) in &self.journals {
            if scan.rows.is_empty() {
                continue;
            }
            out.push_str(&format!("\n## Cells — {name}\n\n"));
            let mut t = Table::new([
                "protocol",
                "adversary",
                "n",
                "t",
                "runs",
                "seed",
                "mean_rounds",
                "max_rounds",
                "mean_kills",
                "ok",
            ]);
            for (cell, result) in &scan.rows {
                let ok = result.timeouts == 0 && result.violations == 0;
                t.row([
                    cell.protocol.clone(),
                    cell.adversary.clone(),
                    cell.n.to_string(),
                    cell.t.to_string(),
                    cell.runs.to_string(),
                    cell.seed.to_string(),
                    fmt_f64(result.mean_rounds(), 2),
                    result
                        .max_rounds()
                        .map_or_else(|| "-".to_string(), |r| r.to_string()),
                    fmt_f64(result.mean_kills(), 2),
                    if ok {
                        "yes".to_string()
                    } else {
                        format!("{}to/{}viol", result.timeouts, result.violations)
                    },
                ]);
            }
            out.push_str(&t.to_string());
        }

        out.push_str("\n## Pool\n\n");
        let mut t = Table::new(["metric", "value"]);
        let mut pool_rows = false;
        for key in ["pool.spawned", "pool.reused", "pool.tasks", "pool.inline"] {
            if let Some(v) = self.counter_sum(key) {
                pool_rows = true;
                t.row([key, &v.to_string()]);
            }
        }
        for (_, stream) in &self.telemetry {
            if let Some(h) = stream.histograms.get("pool.utilization") {
                pool_rows = true;
                t.row(["pool.utilization_mean_pct", &fmt_f64(h.mean(), 1)]);
                t.row(["pool.utilization_min_pct", &h.min.to_string()]);
                t.row(["pool.utilization_max_pct", &h.max.to_string()]);
                break;
            }
        }
        let busy = worker_busy_ns(&self.all_spans());
        if !busy.is_empty() {
            pool_rows = true;
            for (worker, ns) in &busy {
                t.row([format!("worker_{worker}_busy_ns"), ns.to_string()]);
            }
        }
        if pool_rows {
            out.push_str(&t.to_string());
        } else {
            out.push_str("(no pool counters)\n");
        }
        out
    }

    /// The `n` meta value, when exactly one is present across the inputs.
    fn meta_n(&self) -> Option<usize> {
        let mut ns: Vec<usize> = self
            .telemetry
            .iter()
            .filter_map(|(_, s)| s.meta_value("n").and_then(|v| v.parse().ok()))
            .collect();
        ns.dedup();
        match ns.as_slice() {
            [n] => Some(*n),
            _ => None,
        }
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"phases\":[");
        for (i, (name, stat)) in self.merged_phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{name}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"child_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                stat.count, stat.total_ns, stat.self_ns, stat.child_ns(), stat.min_ns, stat.max_ns
            ));
        }
        out.push_str("],\"round_kills\":[");
        let mut first = true;
        for (_, stream) in &self.telemetry {
            for r in &stream.round_kills {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"round\":{},\"kills\":{},\"cap\":{},\"over_cap\":{}}}",
                    r.round, r.kills, r.cap, r.over_cap
                ));
            }
        }
        out.push_str("],\"counters\":{");
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        for (_, stream) in &self.telemetry {
            for (name, value) in &stream.counters {
                *counters.entry(name).or_insert(0) += value;
            }
        }
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"journals\":[");
        for (i, (name, scan)) in self.journals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{name}\",\"cells\":{},\"dropped\":{},\"rows\":[",
                scan.entries, scan.skipped
            ));
            for (j, (cell, result)) in scan.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"protocol\":\"{}\",\"adversary\":\"{}\",\"n\":{},\"t\":{},\"runs\":{},\"seed\":{},\"mean_rounds\":{},\"max_rounds\":{},\"mean_kills\":{},\"timeouts\":{},\"violations\":{}}}",
                    cell.protocol,
                    cell.adversary,
                    cell.n,
                    cell.t,
                    cell.runs,
                    cell.seed,
                    fmt_f64(result.mean_rounds(), 2),
                    result.max_rounds().unwrap_or(0),
                    fmt_f64(result.mean_kills(), 2),
                    result.timeouts,
                    result.violations
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"fleets\":[");
        for (i, (name, status)) in self.fleets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{name}\",\"procs\":{},\"outstanding\":{},\"restarts\":{},\"failed\":{},\"workers\":[",
                status.procs, status.outstanding, status.restarts, status.failed
            ));
            for (j, w) in status.workers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"slot\":{},\"transport\":\"{}\",\"peer\":\"{}\",\"connects\":{},\"reconnects\":{}}}",
                    w.slot,
                    w.transport,
                    w.peer,
                    w.connects,
                    w.reconnects()
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out.push('\n');
        out
    }

    fn render_folded(&self) -> String {
        let mut out = String::new();
        for (stack, self_ns) in self.folded_stacks() {
            out.push_str(&format!("{stack} {self_ns}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_stream() -> TelemetryStream {
        TelemetryStream::parse(
            "{\"type\":\"meta\",\"key\":\"n\",\"value\":\"64\"}\n\
             {\"type\":\"counter\",\"name\":\"valency.probe.decided_zero\",\"value\":6}\n\
             {\"type\":\"counter\",\"name\":\"lab.cells.total\",\"value\":10}\n\
             {\"type\":\"counter\",\"name\":\"lab.cells.cached\",\"value\":4}\n\
             {\"type\":\"counter\",\"name\":\"lab.cells.executed\",\"value\":6}\n\
             {\"type\":\"counter\",\"name\":\"lab.elapsed_ns\",\"value\":3000000000}\n\
             {\"type\":\"counter\",\"name\":\"pool.reused\",\"value\":7}\n\
             {\"type\":\"span\",\"name\":\"world.drive\",\"worker\":null,\"start_ns\":0,\"elapsed_ns\":100}\n\
             {\"type\":\"span\",\"name\":\"round.deliver\",\"worker\":null,\"start_ns\":10,\"elapsed_ns\":40}\n\
             {\"type\":\"round_kills\",\"round\":1,\"kills\":8,\"cap\":67,\"over_cap\":false}\n",
        )
    }

    #[test]
    fn table_has_all_sections_and_is_deterministic() {
        let mut report = Report::new();
        report.add_telemetry("demo.telemetry.jsonl", spans_stream());
        let table = report.render(ReportFormat::Table);
        assert!(table.contains("## Phases"));
        assert!(table.contains("world.drive"));
        assert!(table.contains("self_ns"));
        assert!(table.contains("child_ns"));
        assert!(table.contains("## Kill budget vs cap"));
        assert!(table.contains("67"));
        assert!(table.contains("cap for n = 64"));
        assert!(table.contains("decided_zero"));
        assert!(table.contains("cache_hit_pct"));
        assert!(table.contains("cells_per_sec"));
        assert!(table.contains("pool.reused"));
        assert_eq!(table, report.render(ReportFormat::Table));
    }

    #[test]
    fn folded_output_is_valid_and_sorted() {
        let mut report = Report::new();
        report.add_telemetry("demo.telemetry.jsonl", spans_stream());
        let folded = report.render(ReportFormat::Folded);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec!["world.drive 60", "world.drive;round.deliver 40"]
        );
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn json_is_flat_and_parseable_by_our_own_reader() {
        let mut report = Report::new();
        report.add_telemetry("demo.telemetry.jsonl", spans_stream());
        let json = report.render(ReportFormat::Json);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"phases\":["));
        assert!(json.contains("\"round\":1"));
        assert!(json.contains("\"pool.reused\":7"));
    }

    #[test]
    fn check_flags_malformed_streams() {
        let mut clean = Report::new();
        clean.add_telemetry("ok.telemetry.jsonl", spans_stream());
        assert!(clean.check().is_ok());

        let mut broken = Report::new();
        broken.add_telemetry(
            "bad.telemetry.jsonl",
            TelemetryStream::parse("{\"type\":\"counter\",\"name\":\"x\",\"va"),
        );
        let text = broken.check().unwrap_err();
        assert!(text.contains("[FAIL]"));
        assert!(text.contains("1 malformed"));

        let empty = Report::new();
        assert!(empty.check().is_err(), "no inputs is a failure");
    }

    #[test]
    fn journal_rows_render_as_a_cells_table_and_json_rows() {
        use crate::cell::{to_jsonl, Cell, CellResult};
        let dir = std::env::temp_dir().join(format!("synran-report-cells-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.journal.jsonl");
        let cell = Cell {
            runs: 2,
            seed: 9,
            ..Cell::new("synran", "balancer", 8)
        };
        let result = CellResult {
            rounds: vec![3, 5],
            kills: vec![1, 2],
            timeouts: 0,
            violations: 0,
        };
        std::fs::write(&path, format!("{}\n", to_jsonl(&cell, &result))).unwrap();

        let mut report = Report::new();
        report.add_telemetry(
            "fleet.telemetry.jsonl",
            TelemetryStream::parse(
                "{\"type\":\"counter\",\"name\":\"fleet.worker.restarts\",\"value\":2}\n\
                 {\"type\":\"counter\",\"name\":\"fleet.stale_results\",\"value\":1}\n",
            ),
        );
        report.load(&path).unwrap();

        let table = report.render(ReportFormat::Table);
        assert!(table.contains("## Cells —"), "{table}");
        assert!(table.contains("balancer"));
        assert!(table.contains("4.00"), "mean rounds: {table}");
        assert!(table.contains("fleet.worker.restarts"));
        assert!(table.contains("fleet.stale_results"));

        let json = report.render(ReportFormat::Json);
        assert!(
            json.contains("\"rows\":[{\"protocol\":\"synran\""),
            "{json}"
        );
        assert!(json.contains("\"mean_kills\":1.50"), "{json}");
        assert_eq!(table, report.render(ReportFormat::Table));
    }

    #[test]
    fn fleet_sidecar_renders_transport_identity_and_reconnects() {
        let dir = std::env::temp_dir().join(format!("synran-report-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.fleet.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"fleet\",\"event\":\"start\",\"procs\":2}\n\
             {\"type\":\"fleet\",\"event\":\"worker\",\"slot\":0,\"transport\":\"pipe\",\"peer\":\"pid=41\"}\n\
             {\"type\":\"fleet\",\"event\":\"worker\",\"slot\":1,\"transport\":\"tcp\",\"peer\":\"127.0.0.1:7070\"}\n\
             {\"type\":\"fleet\",\"event\":\"lease\",\"index\":0,\"attempt\":0}\n\
             {\"type\":\"fleet\",\"event\":\"restart\"}\n\
             {\"type\":\"fleet\",\"event\":\"worker\",\"slot\":1,\"transport\":\"tcp\",\"peer\":\"127.0.0.1:7071\"}\n",
        )
        .unwrap();

        let mut report = Report::new();
        report.load(&path).unwrap();
        let table = report.render(ReportFormat::Table);
        assert!(table.contains("## Fleet —"), "{table}");
        assert!(table.contains("pipe"), "{table}");
        assert!(table.contains("pid=41"), "{table}");
        assert!(
            table.contains("127.0.0.1:7071"),
            "latest peer wins: {table}"
        );
        assert!(
            !table.contains("127.0.0.1:7070"),
            "stale peer gone: {table}"
        );
        assert!(
            table.contains("2 procs, 1 leases outstanding, 1 restarts"),
            "{table}"
        );
        assert_eq!(table, report.render(ReportFormat::Table));

        let json = report.render(ReportFormat::Json);
        assert!(
            json.contains(
                "{\"slot\":1,\"transport\":\"tcp\",\"peer\":\"127.0.0.1:7071\",\"connects\":2,\"reconnects\":1}"
            ),
            "{json}"
        );

        let check = report.check().unwrap();
        assert!(check.contains("2 workers"), "{check}");

        let mut missing = Report::new();
        assert!(missing.load(&dir.join("absent.fleet.jsonl")).is_err());
    }

    #[test]
    fn format_parsing() {
        assert_eq!(ReportFormat::parse("table").unwrap(), ReportFormat::Table);
        assert_eq!(ReportFormat::parse("json").unwrap(), ReportFormat::Json);
        assert_eq!(ReportFormat::parse("folded").unwrap(), ReportFormat::Folded);
        assert!(ReportFormat::parse("csv").is_err());
    }
}
