//! Shared experiment-artifact emission: the `results/<bin>.telemetry.jsonl`
//! convention.
//!
//! Previously each instrumented harness (`e3_lower_bound`,
//! `e8_budget_ablation`, `bench_parallel`) carried its own copy of this
//! plumbing; it now lives here so the campaign presets and the bench
//! binaries emit identical artifacts through one code path
//! (`synran_bench` re-exports these for the harnesses).

use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use synran_sim::telemetry::per_round_kill_cap;
use synran_sim::{JsonlSink, Round, Telemetry, TelemetryEvent, TelemetrySink};

/// The conventional telemetry JSONL path for an experiment binary:
/// `results/<bin>.telemetry.jsonl` (next to the experiment's `.txt`
/// results, per EXPERIMENTS.md).
#[must_use]
pub fn results_telemetry_path(bin: &str) -> PathBuf {
    Path::new("results").join(format!("{bin}.telemetry.jsonl"))
}

/// Writes an experiment's telemetry as JSONL: `meta` attribution lines,
/// the exported registry (counters → histograms → spans), then one
/// `round_kills` line per entry of `kills_per_round` scored against the
/// paper's `4√(n·ln n)+1` per-round cap for system size `n`.
///
/// The global worker pool's cumulative stats are folded in as
/// fill-if-absent gauges first
/// ([`parallel::export_pool_stats`](synran_sim::parallel::export_pool_stats)),
/// so the dump carries `pool.*` counters even for runs whose batches
/// never dispatched on this handle.
///
/// `kills_per_round` is [`synran_sim::Metrics::kills_per_round`] output
/// from a representative run — sorted, one entry per round.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file (the parent
/// directory is created if missing).
pub fn write_telemetry_jsonl(
    path: &Path,
    meta: &[(&str, String)],
    telemetry: &Telemetry,
    kills_per_round: &[(Round, usize)],
    n: usize,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    synran_sim::parallel::export_pool_stats(telemetry);
    let mut sink = JsonlSink::new(BufWriter::new(std::fs::File::create(path)?));
    for (key, value) in meta {
        sink.emit(&TelemetryEvent::Meta {
            key: (*key).to_string(),
            value: value.clone(),
        });
    }
    telemetry.export(&mut sink);
    let cap = per_round_kill_cap(n);
    for &(round, kills) in kills_per_round {
        let kills = kills as u64;
        sink.emit(&TelemetryEvent::RoundKills {
            round: round.index(),
            kills,
            cap,
            over_cap: kills > cap,
        });
    }
    sink.finish()?.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synran_sim::TelemetryMode;

    #[test]
    fn conventional_path_shape() {
        assert_eq!(
            results_telemetry_path("e3_lower_bound"),
            Path::new("results/e3_lower_bound.telemetry.jsonl")
        );
    }

    #[test]
    fn artifact_contains_meta_registry_and_round_kills() {
        let dir = std::env::temp_dir().join(format!("synran-lab-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.telemetry.jsonl");
        let telemetry = Telemetry::new(TelemetryMode::Counters);
        telemetry.incr("sim.rounds", 7);
        write_telemetry_jsonl(
            &path,
            &[("experiment", "demo".to_string())],
            &telemetry,
            &[(Round::new(1), 2), (Round::new(2), 0)],
            16,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"type\":\"meta\",\"key\":\"experiment\""));
        assert!(text.contains("{\"type\":\"counter\",\"name\":\"sim.rounds\",\"value\":7}"));
        assert_eq!(text.matches("\"type\":\"round_kills\"").count(), 2);
        // Pool gauges are filled in even though no batch ran on this handle.
        for key in ["pool.spawned", "pool.reused", "pool.tasks", "pool.inline"] {
            assert!(
                text.contains(&format!("\"name\":\"{key}\"")),
                "missing {key} gauge"
            );
        }
    }
}
