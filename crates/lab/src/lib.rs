//! # synran-lab — the declarative campaign engine
//!
//! Every reproduction question in this workspace is a parameter sweep over
//! `(protocol, adversary, n, t, seeds)`; this crate makes those sweeps
//! **data instead of code**. A campaign is:
//!
//! * a [**scenario spec**](CampaignSpec) — a line-oriented `key = value` /
//!   `sweep key = a,b,c` file expanded into a deterministic [`Cell`] list,
//!   each cell carrying a stable FNV-1a [content
//!   hash](Cell::content_hash) over every execution-relevant parameter;
//! * a [**sharded scheduler**](Engine) — cells partitioned across worker
//!   threads via [`synran_sim::parallel`], results folded in cell order so
//!   the merged output is byte-identical at every thread count;
//! * a [**resumable journal + result cache**](Journal) — completed cells
//!   appended to `results/<campaign>.journal.jsonl` and skipped on re-run
//!   when the hash matches, giving crash-resume and cross-campaign dedup;
//! * [**renderers**](presets) — the generic grid table, plus the E3, E4,
//!   and E7 presenters that reproduce those experiment binaries'
//!   tables byte-for-byte (the binaries themselves are thin wrappers over
//!   this crate).
//!
//! Drive it from the CLI:
//!
//! ```text
//! synran campaign run campaigns/e3.campaign
//! synran campaign status campaigns/e3.campaign
//! synran campaign list
//! ```
//!
//! # Determinism contract
//!
//! A cell's result is a pure function of its fields; the engine's fold is
//! in cell order; journal line order is a pure function of the cell list.
//! Interrupting a campaign and resuming it — at any thread count — yields
//! merged results byte-identical to an uninterrupted serial run (pinned by
//! `tests/resume.rs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod cell;
pub mod engine;
pub mod fleet;
pub mod journal;
pub mod presets;
pub mod progress;
pub mod registry;
pub mod report;
pub mod spec;

pub use artifact::{results_telemetry_path, write_telemetry_jsonl};
pub use cell::{fnv1a64, Cell, CellResult, CELL_SCHEMA_VERSION};
pub use engine::{CellRunner, Engine};
pub use fleet::{
    agent_main, fleet_sidecar_path, parse_workers, scan_fleet_sidecar, AgentConfig, Fleet,
    FleetConfig, FleetStatus, FleetWorkerStatus, SlotSpec,
};
pub use journal::{load_cache, scan_journal, CellCache, Journal, JournalHeader, JournalScan};
pub use progress::{Heartbeat, MemoryProgress, ProgressSink, StderrProgress};
pub use registry::{run_cell, validate_cell};
pub use report::{Report, ReportFormat};
pub use spec::CampaignSpec;

/// Errors surfaced by the campaign engine.
#[derive(Debug)]
pub enum LabError {
    /// Journal or spec-file I/O failed.
    Io(std::io::Error),
    /// A spec line, value, or cell geometry is malformed.
    Spec(String),
    /// An unknown protocol/adversary name or an incompatible pairing.
    Unknown(String),
    /// The simulator reported an engine error.
    Sim(synran_sim::SimError),
    /// The multi-process fleet could not complete a cell (retries
    /// exhausted or worker protocol failure).
    Fleet(String),
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Io(e) => write!(f, "i/o error: {e}"),
            LabError::Spec(msg) => write!(f, "spec error: {msg}"),
            LabError::Unknown(msg) => write!(f, "{msg}"),
            LabError::Sim(e) => write!(f, "engine error: {e}"),
            LabError::Fleet(msg) => write!(f, "fleet error: {msg}"),
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Io(e) => Some(e),
            LabError::Sim(e) => Some(e),
            LabError::Spec(_) | LabError::Unknown(_) | LabError::Fleet(_) => None,
        }
    }
}

impl From<std::io::Error> for LabError {
    fn from(e: std::io::Error) -> LabError {
        LabError::Io(e)
    }
}

impl From<synran_sim::SimError> for LabError {
    fn from(e: synran_sim::SimError) -> LabError {
        LabError::Sim(e)
    }
}
